#!/usr/bin/env python
"""Serving performance baseline: run the standard policy sweep, write
``BENCH_serving.json``.

The baseline has two kinds of fields:

* **deterministic run facts** — trace checksums, p99 latencies, SLO
  violations, hand-off counts.  These must be bit-identical on every
  machine; ``--check`` diffs them against the committed baseline and
  exits non-zero on drift (a silent behaviour change in the engine,
  the traffic sampler, or the cost model).
* **throughput** — wall-clock seconds and simulated requests processed
  per wall second.  Informational: they vary with hardware and are
  never compared.

Usage::

    PYTHONPATH=src python tools/bench_serving.py            # rewrite baseline
    PYTHONPATH=src python tools/bench_serving.py --check    # CI: diff facts
"""

import argparse
import json
import pathlib
import sys
import time

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.faults import (  # noqa: E402
    DetectorConfig,
    FailureDetector,
    FaultSchedule,
    NodeCrash,
)
from repro.serving import (  # noqa: E402
    ServingEngine,
    default_resilience,
    make_serving_policy,
    make_trace,
)
from repro.sim.rng import DeterministicRng  # noqa: E402

BASELINE = ROOT / "BENCH_serving.json"

SEED = 7
REQUESTS = 8000
SLO_S = 0.010
SWEEP = [
    ("flash-crowd", {}),
    ("diurnal", {"peak_to_trough": 6.0, "periods": 2.0}),
]
POLICIES = ("static-x86", "static-arm", "queue-reactive", "latency-aware")

#: Faulted cells: the same flash crowd with the surge host crashing
#: mid-surge (detector-driven failover), bare vs resilient.  Keyed
#: ``faulted/<mode>`` so the fault-free cells above keep their exact
#: historical keys and values.
FAULT_CRASH_AT = 8.5  # mid-surge, after the policy moved to x86
FAULT_REPAIR_S = 5.0
FAULT_NODE = "x86-server"
FAULT_MODES = ("failover-only", "resilient")


def run_sweep():
    """Run every (shape, policy) cell; return (facts, throughput)."""
    facts = {}
    wall = 0.0
    simulated_requests = 0
    for shape, kwargs in SWEEP:
        trace = make_trace(
            shape, DeterministicRng(SEED), requests=REQUESTS, **kwargs
        )
        for policy in POLICIES:
            engine = ServingEngine(
                make_serving_policy(policy), trace, slo_s=SLO_S
            )
            start = time.perf_counter()
            result = engine.run()
            wall += time.perf_counter() - start
            simulated_requests += result.requests_completed
            facts[f"{shape}/{policy}"] = {
                "trace_checksum": trace.checksum(),
                "requests": result.requests,
                "completed": result.requests_completed,
                "p50_us": round(result.p50_latency_s * 1e6, 3),
                "p99_us": round(result.p99_latency_s * 1e6, 3),
                "p999_us": round(result.p999_latency_s * 1e6, 3),
                "slo_violations": result.slo_violations,
                "slo_violation_seconds": round(
                    result.slo_violation_seconds, 6
                ),
                "handoffs": result.migrations,
                "migration_stall_ms": round(
                    result.migration_stall_seconds * 1e3, 6
                ),
                "energy_joules": round(result.total_energy, 3),
            }
    for mode in FAULT_MODES:
        trace = make_trace(
            "flash-crowd", DeterministicRng(SEED), requests=REQUESTS
        )
        engine = ServingEngine(
            make_serving_policy("latency-aware"), trace, slo_s=SLO_S,
            faults=FaultSchedule([
                NodeCrash(
                    time=FAULT_CRASH_AT, node=FAULT_NODE,
                    repair_seconds=FAULT_REPAIR_S,
                )
            ]),
            detector=FailureDetector(DetectorConfig()),
            resilience=(
                default_resilience(SLO_S) if mode == "resilient" else None
            ),
            rng=DeterministicRng(SEED),
        )
        start = time.perf_counter()
        result = engine.run()
        wall += time.perf_counter() - start
        simulated_requests += result.requests_completed
        facts[f"faulted/{mode}"] = {
            "trace_checksum": trace.checksum(),
            "requests": result.requests,
            "completed": result.requests_completed,
            "shed": result.requests_shed,
            "failed": result.requests_failed,
            "retried": result.requests_retried,
            "hedged": result.requests_hedged,
            "failovers": result.failovers,
            "mttd_ms": round(result.mttd * 1e3, 3),
            "goodput_rps": round(result.goodput_rps, 3),
            "slo_attainment": round(result.slo_attainment, 6),
            "slo_violation_seconds": round(
                result.slo_violation_seconds, 6
            ),
        }
    throughput = {
        "wall_seconds": round(wall, 3),
        "simulated_requests": simulated_requests,
        "requests_per_wall_second": round(simulated_requests / wall),
    }
    return facts, throughput


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check", action="store_true",
                        help="compare deterministic facts against the "
                        "committed baseline instead of rewriting it")
    args = parser.parse_args(argv)

    facts, throughput = run_sweep()
    document = {
        "benchmark": "serving policy sweep",
        "config": {
            "seed": SEED,
            "requests": REQUESTS,
            "slo_ms": SLO_S * 1e3,
            "shapes": [shape for shape, _ in SWEEP],
            "policies": list(POLICIES),
        },
        "facts": facts,
        "throughput": throughput,
    }

    if args.check:
        if not BASELINE.exists():
            print(f"error: {BASELINE.name} missing; run without --check",
                  file=sys.stderr)
            return 2
        committed = json.loads(BASELINE.read_text())
        drift = []
        for cell, values in facts.items():
            old = committed.get("facts", {}).get(cell)
            if old != values:
                drift.append(f"{cell}: {old} -> {values}")
        if drift:
            print("serving baseline drift:")
            for line in drift:
                print(f"  {line}")
            return 1
        print(f"{BASELINE.name}: {len(facts)} cells match "
              f"({throughput['requests_per_wall_second']} req/s wall)")
        return 0

    BASELINE.write_text(json.dumps(document, indent=2) + "\n")
    print(f"wrote {BASELINE.name}: {len(facts)} cells, "
          f"{throughput['requests_per_wall_second']} req/s wall")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""Fleet performance baseline: run the warehouse-scale migration wave,
write ``BENCH_fleet.json``.

Two cells:

* ``wave/1k-nodes`` — the headline scale target from ROADMAP item 1: a
  1024-node mixed-ISA fleet (512 x86-64 + 512 arm64), 1500 services,
  one million jobs over a simulated day, migrated x86→ARM under the
  canary/ramp wave policy.
* ``wave/faulted`` — a smaller fleet with node crashes and a link
  degradation mid-ramp, covering the evacuate-live and
  bandwidth-scaling paths.

The baseline has two kinds of fields:

* **deterministic run facts** — trace checksum, result checksum, job /
  migration / SLO counters, energy totals.  These must be bit-identical
  on every machine; ``--check`` diffs them against the committed
  baseline and exits non-zero on drift (a silent behaviour change in
  the fleet simulator, the wave policy, the traffic sampler, or the
  cost models).
* **throughput** — wall-clock seconds and simulated jobs per wall
  second.  Informational: they vary with hardware and are never
  compared.

Usage::

    PYTHONPATH=src python tools/bench_fleet.py            # rewrite baseline
    PYTHONPATH=src python tools/bench_fleet.py --check    # CI: diff facts
"""

import argparse
import json
import pathlib
import sys
import time

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.faults import (  # noqa: E402
    FaultSchedule,
    LinkDegradation,
    NodeCrash,
)
from repro.fleet import (  # noqa: E402
    FleetConfig,
    FleetSimulator,
    WavePolicy,
    node_name,
)
from repro.serving import make_trace  # noqa: E402
from repro.sim.rng import DeterministicRng  # noqa: E402

BASELINE = ROOT / "BENCH_fleet.json"

SEED = 11

#: The 1k-node / 1M-job headline cell.  Steady arrivals: the diurnal
#: sampler inverts its rate integral numerically per arrival, which is
#: fine at serving scale but not at 10^6 jobs.
BIG = {
    "nodes": {"x86-64": 512, "arm64": 512},
    "slots": 4,
    "services": 1500,
    "jobs": 1_000_000,
    "horizon_s": 86_400.0,
    "policy": WavePolicy(
        canary_fraction=0.05,
        ramp=(0.25, 0.5, 1.0),
        wave_interval_s=600.0,
        bake_s=1800.0,
    ),
}

#: Fault-plane coverage cell: two crashes (one while the canary bakes,
#: one mid-ramp) and a degraded interconnect across the second crash.
#: ``slo_factor`` is raised above the default so ep's queueing delay on
#: ARM fits inside the SLO at this load and the pause-on-regression
#: gate reacts to the injected faults, not to steady-state queueing.
FAULTED = {
    "nodes": {"x86-64": 64, "arm64": 64},
    "slots": 4,
    "services": 192,
    "jobs": 60_000,
    "horizon_s": 7200.0,
    "slo_factor": 16.0,
    "policy": WavePolicy(
        canary_fraction=0.05,
        ramp=(0.25, 0.5, 1.0),
        wave_interval_s=300.0,
        bake_s=600.0,
    ),
    "faults": lambda: FaultSchedule([
        NodeCrash(time=400.0, node=node_name(3), repair_seconds=900.0),
        NodeCrash(time=2500.0, node=node_name(70), repair_seconds=600.0),
        LinkDegradation(
            time=2400.0, duration=1200.0, bandwidth_factor=0.25
        ),
    ]),
}


def run_cell(params):
    """Run one fleet cell; return (facts, wall_seconds, jobs)."""
    config = FleetConfig(
        nodes=params["nodes"],
        slots_per_node=params["slots"],
        services=params["services"],
        slo_factor=params.get("slo_factor", 8.0),
    )
    faults = params["faults"]() if "faults" in params else None
    sim = FleetSimulator(
        config, params["policy"], DeterministicRng(SEED), faults=faults
    )
    trace = make_trace(
        "steady",
        DeterministicRng(SEED),
        requests=params["jobs"],
        horizon_s=params["horizon_s"],
    )
    start = time.perf_counter()
    result = sim.run(trace)
    wall = time.perf_counter() - start
    facts = {
        "trace_checksum": trace.checksum(),
        "result_checksum": result.checksum(),
        "jobs_offered": result.jobs_offered,
        "jobs_completed": result.jobs_completed,
        "jobs_shed": result.jobs_shed,
        "p50_latency_ms": round(result.p50_latency_s * 1e3, 6),
        "p99_latency_ms": round(result.p99_latency_s * 1e3, 6),
        "slo_attainment": round(result.slo_attainment, 6),
        "services_migrated": result.services_migrated,
        "migrations": result.migrations,
        "migration_stall_s": round(result.migration_stall_seconds, 6),
        "paused_waves": result.paused_waves,
        "deferred_migrations": result.deferred_migrations,
        "waves": len(result.waves),
        "crashes": result.crashes,
        "evacuations": result.evacuations,
        "failovers": result.failovers,
        "energy_mj": round(result.total_energy / 1e6, 6),
        "makespan_s": round(result.makespan, 6),
    }
    return facts, wall, result.jobs_completed


def run_sweep():
    """Run both cells; return (facts, throughput)."""
    facts = {}
    wall = 0.0
    simulated_jobs = 0
    for name, params in (("wave/1k-nodes", BIG), ("wave/faulted", FAULTED)):
        cell_facts, cell_wall, jobs = run_cell(params)
        facts[name] = cell_facts
        wall += cell_wall
        simulated_jobs += jobs
    throughput = {
        "wall_seconds": round(wall, 3),
        "simulated_jobs": simulated_jobs,
        "jobs_per_wall_second": round(simulated_jobs / wall),
    }
    return facts, throughput


def main(argv=None) -> int:
    """Rewrite the baseline, or with ``--check`` diff and exit non-zero."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check", action="store_true",
                        help="compare deterministic facts against the "
                        "committed baseline instead of rewriting it")
    args = parser.parse_args(argv)

    facts, throughput = run_sweep()
    document = {
        "benchmark": "fleet migration wave",
        "config": {
            "seed": SEED,
            "cells": {
                "wave/1k-nodes": {
                    "nodes": BIG["nodes"],
                    "services": BIG["services"],
                    "jobs": BIG["jobs"],
                    "horizon_s": BIG["horizon_s"],
                },
                "wave/faulted": {
                    "nodes": FAULTED["nodes"],
                    "services": FAULTED["services"],
                    "jobs": FAULTED["jobs"],
                    "horizon_s": FAULTED["horizon_s"],
                },
            },
        },
        "facts": facts,
        "throughput": throughput,
    }

    if args.check:
        if not BASELINE.exists():
            print(f"error: {BASELINE.name} missing; run without --check",
                  file=sys.stderr)
            return 2
        committed = json.loads(BASELINE.read_text())
        drift = []
        for cell, values in facts.items():
            old = committed.get("facts", {}).get(cell)
            if old != values:
                drift.append(f"{cell}: {old} -> {values}")
        if drift:
            print("fleet baseline drift:")
            for line in drift:
                print(f"  {line}")
            return 1
        print(f"{BASELINE.name}: {len(facts)} cells match "
              f"({throughput['jobs_per_wall_second']} jobs/s wall)")
        return 0

    BASELINE.write_text(json.dumps(document, indent=2) + "\n")
    print(f"wrote {BASELINE.name}: {len(facts)} cells, "
          f"{throughput['jobs_per_wall_second']} jobs/s wall")
    return 0


if __name__ == "__main__":
    sys.exit(main())

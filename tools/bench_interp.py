#!/usr/bin/env python
"""Interpreter fast-forward baseline: run the registry suite under both
engines, measure the dispatch-bound speedup, write ``BENCH_interp.json``.

The baseline has two kinds of fields:

* **deterministic run facts** — per-workload output checksums, exit
  codes, slice counts, simulated clocks and DSM transfer counts, all
  produced twice (exact interpreter and fast-forward engine) and
  required to be identical before anything is written.  ``--check``
  diffs them against the committed baseline and exits non-zero on
  drift (a silent behaviour change in the IR, the compiler, either
  engine, or a workload).
* **wall-clock timings** — exact vs fast wall seconds on the registry
  suite and on the dispatch-bound stress kernel
  (:mod:`repro.workloads.interp_stress`), median of three.  The
  registry suite is DSM-bound at golden scale, so its ratio mostly
  reflects shared memory-system cost; the stress kernel isolates
  per-instruction dispatch, which is the cost the fast engine removes,
  and its speedup is the headline number.  ``--check`` enforces
  ``SPEEDUP_FLOOR`` on the stress-kernel ratio — generous against CI
  noise; the committed baseline records the measured value.

Usage::

    PYTHONPATH=src python tools/bench_interp.py            # rewrite baseline
    PYTHONPATH=src python tools/bench_interp.py --check    # CI: diff facts
"""

import argparse
import json
import pathlib
import statistics
import sys
import time

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.compiler import Toolchain  # noqa: E402
from repro.kernel import boot_testbed  # noqa: E402
from repro.runtime.execution import make_engine  # noqa: E402
from repro.workloads import build_workload, workload_names  # noqa: E402
from repro.workloads.golden import GOLDEN_CLASS, GOLDEN_SCALE  # noqa: E402
from repro.workloads.interp_stress import (  # noqa: E402
    interp_stress_module,
)

BASELINE = ROOT / "BENCH_interp.json"

THREADS = (1, 4)
STRESS_ITERATIONS = 300_000
STRESS_REPEATS = 3
# Floor enforced by CI on the stress-kernel speedup.  Deliberately far
# below the measured value so shared-runner noise cannot trip it while
# a real regression (fast path degrading to stepping) still does.
SPEEDUP_FLOOR = 3.0


def _run(module, kind):
    """Build + run ``module`` with engine ``kind``; return (facts, wall)."""
    binary = Toolchain().build(module)
    system = boot_testbed()
    process = system.exec_process(binary, "x86-server")
    engine = make_engine(system, process, engine=kind)
    start = time.perf_counter()
    engine.run()
    wall = time.perf_counter() - start
    facts = {
        "output": [repr(v) for v in process.output],
        "exit_code": process.exit_code,
        "slices": engine.steps,
        "sim_seconds": repr(system.clock.now),
        "dsm_page_transfers": process.dsm.stats.page_transfers,
    }
    return facts, wall


def run_registry():
    """Every registry workload under both engines; facts must agree."""
    facts = {}
    wall = {"exact": 0.0, "fast": 0.0}
    for bench in sorted(workload_names()):
        for threads in THREADS:
            cell = f"{bench}/t{threads}"
            module = build_workload(bench, GOLDEN_CLASS, threads, GOLDEN_SCALE)
            exact, we = _run(module, "exact")
            module = build_workload(bench, GOLDEN_CLASS, threads, GOLDEN_SCALE)
            fast, wf = _run(module, "fast")
            if exact != fast:
                print(f"error: {cell}: engines disagree\n"
                      f"  exact: {exact}\n  fast:  {fast}", file=sys.stderr)
                raise SystemExit(3)
            wall["exact"] += we
            wall["fast"] += wf
            facts[cell] = exact
    return facts, wall


def run_stress():
    """Dispatch-bound kernel, median-of-N wall time per engine."""
    exact_walls, fast_walls = [], []
    reference = None
    for _ in range(STRESS_REPEATS):
        facts, wall = _run(interp_stress_module(STRESS_ITERATIONS), "exact")
        exact_walls.append(wall)
        if reference is None:
            reference = facts
        elif facts != reference:
            print("error: stress kernel is nondeterministic", file=sys.stderr)
            raise SystemExit(3)
    for _ in range(STRESS_REPEATS):
        facts, wall = _run(interp_stress_module(STRESS_ITERATIONS), "fast")
        fast_walls.append(wall)
        if facts != reference:
            print("error: stress kernel: engines disagree\n"
                  f"  exact: {reference}\n  fast:  {facts}", file=sys.stderr)
            raise SystemExit(3)
    exact_wall = statistics.median(exact_walls)
    fast_wall = statistics.median(fast_walls)
    return reference, {
        "exact_wall_seconds": round(exact_wall, 3),
        "fast_wall_seconds": round(fast_wall, 3),
        "speedup": round(exact_wall / fast_wall, 2),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check", action="store_true",
                        help="compare deterministic facts against the "
                        "committed baseline instead of rewriting it, and "
                        "enforce the stress-kernel speedup floor")
    args = parser.parse_args(argv)

    registry_facts, registry_wall = run_registry()
    stress_facts, stress_timing = run_stress()
    document = {
        "benchmark": "interpreter fast-forward",
        "config": {
            "workload_class": GOLDEN_CLASS,
            "scale": GOLDEN_SCALE,
            "threads": list(THREADS),
            "stress_iterations": STRESS_ITERATIONS,
            "stress_repeats": STRESS_REPEATS,
            "speedup_floor": SPEEDUP_FLOOR,
        },
        "facts": {"registry": registry_facts, "stress": stress_facts},
        "timing": {
            "registry_exact_wall_seconds": round(registry_wall["exact"], 3),
            "registry_fast_wall_seconds": round(registry_wall["fast"], 3),
            "stress": stress_timing,
        },
    }

    speedup = stress_timing["speedup"]
    if args.check:
        if not BASELINE.exists():
            print(f"error: {BASELINE.name} missing; run without --check",
                  file=sys.stderr)
            return 2
        committed = json.loads(BASELINE.read_text())
        drift = []
        committed_registry = committed.get("facts", {}).get("registry", {})
        for cell, values in registry_facts.items():
            if committed_registry.get(cell) != values:
                drift.append(
                    f"{cell}: {committed_registry.get(cell)} -> {values}"
                )
        if committed.get("facts", {}).get("stress") != stress_facts:
            drift.append(
                f"stress: {committed.get('facts', {}).get('stress')} "
                f"-> {stress_facts}"
            )
        if drift:
            print("interpreter baseline drift:")
            for line in drift:
                print(f"  {line}")
            return 1
        if speedup < SPEEDUP_FLOOR:
            print(f"error: fast-forward speedup {speedup}x below the "
                  f"{SPEEDUP_FLOOR}x floor", file=sys.stderr)
            return 1
        print(f"{BASELINE.name}: {len(registry_facts)} registry cells + "
              f"stress kernel match ({speedup}x dispatch speedup)")
        return 0

    BASELINE.write_text(json.dumps(document, indent=2) + "\n")
    print(f"wrote {BASELINE.name}: {len(registry_facts)} registry cells, "
          f"stress speedup {speedup}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""Race-soundness gate: static RACE/SHR findings vs dynamic MSI sharing.

For each requested workload this runs the program to completion with a
:class:`~repro.validate.race_checker.SharingObserver` attached to the
execution engine and ``REPRO_VALIDATE`` forced on (so the DSM is the
lock-step-checked :class:`ValidatedDsmService` and the MSI shadow model
is live), then checks the concurrency analyzer's two empirical claims:

* every page the run observed as shared read-write (>= 2 threads,
  >= 1 writer) is covered by a static ``RACE0xx`` finding or ``SHR0xx``
  prediction — a miss means the static passes over-suppressed and the
  "registry corpus is race-free" result is unsound;
* the predicted region hotness scores rank-correlate (Spearman,
  tie-averaged) with the shadow model's observed per-page coherence
  faults, at least ``--min-rho`` when enough regions exist to rank.

Exits non-zero on any violation.  CI runs this on two workloads after
the three static passes sweep the whole registry (see the ``races``
job in ``.github/workflows/ci.yml``).

Usage::

    PYTHONPATH=src python tools/check_race_soundness.py --workloads is,ep
"""

import argparse
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro import validate  # noqa: E402
from repro.validate.race_checker import check_workload  # noqa: E402
from repro.workloads import workload_names  # noqa: E402


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workloads", default="is,ep",
        help="comma-separated registry names, or 'all' (default: is,ep)",
    )
    parser.add_argument("--cls", default="A", help="problem class (default A)")
    parser.add_argument("--threads", type=int, default=4)
    parser.add_argument("--scale", type=float, default=0.02)
    parser.add_argument(
        "--engine", default="exact", choices=("exact", "fast"),
        help="execution engine for the dynamic run (default exact)",
    )
    parser.add_argument(
        "--min-rho", type=float, default=0.3,
        help="minimum Spearman rho when rankable (default 0.3)",
    )
    args = parser.parse_args()

    names = (
        workload_names()
        if args.workloads == "all"
        else [n for n in args.workloads.split(",") if n]
    )
    unknown = sorted(set(names) - set(workload_names()))
    if unknown:
        parser.error(f"unknown workloads {unknown}; have {workload_names()}")

    # The whole point is cross-validating against the MSI shadow model:
    # force the validated DSM on regardless of the environment.
    validate.set_enabled(True)

    failures = 0
    for name in names:
        report = check_workload(
            name,
            cls=args.cls,
            threads=args.threads,
            scale=args.scale,
            engine=args.engine,
        )
        ok = report.ok(min_rho=args.min_rho)
        print(("PASS " if ok else "FAIL ") + report.summary())
        if not ok:
            failures += 1
            for miss in report.uncovered[:10]:
                print(f"      uncovered page {miss['page']:#x} "
                      f"({miss['kind']}, tids {miss['tids']}, "
                      f"regions {miss['regions']})")
            if report.rho is not None and report.rho < args.min_rho:
                print(f"      rho {report.rho:+.2f} < --min-rho "
                      f"{args.min_rho:+.2f}")
    if failures:
        print(f"{failures}/{len(names)} workload(s) failed the "
              "race-soundness gate")
        return 1
    print(f"all {len(names)} workload(s) sound")
    return 0


if __name__ == "__main__":
    sys.exit(main())

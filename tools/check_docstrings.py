#!/usr/bin/env python
"""Docstring-coverage check (stdlib-only, used by CI on repro.telemetry).

Usage::

    python tools/check_docstrings.py src/repro/telemetry [more paths...]

Walks the given files/directories and requires a docstring on every
module, every public class, and every public function/method (names
not starting with ``_``; ``__init__`` is exempt — the class docstring
covers construction).  Exits 1 listing each offender.
"""

import ast
import sys
from pathlib import Path


def _missing_in(path: Path):
    tree = ast.parse(path.read_text(), filename=str(path))
    missing = []
    if ast.get_docstring(tree) is None:
        missing.append((path, tree.lineno if hasattr(tree, "lineno") else 1,
                        "module"))

    def visit(node, prefix=""):
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                name = child.name
                public = not name.startswith("_")
                if public and ast.get_docstring(child) is None:
                    missing.append((path, child.lineno, prefix + name))
                if isinstance(child, ast.ClassDef):
                    visit(child, prefix + name + ".")

    visit(tree)
    return missing


def check(paths):
    """Return (files_checked, missing) over every .py under ``paths``."""
    files = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    missing = []
    for path in files:
        missing.extend(_missing_in(path))
    return len(files), missing


def main(argv):
    if not argv:
        print("usage: check_docstrings.py PATH [PATH...]", file=sys.stderr)
        return 2
    checked, missing = check(argv)
    for path, lineno, name in missing:
        print(f"{path}:{lineno}: missing docstring on {name}")
    print(f"checked {checked} file(s): "
          f"{'FAIL' if missing else 'OK'} ({len(missing)} missing)")
    return 1 if missing else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

"""The process address space.

One address space object exists per process and is *shared* by every
kernel — the single-working-environment illusion.  What differs between
kernels is page *residency*, tracked by the hDSM service
(:mod:`repro.kernel.dsm`); the address space itself is the physical
store.

Memory is access-granular: a value written at address A is read back at
address A.  Both modelled ISAs are little-endian LP64 with identical
primitive sizes, so no byte-level representation is needed — this is
exactly the paper's common-data-format argument, which lets pages move
between ISAs "without any transformation".
"""

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.linker.layout import PAGE_SIZE, VirtualMemoryMap, page_of

Word = Union[int, float]


@dataclass
class Vma:
    """A virtual memory area: [start, end), with region semantics."""

    start: int
    end: int
    name: str
    # 'aliased' regions (.text, vDSO) have a per-ISA local backing and
    # are never transferred by the DSM.
    aliased: bool = False
    writable: bool = True

    def __contains__(self, addr: int) -> bool:
        return self.start <= addr < self.end

    @property
    def pages(self) -> range:
        return range(page_of(self.start), page_of(self.end - 1) + 1)

    def __repr__(self) -> str:
        flags = ("A" if self.aliased else "-") + ("W" if self.writable else "R")
        return f"Vma({self.name} [{self.start:#x},{self.end:#x}) {flags})"


class SegfaultError(Exception):
    """Access to an unmapped address."""

    def __init__(self, addr: int, op: str):
        self.addr = addr
        super().__init__(f"{op} at unmapped address {addr:#x}")


class AddressSpace:
    """Sparse value-granular memory plus the VMA map."""

    def __init__(self, vm_map: Optional[VirtualMemoryMap] = None):
        self.vm_map = vm_map if vm_map is not None else VirtualMemoryMap()
        self._mem: Dict[int, Word] = {}
        self._vmas: List[Vma] = []
        # Access hook installed by the DSM: called with (page, is_write)
        # before every access; returns the fault service time in seconds.
        self.page_hook = None

    # ------------------------------------------------------------- vmas

    def map_region(
        self,
        start: int,
        size: int,
        name: str,
        aliased: bool = False,
        writable: bool = True,
    ) -> Vma:
        end = start + size
        for vma in self._vmas:
            if start < vma.end and vma.start < end:
                raise ValueError(f"mapping {name} overlaps {vma}")
        vma = Vma(start, end, name, aliased, writable)
        self._vmas.append(vma)
        self._vmas.sort(key=lambda v: v.start)
        return vma

    def vma_at(self, addr: int) -> Optional[Vma]:
        for vma in self._vmas:
            if addr in vma:
                return vma
        return None

    def vmas(self) -> List[Vma]:
        return list(self._vmas)

    def is_mapped(self, addr: int) -> bool:
        return self.vma_at(addr) is not None

    def aliased_pages(self) -> set:
        pages = set()
        for vma in self._vmas:
            if vma.aliased:
                pages.update(vma.pages)
        return pages

    # ----------------------------------------------------------- access

    def read(self, addr: int) -> Word:
        """Read the value at ``addr`` (0 if never written)."""
        return self._mem.get(addr, 0)

    def write(self, addr: int, value: Word) -> None:
        self._mem[addr] = value

    def read_checked(self, addr: int) -> Word:
        if not self.is_mapped(addr):
            raise SegfaultError(addr, "read")
        return self._mem.get(addr, 0)

    def write_checked(self, addr: int, value: Word) -> None:
        vma = self.vma_at(addr)
        if vma is None:
            raise SegfaultError(addr, "write")
        if not vma.writable:
            raise SegfaultError(addr, "write to read-only region")
        self._mem[addr] = value

    # -------------------------------------------------------- snapshots

    def snapshot_range(self, lo: int, hi: int) -> Dict[int, Word]:
        """All explicitly-stored words in [lo, hi) — for undoable
        speculative rewrites (e.g. the validator's A->B->A round trip)."""
        return {a: v for a, v in self._mem.items() if lo <= a < hi}

    def restore_range(self, lo: int, hi: int, snapshot: Dict[int, Word]) -> None:
        """Make [lo, hi) bit-identical to a prior :meth:`snapshot_range`."""
        for addr in [a for a in self._mem if lo <= a < hi]:
            del self._mem[addr]
        self._mem.update(snapshot)

    # ------------------------------------------------------------ bulk

    def write_words(self, base: int, values, stride: int = 8) -> None:
        addr = base
        for value in values:
            self._mem[addr] = value
            addr += stride

    def read_words(self, base: int, count: int, stride: int = 8) -> List[Word]:
        return [self._mem.get(base + i * stride, 0) for i in range(count)]

    def words_in_page(self, page: int) -> Iterator[Tuple[int, Word]]:
        lo = page * PAGE_SIZE
        hi = lo + PAGE_SIZE
        for addr, value in self._mem.items():
            if lo <= addr < hi:
                yield addr, value

    def resident_bytes(self) -> int:
        """Rough footprint: 8 bytes per stored word."""
        return 8 * len(self._mem)

"""A small malloc: first-fit free list over a brk region.

The workloads allocate their arrays through ``sbrk``/``free`` syscalls
backed by this allocator.  Heap addresses are part of the common layout
(identical on every ISA), so heap pointers survive migration unchanged
— only *pages* move, via the hDSM.
"""

from typing import Dict, List, Optional, Tuple

from repro.linker.layout import align_up
from repro.runtime.address_space import AddressSpace


class OutOfMemoryError(Exception):
    pass


class HeapAllocator:
    """First-fit allocator with coalescing free."""

    GRAIN = 16

    def __init__(self, space: AddressSpace):
        self.space = space
        self.base = space.vm_map.heap_base
        self.limit = space.vm_map.heap_limit
        self._brk = self.base
        # Free list of (start, size), kept sorted and coalesced.
        self._free: List[Tuple[int, int]] = []
        self._allocated: Dict[int, int] = {}
        space.map_region(self.base, self.limit - self.base, "heap")

    @property
    def brk(self) -> int:
        return self._brk

    def allocated_bytes(self) -> int:
        return sum(self._allocated.values())

    def allocations(self) -> Dict[int, int]:
        """Live allocations as ``{start_address: size}`` (a copy).

        The race-soundness harness uses this to map faulting heap pages
        back to the allocation (and from there to the IR symbol whose
        published pointer global holds the address).
        """
        return dict(self._allocated)

    def alloc(self, size: int) -> int:
        if size <= 0:
            raise ValueError(f"allocation of {size} bytes")
        size = align_up(size, self.GRAIN)
        for i, (start, free_size) in enumerate(self._free):
            if free_size >= size:
                rest = free_size - size
                if rest:
                    self._free[i] = (start + size, rest)
                else:
                    del self._free[i]
                self._allocated[start] = size
                return start
        if self._brk + size > self.limit:
            raise OutOfMemoryError(f"heap exhausted allocating {size} bytes")
        start = self._brk
        self._brk += size
        self._allocated[start] = size
        return start

    def free(self, addr: int) -> None:
        size = self._allocated.pop(addr, None)
        if size is None:
            raise ValueError(f"free of unallocated address {addr:#x}")
        self._free.append((addr, size))
        self._coalesce()

    def _coalesce(self) -> None:
        self._free.sort()
        merged: List[Tuple[int, int]] = []
        for start, size in self._free:
            if merged and merged[-1][0] + merged[-1][1] == start:
                prev_start, prev_size = merged[-1]
                merged[-1] = (prev_start, prev_size + size)
            else:
                merged.append((start, size))
        # Return a trailing free block to the brk.
        if merged and merged[-1][0] + merged[-1][1] == self._brk:
            start, _ = merged.pop()
            self._brk = start
        self._free = merged

"""User stacks and activation frames.

Each thread owns one stack region of the common address space.  The
migration runtime "divides a thread's stack into two halves: when
preparing for migration, the runtime rewrites from one half of the
stack to the other, and switches stacks right before invoking the
thread migration service" — :class:`UserStack` implements exactly that
double-buffering.

A :class:`Frame` is the engine's descriptor of one live activation; all
*state* (locals, saved registers) lives in simulated memory and the
thread register file, addressed through the frame's CFA.
"""

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.compiler.codegen import MachineFunction


@dataclass
class Frame:
    """One live function activation."""

    mf: MachineFunction
    cfa: int
    # For suspended (caller) frames: position of the pending Call and
    # its site id.  The innermost (running) frame has resume=None.
    resume: Optional[Tuple[str, int]] = None
    call_site_id: int = -1

    @property
    def function(self) -> str:
        return self.mf.name

    @property
    def sp(self) -> int:
        """Stack pointer while this frame executes."""
        return self.cfa - self.mf.frame.frame_size

    def __repr__(self) -> str:
        return f"Frame({self.function}@{self.mf.isa.name}, cfa={self.cfa:#x})"


class UserStack:
    """A thread's stack region, split into two transformation halves."""

    def __init__(self, low: int, high: int):
        if high <= low:
            raise ValueError("empty stack region")
        self.low = low
        self.high = high
        self.mid = low + (high - low) // 2
        self.half = 0  # 0: top half [mid, high); 1: bottom half [low, mid)

    @property
    def top(self) -> int:
        """The CFA of the outermost frame in the active half."""
        return self.high if self.half == 0 else self.mid

    @property
    def other_top(self) -> int:
        return self.mid if self.half == 0 else self.high

    def switch_halves(self) -> None:
        """Adopt the other half (called right before migration)."""
        self.half ^= 1

    def contains(self, addr: int) -> bool:
        return self.low <= addr < self.high

    def active_bounds(self) -> Tuple[int, int]:
        if self.half == 0:
            return (self.mid, self.high)
        return (self.low, self.mid)

    def __repr__(self) -> str:
        return f"UserStack([{self.low:#x},{self.high:#x}), half={self.half})"

"""Analytical fast-forward execution engine.

Between migration points, blocking syscalls, and hDSM faults there is
nothing for the engine shell to do: a straight-line run of lowered
instructions charges a precomputable cycle cost and transforms thread
state in a way that is fully determined by the block's IR.  The exact
interpreter (:class:`repro.runtime.execution.ExecutionEngine`) still
pays per-instruction dispatch for every one of them; at warehouse
scale that dispatch *is* the wall (ROADMAP item 2).

:class:`FastExecutionEngine` removes it.  For every machine function a
thread executes it compiles — once per CPU model, from the
:mod:`repro.ir.summary` block summaries — a *region*: all the
function's basic blocks rendered as one Python function with an
internal dispatch loop, entered at any block label.  Loops therefore
iterate inside compiled code, one function call per scheduler slice
instead of one dispatch per instruction; mid-block resume positions
(after a call or a migration) get tiny single-chunk stub regions that
hand over to the whole-function region at the next branch.  The
compiled region:

* folds every static cycle cost into left-to-right constant chains
  (``cycles = cycles + c3 + c4``) that perform the **same float
  additions in the same order** as the interpreter — never
  reassociated, never pre-summed, which is what keeps results
  bit-identical;
* evaluates ``Work`` bursts in closed form (``amount * expansion``,
  then the burst's cycle/instret contributions) exactly as the
  interpreter does, iteration by iteration so float accumulation
  order is preserved;
* inlines operand access (registers, frame slots), DSM residency
  pre-checks, and operator semantics from the shared
  :mod:`repro.ir.semantics` tables;
* checks the remaining slice budget before every block and hands
  control back to the engine shell at calls, returns, migrations,
  syscalls, and slice exhaustion.

The scheduler, commit points, slice structure (256-instruction
budget), syscall layer, migration path, and DSM are all inherited
unchanged, which is why every ``RunResult`` fact and golden checksum
is reproduced bit for bit.  When the remaining budget cannot cover the
next block the engine falls back to the inherited ``_interp_slice``
for the rest of the slice, preserving the exact interleaving.

Cross-validation (``REPRO_VALIDATE=1``): regions shrink to single
blocks and, after each one runs, the engine replays its instruction
range against the *exact* interpreter's independently derived cycle
tables, raising :class:`FastForwardDivergence` on the first
cycles/instret mismatch — this is what catches a stale or corrupted
block summary.
"""

from typing import Dict, List, Tuple

from repro.ir.instructions import (
    AddrOf,
    BinOp,
    Br,
    CBr,
    Call,
    Const,
    InlineAsm,
    Load,
    MigPoint,
    Ret,
    StackAlloc,
    Store,
    Syscall,
    UnOp,
    Work,
)
from repro.ir.semantics import truncdiv
from repro.ir.summary import block_summaries
from repro.isa.isa import InstrClass
from repro.runtime.execution import ExecutionEngine, ExecutionError
from repro.validate import enabled as _validate_enabled
from repro.validate.errors import InvariantViolation



class FastForwardDivergence(InvariantViolation):
    """The fast path disagreed with the exact interpreter's accounting.

    Raised only under ``REPRO_VALIDATE=1``, where every compiled
    segment is replayed lock-step against the exact engine's cycle
    tables.  In practice this means a block summary no longer matches
    the IR it claims to summarize.
    """

    def __init__(self, detail: str, state=None):
        super().__init__("fastforward", "segment-accounting", detail, state)


def _f2i(a):
    """``f2i`` with the interpreter's exact error behaviour."""
    try:
        return int(a)
    except ValueError as exc:
        raise ExecutionError(str(exc)) from None


# Region exit kinds (first element of the return tuple).
_DONE = 0  # slice budget exhausted in a partial chunk; pc already set
_SHELL = 1  # pc parked at a syscall; finish the slice exactly
_MIGRATE = 2  # a = target machine, b = site_id
_CALL = 3  # a = Call instr, b = evaluated args
_RET = 4  # a = return value
_RESUME = 5  # a, b = next (block, index); continue fast-forwarding
_TAIL = 6  # a, b = next (block, index); budget too small, finish exactly

# Operator expression templates, mirroring repro.ir.semantics exactly.
# div/mod expand C-style truncation inline (same quotients/remainders
# and the same ZeroDivisionError as ``semantics.truncdiv``, without a
# Python call per operation).
_INT_EXPR = {
    "add": "({a} + {b})",
    "sub": "({a} - {b})",
    "mul": "({a} * {b})",
    "div": (
        "((int({a}) // int({b})) if (int({a}) < 0) == (int({b}) < 0)"
        " else -(-int({a}) // int({b})))"
    ),
    "mod": (
        "((int({a}) % int({b})) if (int({a}) % int({b})) == 0"
        " or (int({a}) >= 0) == (int({b}) >= 0)"
        " else (int({a}) % int({b})) - int({b}))"
    ),
    "and": "(int({a}) & int({b}))",
    "or": "(int({a}) | int({b}))",
    "xor": "(int({a}) ^ int({b}))",
    "shl": "((int({a}) << int({b})) & 0xFFFFFFFFFFFFFFFF)",
    "shr": "(int({a}) >> int({b}))",
    "eq": "(1 if {a} == {b} else 0)",
    "ne": "(1 if {a} != {b} else 0)",
    "lt": "(1 if {a} < {b} else 0)",
    "le": "(1 if {a} <= {b} else 0)",
    "gt": "(1 if {a} > {b} else 0)",
    "ge": "(1 if {a} >= {b} else 0)",
    "min": "min({a}, {b})",
    "max": "max({a}, {b})",
}
_FLOAT_EXPR = dict(_INT_EXPR)
_FLOAT_EXPR.update(
    {
        "div": "({a} / {b})",
        "mod": "(({a} - {b} * int({a} / {b})) if {b} else 0.0)",
    }
)
_UNOP_EXPR = {
    "mov": "{a}",
    "neg": "(-{a})",
    "not": "(~int({a}))",
    "i2f": "float({a})",
    "f2i": "_f2i({a})",
    "sqrt": "(abs({a}) ** 0.5)",
    "abs": "abs({a})",
}


# source text -> compiled code object, shared process-wide.
_CODE_CACHE: Dict[str, object] = {}


class _Region:
    """A compiled dispatch function plus the entry label to start at."""

    __slots__ = ("fn", "source", "entry")

    def __init__(self, fn, source: str, entry: int):
        self.fn = fn
        self.source = source
        self.entry = entry

    def at_entry(self, entry: int) -> "_Region":
        return _Region(self.fn, self.source, entry)


class _RegionBuilder:
    """Generates the Python source for one region of a machine function.

    ``single=True`` builds a one-chunk region whose branch exits always
    return to the trampoline: used for mid-block resume stubs (cheap to
    compile, executed once per resume) and for all validating builds
    (the lock-step replay needs one linear instruction range).
    ``single=False`` builds the whole function — every block — as one
    dispatch loop entered via a label parameter, so loops iterate
    entirely inside compiled code and each machine function compiles
    exactly once per CPU model.
    """

    def __init__(self, engine, mf, cpu, validating: bool, single: bool):
        self.engine = engine
        self.mf = mf
        self.cpu = cpu
        self.validating = validating
        self.single = single or validating
        self.loc = engine._locations(mf)
        self.summaries = block_summaries(mf)
        # Physical register -> region-local variable.  Register traffic
        # is the hottest state access; inside a region registers live
        # in Python locals and are written back to ``thread.regs`` once
        # at region exit (the engine shell and ``_push_frame`` /
        # ``_pop_frame`` read the dict between regions).  Keyed by
        # *physical* register so IR variables sharing one register
        # share one local, exactly like the dict they replace.
        self.regmap: Dict[str, str] = {}
        for var in mf.fn.var_types:
            where = self.loc[var]
            if where[0] == "r" and where[1] not in self.regmap:
                self.regmap[where[1]] = f"_g{len(self.regmap)}"
        self.ns: Dict[str, object] = {
            "_truncdiv": truncdiv,
            "_f2i": _f2i,
            "_mf": mf,
        }
        self.lines: List[str] = []
        self.pend_c: List[str] = []  # pending cycle-constant chain terms
        self.pend_i: List[str] = []  # pending instret-constant chain terms
        self._tmp = 0
        # (block, start index, partial?) -> dispatch label.  Partial
        # chunks step instructions one at a time with budget checks —
        # the compiled equivalent of the interpreter finishing a slice.
        self.labels: Dict[Tuple[str, int, bool], int] = {}
        self.worklist: List[Tuple[str, int, bool]] = []

    # --------------------------------------------------- emit helpers

    def emit(self, line: str, depth: int = 0) -> None:
        self.lines.append("    " * depth + line)

    def fresh(self) -> str:
        self._tmp += 1
        return f"t{self._tmp}"

    def intern(self, obj) -> str:
        """Bind a constant object into the region's namespace."""
        name = f"_k{len(self.ns)}"
        self.ns[name] = obj
        return name

    def flush(self, depth: int = 0) -> None:
        # One chained statement == the same sequence of left-to-right
        # binary additions the interpreter performs; folding the
        # constants into one sum would reassociate and break
        # bit-identity.
        if self.pend_c:
            self.emit("cycles = cycles + " + " + ".join(self.pend_c), depth)
            del self.pend_c[:]
        if self.pend_i:
            self.emit("instret = instret + " + " + ".join(self.pend_i), depth)
            del self.pend_i[:]

    def read(self, op, depth: int = 0) -> str:
        if not isinstance(op, str):
            return repr(op)
        where = self.loc[op]
        if where[0] == "r":
            return self.regmap[where[1]]
        t = self.fresh()
        self.emit(f"{t}a = cfa - {where[1]}", depth)
        self.emit(f"if ({t}a >> 12) not in _c1:", depth)
        self.emit(f"    extra = extra + _dc(thread, {t}a, False)", depth)
        self.emit(f"{t} = _mg({t}a, 0)", depth)
        return t

    def write(self, name: str, expr: str, depth: int = 0) -> None:
        where = self.loc[name]
        if where[0] == "r":
            self.emit(f"{self.regmap[where[1]]} = {expr}", depth)
            return
        t = self.fresh()
        self.emit(f"{t} = {expr}", depth)
        self.emit(f"{t}a = cfa - {where[1]}", depth)
        self.emit(f"if ({t}a >> 12) not in _c2:", depth)
        self.emit(f"    extra = extra + _dc(thread, {t}a, True)", depth)
        self.emit(f"mem[{t}a] = {t}", depth)

    # ------------------------------------------------- region growing

    def label_for(self, block: str, start: int, partial: bool = False) -> int:
        """Dispatch label of a chunk, queueing it for generation."""
        key = (block, start, partial)
        label = self.labels.get(key)
        if label is None:
            label = len(self.labels)
            self.labels[key] = label
            self.worklist.append(key)
        return label

    def jump(self, block: str, depth: int) -> None:
        """Transfer to ``(block, 0)``.

        Whole-function builds dispatch in-region (every block has a
        label), so loops never leave compiled code.  Single-chunk
        builds always return to the trampoline: resume stubs hand over
        to the whole-function region after one chunk, and validating
        builds need ``(entry, consumed)`` to describe one linear
        range, which an in-region loop (even a self-loop) would break.
        """
        if self.single:
            self.emit(
                f"_rv = (5, {block!r}, 0, budget, cycles, instret, extra)",
                depth,
            )
            self.emit("break", depth)
            return
        label = self.label_for(block, 0)
        self.emit(f"_L = {label}", depth)
        self.emit("continue", depth)

    # ------------------------------------------------ chunk generation

    def gen_chunk(self, block: str, start: int) -> None:
        """Generate one chunk: instructions from ``start`` to the
        chunk's exit (branch, call, return, syscall, or block end).

        The generated statements perform the same state updates and
        the same per-accumulator float additions, in the same order,
        as ``_interp_slice`` stepping the same instructions.
        """
        mf = self.mf
        cpu = self.cpu
        cyc = self.summaries[block].cycles_per_instr(cpu)
        instrs = mf.fn.blocks[block].instrs
        emit, read, write = self.emit, self.read, self.write
        pend_c, pend_i = self.pend_c, self.pend_i

        # Budget gate: the whole chunk runs in closed form or not at
        # all — a partial chunk is the exact interpreter's job, which
        # preserves the 256-instruction slice structure bit for bit.
        consume = self._chunk_consume(instrs, start)
        if consume:
            if self.single:
                emit(f"if budget < {consume}:")
                emit(
                    f"    _rv = (6, {block!r}, {start}, budget, "
                    "cycles, instret, extra)"
                )
                emit("    break")
            else:
                # Not enough slice left for the closed form: switch to
                # the per-instruction variant of this same chunk, which
                # finishes the slice in compiled code.
                pl = self.label_for(block, start, partial=True)
                emit(f"if budget < {consume}:")
                emit(f"    _L = {pl}")
                emit("    continue")

        k = start
        while True:
            instr = instrs[k]
            cls = instr.__class__
            n = k - start + 1  # budget consumed through this instruction

            if cls is Syscall:
                # Stop *before* the syscall: the exact interpreter
                # handles it (blocking, wakes, process exit) and
                # charges its budget/cycles itself.
                self.flush()
                emit(f"thread.pc = ({block!r}, {k})")
                emit(
                    f"_rv = (1, 0, 0, budget - {k - start}, "
                    "cycles, instret, extra)"
                )
                emit("break")
                return

            pend_c.append(repr(cyc[k]))

            if cls is BinOp:
                a = read(instr.a)
                b = read(instr.b)
                table = _FLOAT_EXPR if instr.vt.is_float else _INT_EXPR
                write(instr.dst, table[instr.op].format(a=a, b=b))
                pend_i.append("1")
                k += 1
            elif cls is Load:
                a = read(instr.addr)
                t = self.fresh()
                emit(f"{t} = int({a}) + {instr.offset}")
                emit(f"if ({t} >> 12) not in _c1:")
                emit(f"    extra = extra + _dc(thread, {t}, False)")
                write(instr.dst, f"_mg({t}, 0)")
                pend_i.append("1")
                k += 1
            elif cls is Store:
                a = read(instr.addr)
                t = self.fresh()
                emit(f"{t} = int({a}) + {instr.offset}")
                emit(f"if ({t} >> 12) not in _c2:")
                emit(f"    extra = extra + _dc(thread, {t}, True)")
                s = read(instr.src)
                emit(f"mem[{t}] = {s}")
                pend_i.append("1")
                k += 1
            elif cls is Const:
                write(instr.dst, repr(instr.value))
                pend_i.append("1")
                k += 1
            elif cls is UnOp:
                a = read(instr.a)
                write(instr.dst, _UNOP_EXPR[instr.op].format(a=a))
                pend_i.append("1")
                k += 1
            elif cls is Work:
                am = read(instr.amount)
                wcls = InstrClass(instr.kind)
                expansion = mf.isa.expansion(wcls)
                cpi = cpu.cpi.get(wcls, 1.0)
                t = self.fresh()
                emit(f"{t} = {am} * {expansion!r}")
                # Static costs precede the burst's, as exactly stepped.
                self.flush()
                emit(f"cycles = cycles + {t} * {cpi!r}")
                emit(f"instret = instret + {t}")
                if self.validating:
                    emit(f"dyn.append({am})")
                if instr.pages is not None:
                    p = read(instr.pages)
                    iname = self.intern(instr)
                    emit(
                        f"extra = extra + self._touch_range"
                        f"(thread, {iname}, int({p}))"
                    )
                k += 1
            elif cls is CBr:
                c = read(instr.cond)
                pend_i.append("2")
                self.flush()
                emit(f"budget = budget - {n}")
                emit(f"if {c}:")
                self.jump(instr.if_true, 1)
                self.jump(instr.if_false, 0)
                return
            elif cls is Br:
                pend_i.append("1")
                self.flush()
                emit(f"budget = budget - {n}")
                self.jump(instr.target, 0)
                return
            elif cls is MigPoint:
                pend_i.append("5")
                self.flush()
                t = self.fresh()
                emit(f"{t} = _rt(_tid)")
                emit("if _hk is not None:")
                emit(
                    f"    _hk(thread, {mf.name!r}, {instr.point_id}, "
                    "thread.instructions + instret)"
                )
                emit(f"if {t} is not None and {t} != _mn:")
                emit(f"    thread.pc = ({block!r}, {k + 1})")
                emit(
                    f"    _rv = (2, {t}, {instr.site_id}, budget - {n}, "
                    "cycles, instret, extra)"
                )
                emit("    break")
                k += 1
            elif cls is Call:
                self.flush()
                args = [read(a) for a in instr.args]
                emit(f"frame.resume = ({block!r}, {k})")
                emit(f"frame.call_site_id = {instr.site_id}")
                emit(f"thread.pc = ({block!r}, {k})")
                iname = self.intern(instr)
                emit(
                    f"_rv = (3, {iname}, [{', '.join(args)}], "
                    f"budget - {n}, cycles, instret, extra)"
                )
                emit("break")
                return
            elif cls is Ret:
                v = read(instr.value) if instr.value is not None else "0"
                epilogue = len(mf.frame.saved_reg_depths) + 2
                pend_c.append(
                    repr(epilogue * cpu.cpi.get(InstrClass.LOAD, 1.0))
                )
                pend_i.append(str(3 + epilogue))
                self.flush()
                emit(
                    f"_rv = (4, {v}, 0, budget - {n}, "
                    "cycles, instret, extra)"
                )
                emit("break")
                return
            elif cls is AddrOf:
                t = self.fresh()
                emit(
                    f"{t} = self._resolve_symbol"
                    f"(thread, _mf, frame, {instr.symbol!r})"
                )
                write(instr.dst, t)
                pend_i.append("1")
                k += 1
            elif cls is StackAlloc:
                depth = mf.frame.buffer_depths[instr.name][0]
                write(instr.dst, f"cfa - {depth}")
                pend_i.append("1")
                k += 1
            elif cls is InlineAsm:
                pend_i.append(str(instr.instr_estimate))
                k += 1
            else:  # pragma: no cover
                raise ExecutionError(
                    f"fast-forward: unknown instruction {cls.__name__}"
                )

    @staticmethod
    def _chunk_consume(instrs, start: int) -> int:
        """Slice budget the chunk consumes when it completes."""
        k = start
        while True:
            cls = instrs[k].__class__
            if cls is Syscall:
                return k - start
            if cls in (Br, CBr, Call, Ret):
                return k - start + 1
            k += 1

    def gen_partial(self, block: str, start: int) -> None:
        """Per-instruction variant of a chunk, entered when the
        remaining budget cannot cover the closed form.

        Steps exactly like ``_interp_slice``: budget checked before
        every instruction, its static cycle cost added in its own
        statement (the same addition sequence as the interpreter's
        ``cycles += tab[idx]``), state updated per instruction.  This
        is how a slice ends inside compiled code instead of falling
        back to the interpreter for its tail.  Exit kind 0 means "slice
        exhausted, pc already stored"; branch exits transfer to the
        target's *full* chunk, whose budget gate re-dispatches.
        """
        mf = self.mf
        cpu = self.cpu
        cyc = self.summaries[block].cycles_per_instr(cpu)
        instrs = mf.fn.blocks[block].instrs
        emit, read, write = self.emit, self.read, self.write

        k = start
        while True:
            instr = instrs[k]
            cls = instr.__class__

            if cls is Syscall:
                emit(f"thread.pc = ({block!r}, {k})")
                emit("_rv = (1, 0, 0, budget, cycles, instret, extra)")
                emit("break")
                return

            emit("if budget == 0:")
            emit(f"    thread.pc = ({block!r}, {k})")
            emit("    _rv = (0, 0, 0, 0, cycles, instret, extra)")
            emit("    break")
            emit("budget = budget - 1")
            emit(f"cycles = cycles + {cyc[k]!r}")

            if cls is BinOp:
                a = read(instr.a)
                b = read(instr.b)
                table = _FLOAT_EXPR if instr.vt.is_float else _INT_EXPR
                write(instr.dst, table[instr.op].format(a=a, b=b))
                emit("instret = instret + 1")
                k += 1
            elif cls is Load:
                a = read(instr.addr)
                t = self.fresh()
                emit(f"{t} = int({a}) + {instr.offset}")
                emit(f"if ({t} >> 12) not in _c1:")
                emit(f"    extra = extra + _dc(thread, {t}, False)")
                write(instr.dst, f"_mg({t}, 0)")
                emit("instret = instret + 1")
                k += 1
            elif cls is Store:
                a = read(instr.addr)
                t = self.fresh()
                emit(f"{t} = int({a}) + {instr.offset}")
                emit(f"if ({t} >> 12) not in _c2:")
                emit(f"    extra = extra + _dc(thread, {t}, True)")
                s = read(instr.src)
                emit(f"mem[{t}] = {s}")
                emit("instret = instret + 1")
                k += 1
            elif cls is Const:
                write(instr.dst, repr(instr.value))
                emit("instret = instret + 1")
                k += 1
            elif cls is UnOp:
                a = read(instr.a)
                write(instr.dst, _UNOP_EXPR[instr.op].format(a=a))
                emit("instret = instret + 1")
                k += 1
            elif cls is Work:
                am = read(instr.amount)
                wcls = InstrClass(instr.kind)
                expansion = mf.isa.expansion(wcls)
                cpi = cpu.cpi.get(wcls, 1.0)
                t = self.fresh()
                emit(f"{t} = {am} * {expansion!r}")
                emit(f"cycles = cycles + {t} * {cpi!r}")
                emit(f"instret = instret + {t}")
                if instr.pages is not None:
                    p = read(instr.pages)
                    iname = self.intern(instr)
                    emit(
                        f"extra = extra + self._touch_range"
                        f"(thread, {iname}, int({p}))"
                    )
                k += 1
            elif cls is CBr:
                c = read(instr.cond)
                emit("instret = instret + 2")
                emit(f"if {c}:")
                self.jump(instr.if_true, 1)
                self.jump(instr.if_false, 0)
                return
            elif cls is Br:
                emit("instret = instret + 1")
                self.jump(instr.target, 0)
                return
            elif cls is MigPoint:
                emit("instret = instret + 5")
                t = self.fresh()
                emit(f"{t} = _rt(_tid)")
                emit("if _hk is not None:")
                emit(
                    f"    _hk(thread, {mf.name!r}, {instr.point_id}, "
                    "thread.instructions + instret)"
                )
                emit(f"if {t} is not None and {t} != _mn:")
                emit(f"    thread.pc = ({block!r}, {k + 1})")
                emit(
                    f"    _rv = (2, {t}, {instr.site_id}, budget, "
                    "cycles, instret, extra)"
                )
                emit("    break")
                k += 1
            elif cls is Call:
                args = [read(a) for a in instr.args]
                emit(f"frame.resume = ({block!r}, {k})")
                emit(f"frame.call_site_id = {instr.site_id}")
                emit(f"thread.pc = ({block!r}, {k})")
                iname = self.intern(instr)
                emit(
                    f"_rv = (3, {iname}, [{', '.join(args)}], "
                    "budget, cycles, instret, extra)"
                )
                emit("break")
                return
            elif cls is Ret:
                v = read(instr.value) if instr.value is not None else "0"
                epilogue = len(mf.frame.saved_reg_depths) + 2
                emit(
                    "cycles = cycles + "
                    f"{epilogue * cpu.cpi.get(InstrClass.LOAD, 1.0)!r}"
                )
                emit(f"instret = instret + {3 + epilogue}")
                emit(
                    f"_rv = (4, {v}, 0, budget, cycles, instret, extra)"
                )
                emit("break")
                return
            elif cls is AddrOf:
                t = self.fresh()
                emit(
                    f"{t} = self._resolve_symbol"
                    f"(thread, _mf, frame, {instr.symbol!r})"
                )
                write(instr.dst, t)
                emit("instret = instret + 1")
                k += 1
            elif cls is StackAlloc:
                depth = mf.frame.buffer_depths[instr.name][0]
                write(instr.dst, f"cfa - {depth}")
                emit("instret = instret + 1")
                k += 1
            elif cls is InlineAsm:
                emit(f"instret = instret + {instr.instr_estimate}")
                k += 1
            else:  # pragma: no cover
                raise ExecutionError(
                    f"fast-forward: unknown instruction {cls.__name__}"
                )

    # ----------------------------------------------------------- build

    def build(self, entry_block: str, entry_start: int) -> _Region:
        if not self.single:
            # Whole-function build: one label per block, one compile
            # per (machine function, CPU model) for the whole run.
            for b in self.mf.fn.blocks:
                self.label_for(b, 0)
        entry = self.label_for(entry_block, entry_start)
        chunks: List[Tuple[int, List[str]]] = []
        while self.worklist:
            block, start, partial = self.worklist.pop(0)
            label = self.labels[(block, start, partial)]
            self.lines = []
            if partial:
                self.gen_partial(block, start)
            else:
                self.gen_chunk(block, start)
            assert not self.pend_c and not self.pend_i
            chunks.append((label, self.lines))

        params = (
            "self, thread, frame, regs, mem, cache, "
            "budget, cycles, instret, extra, entry"
        )
        if self.validating:
            params += ", dyn"
        out = [f"def _region({params}):"]
        out.append("    cfa = frame.cfa")
        out.append("    _dc = self._dsm_charge")
        out.append("    _mg = mem.get")
        out.append("    _rt = self.process.vdso.read_target")
        out.append("    _hk = self.hooks.on_migration_point")
        out.append("    _tid = thread.tid")
        out.append("    _mn = thread.machine_name")
        out.append("    _c1 = cache[1]")
        out.append("    _c2 = cache[2]")
        out.append("    _rg = regs.get")
        # Registers enter as locals.  ``None`` marks "absent from the
        # dict and never written here": the epilogue skips those so the
        # dict's key set — visible to checkpoint images and migration —
        # is exactly what per-instruction interpretation leaves behind.
        for reg, local in self.regmap.items():
            out.append(f"    {local} = _rg({reg!r})")
        out.append("    _L = entry")
        out.append("    while True:")
        for i, (label, lines) in enumerate(sorted(chunks)):
            kw = "if" if i == 0 else "elif"
            out.append(f"        {kw} _L == {label}:")
            for line in lines:
                out.append("            " + line)
        for reg, local in self.regmap.items():
            out.append(f"    if {local} is not None: regs[{reg!r}] = {local}")
        out.append("    return _rv")
        source = "\n".join(out) + "\n"
        if self.single:
            filename = (
                f"<fastforward {self.mf.name}:{entry_block}:{entry_start}"
                f":{self.cpu.name}>"
            )
        else:
            filename = f"<fastforward {self.mf.name}:{self.cpu.name}>"
        # Code objects are pure functions of the source text; identical
        # rebuilds (same workload run again, tests, benchmarks) reuse
        # the compiled object instead of paying ``compile`` again.
        code = _CODE_CACHE.get(source)
        if code is None:
            code = compile(source, filename, "exec")
            _CODE_CACHE[source] = code
        exec(code, self.ns)
        return _Region(self.ns["_region"], source, entry)


class FastExecutionEngine(ExecutionEngine):
    """Drop-in engine running compiled regions between shell events."""

    # ------------------------------------------------------------ slice

    def _run_slice(self, thread) -> None:
        machine = self._slice_preamble(thread)
        process = self.process
        mem = process.space._mem
        cpu = machine.cpu
        regs = thread.regs
        budget = self.batch
        cycles = 0.0
        instret = 0.0
        extra = 0.0
        cache = self._cache_for(thread.tid, process.dsm.epoch)
        frame = thread.frames[-1]
        mf = frame.mf
        block, idx = thread.pc
        validating = _validate_enabled()

        while budget > 0:
            regions = self._region_table(mf, cpu, validating)
            region = regions.get((block, idx))
            if region is None:
                builder = _RegionBuilder(
                    self, mf, cpu, validating, single=idx != 0
                )
                region = builder.build(block, idx)
                if builder.single:
                    regions[(block, idx)] = region
                else:
                    # One compiled function serves every block entry of
                    # this machine function; share it under each key.
                    for (b, s, partial), label in builder.labels.items():
                        if not partial:
                            regions[(b, s)] = region.at_entry(label)
                    region = regions[(block, idx)]
            if validating:
                dyn: List[float] = []
                kind, a, b, nbudget, ncycles, ninstret, extra = region.fn(
                    self, thread, frame, regs, mem, cache,
                    budget, cycles, instret, extra, region.entry, dyn,
                )
                self._validate_segment(
                    mf, cpu, block, idx, budget - nbudget, dyn,
                    cycles, instret, ncycles, ninstret,
                )
                budget, cycles, instret = nbudget, ncycles, ninstret
            else:
                kind, a, b, budget, cycles, instret, extra = region.fn(
                    self, thread, frame, regs, mem, cache,
                    budget, cycles, instret, extra, region.entry,
                )
            if kind == _DONE:
                # Slice exhausted inside a compiled partial chunk; the
                # region already stored thread.pc.
                self._commit(thread, machine, cycles, instret, extra)
                return
            elif kind == _RESUME:
                block, idx = a, b
            elif kind == _TAIL:
                # Not enough slice left to run the next block in
                # closed form: finish the slice with the exact
                # interpreter so the 256-instruction slice structure
                # (and hence the scheduler interleaving) is preserved.
                thread.pc = (a, b)
                self._interp_slice(thread, machine, budget, cycles, instret, extra)
                return
            elif kind == _CALL:
                callee = self._push_frame(thread, mf, frame, a, b, mem)
                frame = thread.frames[-1]
                mf = callee
                block, idx = thread.pc
                cycles += cpu.cycles_for(mf.prologue_counts)
                instret += sum(mf.prologue_counts.values())
            elif kind == _RET:
                done = self._pop_frame(thread, a, mem, cpu)
                if done:
                    self._commit(thread, machine, cycles, instret, extra)
                    self._thread_finished(thread, a)
                    return
                frame = thread.frames[-1]
                mf = frame.mf
                block, idx = thread.pc
            elif kind == _SHELL:
                # Parked at a syscall: the exact interpreter executes
                # it (and the rest of the slice) with shared state.
                self._interp_slice(thread, machine, budget, cycles, instret, extra)
                return
            else:  # _MIGRATE — pc already advanced past the point
                self._commit(thread, machine, cycles, instret, extra)
                self._do_migration(thread, a, b)
                return

        thread.pc = (block, idx)
        self._commit(thread, machine, cycles, instret, extra)

    # ---------------------------------------------------------- tables

    def _region_table(self, mf, cpu, validating: bool) -> Dict:
        cache = getattr(mf, "_fast_segments", None)
        if cache is None:
            cache = {}
            mf._fast_segments = cache
        key = (cpu.name, validating)
        regions = cache.get(key)
        if regions is None:
            regions = {}
            cache[key] = regions
        return regions

    # ----------------------------------------------- cross-validation

    def _validate_segment(
        self,
        mf,
        cpu,
        block: str,
        start: int,
        consumed: int,
        dyn: List[float],
        cycles0: float,
        instret0: float,
        cycles1: float,
        instret1: float,
    ) -> None:
        """Replay a segment against the exact engine's cycle tables.

        The replay starts from the same accumulator values and performs
        the interpreter's additions in the interpreter's order, using
        the independently derived ``_cycles`` tables (not the block
        summaries the compiled code was generated from).  Any
        difference — a corrupted summary constant, a wrong expansion
        factor, a miscounted instruction — surfaces as a bitwise
        mismatch.

        Under validation, regions are single straight-line chunks, so
        ``(start, consumed)`` fully determines the executed range.
        """
        instrs = mf.fn.blocks[block].instrs
        tab = self._cycles(mf, cpu)[block]
        cyc = cycles0
        ins = instret0
        di = 0
        for k in range(start, start + consumed):
            instr = instrs[k]
            cls = instr.__class__
            cyc += tab[k]
            if cls is Work:
                wcls = InstrClass(instr.kind)
                expanded = dyn[di] * mf.isa.expansion(wcls)
                di += 1
                cyc += expanded * cpu.cpi.get(wcls, 1.0)
                ins += expanded
            elif cls is CBr:
                ins += 2
            elif cls is Br:
                ins += 1
            elif cls is MigPoint:
                ins += 5
            elif cls is InlineAsm:
                ins += instr.instr_estimate
            elif cls is Call:
                pass  # the shell charges the callee prologue
            elif cls is Ret:
                epilogue = len(mf.frame.saved_reg_depths) + 2
                cyc += epilogue * cpu.cpi.get(InstrClass.LOAD, 1.0)
                ins += 3 + epilogue
            else:
                ins += 1
        if cyc != cycles1 or ins != instret1:
            raise FastForwardDivergence(
                f"segment {mf.name}:{block}@{start} (+{consumed} instrs) "
                f"on {cpu.name}: fast path reported cycles={cycles1!r} "
                f"instret={instret1!r}, exact replay gives cycles={cyc!r} "
                f"instret={ins!r}",
                state={
                    "function": mf.name,
                    "block": block,
                    "start": start,
                    "consumed": consumed,
                    "fast_cycles": cycles1,
                    "exact_cycles": cyc,
                    "fast_instret": instret1,
                    "exact_instret": ins,
                },
            )

"""Stack transformation (Section 5.3) — f_AB : S^IA -> S^IB.

At a migration point the runtime rewrites the thread's stack from the
source ISA's ABI into the destination ISA's ABI, frame by frame,
"without restrictions on stack frame layout":

* live values are located through the compiler's stackmaps (register or
  slot, per ISA) and copied across;
* a live value held in a callee-saved register is found by walking down
  the call chain to the frame that saved the register (and is placed,
  on the destination side, in the save slot of the nearest younger
  frame that saves it — or directly in the destination register file);
* return addresses are rewritten through the ISA-independent site ids,
  the cross-ISA return-address mapping;
* the saved-frame-pointer chain is rebuilt for the destination ABI;
* pointers into the source stack are fixed up to point at the
  corresponding destination-stack location (the destination layout is
  fully precomputed, so no fixup ever dangles);
* stack buffers (allocas) are copied verbatim — their contents are in
  the common data format.

The rewrite targets the inactive half of the thread's stack region and
the caller switches halves afterwards, exactly as in the paper.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.compiler.codegen import MachineFunction
from repro.compiler.stackmaps import StackMap, StackMapEntry, join_stackmaps
from repro.compiler.toolchain import MultiIsaBinary
from repro.runtime.address_space import AddressSpace
from repro.runtime.regmap import map_registers
from repro.runtime.stack import Frame, UserStack


class TransformError(Exception):
    """The stack could not be transformed (toolchain invariant broken)."""


@dataclass
class TransformStats:
    """Work accounting; drives the latency model (Figure 10)."""

    frames: int = 0
    values_copied: int = 0
    pointers_fixed: int = 0
    buffer_words_copied: int = 0
    metadata_entries: int = 0

    def latency_seconds(self, isa_name: str) -> float:
        """Transformation latency on the *source* machine.

        Calibrated against Figure 10: the x86 processor transforms the
        stack "in under 400 us for the majority of cases, while the ARM
        processor requires 2x as much latency", rising with the number
        of frames and live values (metadata parsing + copying).
        """
        per_isa_scale = {"x86_64": 1.0, "arm64": 2.05}
        base = 45e-6
        per_frame = 28e-6
        per_value = 4.5e-6
        per_word = 0.05e-6
        seconds = (
            base
            + per_frame * self.frames
            + per_value * (self.values_copied + self.metadata_entries * 0.25)
            + per_word * self.buffer_words_copied
        )
        return seconds * per_isa_scale.get(isa_name, 1.5)


@dataclass
class _FramePlan:
    """Source/destination pairing for one activation."""

    src: Frame
    dst_mf: MachineFunction
    dst_cfa: int
    site_id: int  # migration-point site for the innermost frame
    stackmap_src: StackMap
    stackmap_dst: StackMap


class StackTransformer:
    """Rewrites thread stacks between ISAs."""

    def __init__(self, binary: MultiIsaBinary, space: AddressSpace):
        self.binary = binary
        self.space = space

    # ------------------------------------------------------------ entry

    def transform(
        self,
        thread,
        dst_isa_name: str,
        migpoint_site: int,
    ) -> TransformStats:
        """Rewrite ``thread``'s stack for ``dst_isa_name``.

        ``migpoint_site`` is the site id of the migration point the
        innermost frame is parked at.  On return the thread's frames,
        registers and stack half all describe the destination ISA; the
        caller is responsible for the actual kernel-level hand-off.
        """
        src_isa = thread.frames[-1].mf.isa
        if src_isa.name == dst_isa_name:
            raise TransformError("source and destination ISA are identical")
        dst_bin = self.binary.binary_for(dst_isa_name)
        stats = TransformStats()

        plans = self._plan(thread, dst_bin, migpoint_site, stats)
        new_regs = map_registers(
            dst_bin.isa,
            sp=plans[-1].dst_cfa - plans[-1].dst_mf.frame.frame_size,
            fp=plans[-1].dst_cfa,
            pc=plans[-1].dst_mf.return_address(migpoint_site),
        )

        self._rewrite_linkage(plans, stats)
        for i in range(len(plans) - 1, -1, -1):  # newest frame first
            self._rewrite_frame(plans, i, thread, new_regs, stats)

        # Commit: switch stack halves, adopt destination frames/registers.
        thread.stack.switch_halves()
        thread.regs = new_regs
        new_frames: List[Frame] = []
        for plan in plans:
            frame = Frame(
                mf=plan.dst_mf,
                cfa=plan.dst_cfa,
                resume=plan.src.resume,
                call_site_id=plan.src.call_site_id,
            )
            new_frames.append(frame)
        thread.frames = new_frames
        return stats

    # ------------------------------------------------------------- plan

    def _plan(
        self,
        thread,
        dst_bin,
        migpoint_site: int,
        stats: TransformStats,
    ) -> List[_FramePlan]:
        """Walk the source stack and precompute the destination layout.

        "The stack transformation library begins by analyzing the
        thread's current stack to find live stack frames and to
        calculate the size of the transformed stack."
        """
        plans: List[_FramePlan] = []
        cfa = thread.stack.other_top
        for depth, frame in enumerate(thread.frames):
            is_innermost = depth == len(thread.frames) - 1
            site = migpoint_site if is_innermost else frame.call_site_id
            if site < 0:
                raise TransformError(
                    f"frame {frame.function} has no pending call site"
                )
            dst_mf = dst_bin.function(frame.function)
            src_map = frame.mf.stackmaps.get(site)
            dst_map = dst_mf.stackmaps.get(site)
            if src_map is None or dst_map is None:
                raise TransformError(
                    f"no stackmap at site {site} in {frame.function}"
                )
            plans.append(
                _FramePlan(
                    src=frame,
                    dst_mf=dst_mf,
                    dst_cfa=cfa,
                    site_id=site,
                    stackmap_src=src_map,
                    stackmap_dst=dst_map,
                )
            )
            stats.metadata_entries += len(src_map) + len(dst_map)
            cfa -= dst_mf.frame.frame_size
        stats.frames = len(plans)
        if cfa < thread.stack.low:
            raise TransformError("transformed stack overflows the region")
        return plans

    # -------------------------------------------------------- linkage

    def _rewrite_linkage(self, plans: List[_FramePlan], stats) -> None:
        """Rebuild return addresses and the saved-FP chain (dst ABI)."""
        for i, plan in enumerate(plans):
            frame_meta = plan.dst_mf.frame
            caller = plans[i - 1] if i > 0 else None
            if caller is not None:
                ra = caller.dst_mf.return_address(caller.src.call_site_id)
                caller_fp = caller.dst_cfa
            else:
                ra = 0  # process entry: no caller
                caller_fp = 0
            if frame_meta.return_addr_depth:
                self.space.write(plan.dst_cfa - frame_meta.return_addr_depth, ra)
            if frame_meta.saved_lr_depth:
                self.space.write(plan.dst_cfa - frame_meta.saved_lr_depth, ra)
            if frame_meta.saved_fp_depth:
                self.space.write(plan.dst_cfa - frame_meta.saved_fp_depth, caller_fp)

    # ----------------------------------------------------------- frames

    def _rewrite_frame(
        self,
        plans: List[_FramePlan],
        index: int,
        thread,
        new_regs: Dict[str, float],
        stats: TransformStats,
    ) -> None:
        plan = plans[index]
        pairs = self._joined_entries(plan)
        for src_entry, dst_entry in pairs:
            value = self._read_src_value(plans, index, thread, src_entry)
            if src_entry.maybe_stack_pointer and isinstance(value, int):
                fixed = self._fixup_pointer(plans, thread, value)
                if fixed is not None:
                    value = fixed
                    stats.pointers_fixed += 1
            self._write_dst_value(plans, index, new_regs, dst_entry, value)
            stats.values_copied += 1
        self._copy_buffers(plan, stats)

    def _joined_entries(self, plan: _FramePlan):
        # join_stackmaps works off each map's cached var index, so the
        # per-frame join is O(live values), not O(n*m) rescans.
        try:
            return join_stackmaps(plan.stackmap_src, plan.stackmap_dst)
        except ValueError as exc:
            raise TransformError(
                f"live sets differ at site {plan.site_id} of "
                f"{plan.src.function}: {exc}"
            ) from None

    # ------------------------------------------------------ value moves

    def _read_src_value(
        self, plans: List[_FramePlan], index: int, thread, entry: StackMapEntry
    ):
        loc = entry.location
        frame = plans[index].src
        if loc.kind == "slot":
            return self.space.read(frame.cfa - loc.depth)
        # Register value: the youngest frame below (newer than) `index`
        # that saved this register holds the frame's value in its save
        # area; otherwise it is still live in the register file.
        for younger in range(index + 1, len(plans)):
            saved = plans[younger].src.mf.frame.saved_reg_depths
            if loc.reg in saved:
                return self.space.read(plans[younger].src.cfa - saved[loc.reg])
        return thread.regs.get(loc.reg, 0)

    def _write_dst_value(
        self,
        plans: List[_FramePlan],
        index: int,
        new_regs: Dict[str, float],
        entry: StackMapEntry,
        value,
    ) -> None:
        loc = entry.location
        if loc.kind == "slot":
            self.space.write(plans[index].dst_cfa - loc.depth, value)
            return
        # Destination register: "walks down the function call chain
        # until it finds the frame where the register has been saved".
        for younger in range(index + 1, len(plans)):
            saved = plans[younger].dst_mf.frame.saved_reg_depths
            if loc.reg in saved:
                self.space.write(
                    plans[younger].dst_cfa - saved[loc.reg], value
                )
                return
        new_regs[loc.reg] = value

    # --------------------------------------------------------- pointers

    def _fixup_pointer(
        self, plans: List[_FramePlan], thread, value: int
    ) -> Optional[int]:
        """Map a pointer into the active source stack half to the
        matching destination-stack address; None if not a stack pointer."""
        lo, hi = thread.stack.active_bounds()
        if not lo <= value < hi:
            return None
        for plan in plans:
            src_cfa = plan.src.cfa
            src_size = plan.src.mf.frame.frame_size
            if not (src_cfa - src_size <= value < src_cfa):
                continue
            depth = src_cfa - value
            src_frame = plan.src.mf.frame
            dst_frame = plan.dst_mf.frame
            # A named slot?
            for var, d in src_frame.slot_depths.items():
                if d >= depth > d - 8:
                    inner = d - depth
                    return plan.dst_cfa - dst_frame.slot_depths[var] + inner
            # Inside a stack buffer?
            for name, (d, size) in src_frame.buffer_depths.items():
                start = src_cfa - d
                if start <= value < start + size:
                    inner = value - start
                    dst_d, _ = dst_frame.buffer_depths[name]
                    return plan.dst_cfa - dst_d + inner
            raise TransformError(
                f"stack pointer {value:#x} targets unmapped area of "
                f"{plan.src.function} (depth {depth})"
            )
        raise TransformError(
            f"stack pointer {value:#x} not within any live frame"
        )

    # ---------------------------------------------------------- buffers

    def _copy_buffers(self, plan: _FramePlan, stats: TransformStats) -> None:
        src_frame = plan.src.mf.frame
        dst_frame = plan.dst_mf.frame
        for name, (src_depth, size) in src_frame.buffer_depths.items():
            dst_depth, _ = dst_frame.buffer_depths[name]
            src_base = plan.src.cfa - src_depth
            dst_base = plan.dst_cfa - dst_depth
            for offset in range(0, size, 8):
                # Zero words are written too: stack halves are reused on
                # consecutive migrations (A->B->A lands back on the
                # original half), so skipping zeros would let a word
                # zeroed on the other ISA resurface with its stale
                # pre-migration value.
                self.space.write(dst_base + offset, self.space.read(src_base + offset))
                stats.buffer_words_copied += 1

"""The execution engine.

Interprets machine functions (the lowered IR) against the simulated
machines: every instruction charges its per-ISA machine-instruction
cost through the current machine's CPU model, memory accesses are
checked against the hDSM, syscalls enter the local kernel, and
migration points poll the vDSO flag and trigger the full migration
path (stack transformation + kernel hand-off).

Threads are interleaved by a min-virtual-time scheduler: the runnable
thread with the smallest accumulated time executes the next slice, so
the interleaving converges to what parallel hardware would produce.
When a machine has more runnable threads than cores, compute time is
stretched by the oversubscription factor.
"""

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.ir.instructions import (
    AddrOf,
    BinOp,
    Br,
    CBr,
    Call,
    Const,
    InlineAsm,
    Load,
    MigPoint,
    Ret,
    StackAlloc,
    Store,
    Syscall,
    UnOp,
    Work,
)
from repro.isa.isa import InstrClass
from repro.kernel.dsm import LostPageError
from repro.kernel.kernel import KernelCrashed
from repro.kernel.migration import MigrationService
from repro.kernel.process import Process, Thread, ThreadState
from repro.kernel.syscall import SyscallHandler


class ExecutionError(Exception):
    pass


class ProcessExit(Exception):
    """Raised internally to unwind a slice on process exit."""


@dataclass
class EngineHooks:
    """Optional instrumentation callbacks."""

    # (thread, function_name, point_id, cumulative_instructions)
    on_migration_point: Optional[Callable] = None
    # (thread, outcome: MigrationOutcome)
    on_migration: Optional[Callable] = None


from repro.ir.semantics import FLOAT_BIN as _FLOAT_BIN
from repro.ir.semantics import INT_BIN as _INT_BIN
from repro.ir.semantics import apply_unop as _apply_unop


class ExecutionEngine:
    """Runs one process to completion on a PopcornSystem."""

    def __init__(
        self,
        system,
        process: Process,
        hooks: Optional[EngineHooks] = None,
        sampler=None,
        batch: int = 256,
    ):
        self.system = system
        self.process = process
        self.hooks = hooks or EngineHooks()
        self.sampler = sampler
        self.batch = batch
        self.syscalls = SyscallHandler(system)
        self.migration = MigrationService(system)
        # Per-thread DSM residency caches: tid -> (epoch, readable, writable)
        self._page_cache: Dict[int, list] = {}
        # Work-range residency cache: (tid, id(instr)) -> (epoch, base)
        self._range_cache: Dict[Tuple[int, int], Tuple[int, int]] = {}
        # tid -> span id of the thread's last migration: spans emitted
        # afterwards (the post-migration page-pull burst of Fig. 11)
        # carry a ``flow`` causal link back to it.
        self._mig_flow: Dict[int, int] = {}
        self._wake_values: Dict[int, float] = {}
        self._pause_requested = False
        self.paused = False
        self.steps = 0
        # Optional dynamic-sharing observer (repro.validate.race_checker).
        # Notified only on DSM miss paths, so attaching one perturbs
        # neither timing nor the per-thread residency caches.
        self.sharing_observer = None

    def request_pause(self) -> None:
        """Stop at the next slice boundary (a CRIU-style freeze point).

        All thread program counters are persisted at slice boundaries,
        so a paused process can be checkpointed, restored, and resumed
        with a fresh engine.
        """
        self._pause_requested = True

    # ------------------------------------------------------------ driver

    def run(self, max_slices: int = 50_000_000) -> Process:
        """Run until the process exits or every thread is done."""
        process = self.process
        self.paused = False
        for _ in range(max_slices):
            if process.exit_code is not None:
                self._finalize_clock()
                self.system.reap_process(process)
                return process
            runnable = [
                t
                for t in process.threads.values()
                if t.state == ThreadState.RUNNABLE
            ]
            if not runnable:
                if all(
                    t.state == ThreadState.DONE for t in process.threads.values()
                ):
                    self._finalize_clock()
                    return process
                blocked = [
                    t
                    for t in process.threads.values()
                    if t.state == ThreadState.BLOCKED
                ]
                if process.failed_threads:
                    # A crash killed a peer these threads were waiting
                    # on (barrier party, mutex holder, ...): they can
                    # never be woken.  Cascade the failure loudly
                    # instead of reporting an inexplicable deadlock.
                    why = process.failure
                    for t in blocked:
                        self.system.fail_thread(
                            t, f"blocked forever after crash ({why})"
                        )
                    continue
                raise ExecutionError(
                    "deadlock: all threads blocked: "
                    f"{ {t.tid: t.blocked_on for t in blocked} }"
                )
            if self._pause_requested:
                # A finished process cannot pause (handled above); here
                # every live thread is parked at a slice boundary.
                self._pause_requested = False
                self.paused = True
                # Flush pending blocking-syscall completions so every
                # thread's state is self-contained for a checkpoint.
                for tid, value in list(self._wake_values.items()):
                    del self._wake_values[tid]
                    self._complete_blocking_syscall(
                        process.threads[tid], value
                    )
                return process
            thread = min(runnable, key=lambda t: (t.vtime, t.tid))
            if thread.vtime > self.system.clock.now:
                self.system.clock.advance_to(thread.vtime)
                if self.sampler is not None:
                    self.sampler.sample_until(self.system.clock.now)
            try:
                self._run_slice(thread)
            except ProcessExit:
                pass
            except (KernelCrashed, LostPageError) as exc:
                self._fail_thread(thread, exc)
        raise ExecutionError("slice budget exhausted (runaway program?)")

    def _finalize_clock(self) -> None:
        """Advance the shared clock to the end of the process's work.

        The engine only moves the clock when it switches between
        threads; the final slice's time (and a single-slice program's
        entire runtime) is committed here.
        """
        vtimes = [t.vtime for t in self.process.threads.values()]
        end = max([self.system.clock.now] + vtimes)
        if end > self.system.clock.now:
            self.system.clock.advance_to(end)
        if self.sampler is not None:
            self.sampler.sample_until(self.system.clock.now)

    # ---------------------------------------------------------- memory

    def _cache_for(self, tid: int, epoch: int) -> list:
        cache = self._page_cache.get(tid)
        if cache is None:
            cache = [epoch, set(), set()]
            self._page_cache[tid] = cache
        elif cache[0] != epoch:
            # Mutate in place: the engine's hot-path closures hold a
            # reference to this very list.
            cache[0] = epoch
            cache[1].clear()
            cache[2].clear()
        return cache

    def _dsm_charge(self, thread: Thread, addr: int, write: bool) -> float:
        dsm = self.process.dsm
        cache = self._cache_for(thread.tid, dsm.epoch)
        page = addr >> 12
        valid = cache[2] if write else cache[1]
        if page in valid:
            return 0.0
        cost = dsm.access(thread.machine_name, addr, write)
        if self.sharing_observer is not None:
            self.sharing_observer.note_access(thread.tid, page, write, cost)
        cache = self._cache_for(thread.tid, dsm.epoch)
        cache[1].add(page)
        if write:
            cache[2].add(page)
        if cost:
            self._mark_io(thread, cost)
        return cost

    def _mark_io(self, thread: Thread, duration: float) -> None:
        """Note DSM wire activity on the machines of the transfer path.

        Only the machines that actually took part in the last DSM
        operation (requester, page owner, invalidated sharers, backup
        home — reported by ``dsm.last_parties``) see their interconnect
        busy; marking every machine in the system would inflate the
        idle-power IO component of uninvolved servers.
        """
        machines = self.system.machines
        parties = self.process.dsm.last_parties or (thread.machine_name,)
        for name in parties:
            machine = machines.get(name)
            if machine is not None:
                machine.note_io_activity(duration)

    # ------------------------------------------------------------ slice

    def _slice_preamble(self, thread: Thread):
        """Per-slice setup shared by every engine: tracer context and
        completion of the blocking syscall the thread woke from.
        Returns the machine the slice runs on."""
        system = self.system
        tracer = system.messaging.tracer
        if tracer is not None:
            # Ambient identity for every span emitted from this slice
            # (DSM faults, syscalls, messages) — deep call sites only
            # see kernels, not threads.
            tracer.set_context(
                tid=thread.tid,
                machine=thread.machine_name,
                flow=self._mig_flow.get(thread.tid),
            )

        pending = self._wake_values.pop(thread.tid, None)
        if pending is not None:
            self._complete_blocking_syscall(thread, pending)

        return system.machines[thread.machine_name]

    def _run_slice(self, thread: Thread) -> None:
        machine = self._slice_preamble(thread)
        self._interp_slice(thread, machine, self.batch, 0.0, 0.0, 0.0)

    def _interp_slice(
        self,
        thread: Thread,
        machine,
        budget: int,
        cycles: float,
        instret: float,
        extra: float,
    ) -> None:
        """Interpret up to ``budget`` instructions, one at a time.

        ``cycles``/``instret``/``extra`` seed the slice accumulators so
        the fast engine can hand over a partially executed slice (its
        trampoline stops at the first region it cannot run in closed
        form and this loop finishes the slice exactly).
        """
        system = self.system
        process = self.process
        space = process.space
        mem = space._mem  # hot path: direct store access
        cpu = machine.cpu
        regs = thread.regs
        frame = thread.frames[-1]
        mf = frame.mf
        loc = self._locations(mf)
        block, idx = thread.pc
        instrs = mf.fn.blocks[block].instrs
        cycles_tab = self._cycles(mf, cpu)[block]

        dsm = process.dsm
        cache = self._cache_for(thread.tid, dsm.epoch)

        def read(op):
            nonlocal extra
            if type(op) is str:
                where = loc[op]
                if where[0] == "r":
                    return regs[where[1]]
                slot_addr = frame.cfa - where[1]
                # Stack slots live in DSM-managed memory too: after a
                # migration the first touch of each stack page faults.
                if (slot_addr >> 12) not in cache[1]:
                    extra += self._dsm_charge(thread, slot_addr, False)
                return mem.get(slot_addr, 0)
            return op

        def write_var(name, value):
            nonlocal extra
            where = loc[name]
            if where[0] == "r":
                regs[where[1]] = value
            else:
                slot_addr = frame.cfa - where[1]
                if (slot_addr >> 12) not in cache[2]:
                    extra += self._dsm_charge(thread, slot_addr, True)
                mem[slot_addr] = value

        while budget > 0:
            budget -= 1
            instr = instrs[idx]
            cycles += cycles_tab[idx]
            cls = instr.__class__

            if cls is BinOp:
                ops = _FLOAT_BIN if instr.vt.is_float else _INT_BIN
                write_var(instr.dst, ops[instr.op](read(instr.a), read(instr.b)))
                instret += 1
                idx += 1
            elif cls is Load:
                addr = int(read(instr.addr)) + instr.offset
                extra += self._dsm_charge(thread, addr, False)
                write_var(instr.dst, mem.get(addr, 0))
                instret += 1
                idx += 1
            elif cls is Store:
                addr = int(read(instr.addr)) + instr.offset
                extra += self._dsm_charge(thread, addr, True)
                mem[addr] = read(instr.src)
                instret += 1
                idx += 1
            elif cls is Const:
                write_var(instr.dst, instr.value)
                instret += 1
                idx += 1
            elif cls is UnOp:
                value = self._unop(instr, read(instr.a))
                write_var(instr.dst, value)
                instret += 1
                idx += 1
            elif cls is Work:
                amount = read(instr.amount)
                wcls = InstrClass(instr.kind)
                expanded = amount * mf.isa.expansion(wcls)
                cycles += expanded * cpu.cpi.get(wcls, 1.0)
                instret += expanded
                if instr.pages is not None:
                    extra += self._touch_range(thread, instr, int(read(instr.pages)))
                idx += 1
            elif cls is CBr:
                taken = read(instr.cond)
                block = instr.if_true if taken else instr.if_false
                idx = 0
                instrs = mf.fn.blocks[block].instrs
                cycles_tab = self._cycles(mf, cpu)[block]
                instret += 2
            elif cls is Br:
                block = instr.target
                idx = 0
                instrs = mf.fn.blocks[block].instrs
                cycles_tab = self._cycles(mf, cpu)[block]
                instret += 1
            elif cls is MigPoint:
                instret += 5
                target = process.vdso.read_target(thread.tid)
                if self.hooks.on_migration_point is not None:
                    self.hooks.on_migration_point(
                        thread, mf.name, instr.point_id,
                        thread.instructions + instret,
                    )
                if target is not None and target != thread.machine_name:
                    thread.pc = (block, idx + 1)
                    self._commit(thread, machine, cycles, instret, extra)
                    self._do_migration(thread, target, instr.site_id)
                    return
                idx += 1
            elif cls is Call:
                args = [read(a) for a in instr.args]
                frame.resume = (block, idx)
                frame.call_site_id = instr.site_id
                thread.pc = (block, idx)
                callee = self._push_frame(thread, mf, frame, instr, args, mem)
                # Rebind hot locals to the callee.
                frame = thread.frames[-1]
                mf = callee
                loc = self._locations(mf)
                block, idx = thread.pc
                instrs = mf.fn.blocks[block].instrs
                all_cycles = self._cycles(mf, cpu)
                cycles_tab = all_cycles[block]
                cycles += cpu.cycles_for(mf.prologue_counts)
                instret += sum(mf.prologue_counts.values())
            elif cls is Ret:
                value = read(instr.value) if instr.value is not None else 0
                epilogue = len(mf.frame.saved_reg_depths) + 2
                cycles += epilogue * cpu.cpi.get(InstrClass.LOAD, 1.0)
                instret += 3 + epilogue
                done = self._pop_frame(thread, value, mem, cpu)
                if done:
                    self._commit(thread, machine, cycles, instret, extra)
                    self._thread_finished(thread, value)
                    return
                frame = thread.frames[-1]
                mf = frame.mf
                loc = self._locations(mf)
                block, idx = thread.pc
                instrs = mf.fn.blocks[block].instrs
                cycles_tab = self._cycles(mf, cpu)[block]
            elif cls is AddrOf:
                write_var(instr.dst, self._resolve_symbol(thread, mf, frame, instr.symbol))
                instret += 1
                idx += 1
            elif cls is StackAlloc:
                depth, _size = mf.frame.buffer_depths[instr.name]
                write_var(instr.dst, frame.cfa - depth)
                instret += 1
                idx += 1
            elif cls is InlineAsm:
                # Opaque native burst; costs already in the cycle table.
                instret += instr.instr_estimate
                idx += 1
            elif cls is Syscall:
                args = [read(a) for a in instr.args]
                cycles += cpu.syscall_cycles
                instret += 2
                result = self.syscalls.handle(thread, instr.name, args)
                extra += result.seconds
                if result.wake:
                    cycles, instret, extra = self._release_wakes(
                        thread, machine, result, cycles, instret, extra
                    )
                if result.action == "exit_process":
                    thread.pc = (block, idx)
                    self._commit(thread, machine, cycles, instret, extra)
                    self._exit_process(thread)
                    return
                if result.action == "block":
                    thread.pc = (block, idx)  # resume AT the syscall
                    self._commit(thread, machine, cycles, instret, extra)
                    machine.thread_stopped()
                    return
                if instr.dst:
                    write_var(instr.dst, result.value)
                idx += 1
            else:  # pragma: no cover
                raise ExecutionError(f"unknown instruction {cls.__name__}")

        thread.pc = (block, idx)
        self._commit(thread, machine, cycles, instret, extra)

    # --------------------------------------------------------- helpers

    @staticmethod
    def _unop(instr: UnOp, a):
        try:
            return _apply_unop(instr.op, a)
        except ValueError as exc:
            raise ExecutionError(str(exc)) from None

    def _commit(
        self,
        thread: Thread,
        machine,
        cycles: float,
        instret: float,
        extra: float,
        count_step: bool = True,
    ) -> None:
        contention = max(
            1.0, machine.running_threads / machine.cpu.cores
        )
        seconds = (cycles / machine.cpu.freq_hz) * contention + extra
        thread.vtime += seconds
        thread.instructions += instret
        machine.charge_execution(instret, seconds)
        if count_step:
            self.steps += 1

    def _release_wakes(
        self,
        thread: Thread,
        machine,
        result,
        cycles: float,
        instret: float,
        extra: float,
    ) -> Tuple[float, float, float]:
        """Wake the threads released by a syscall (barrier, unlock, ...).

        The slice's accrued time is committed *first*: ``wake_at`` must
        be computed from the releasing thread's true arrival time,
        which includes the cycles and DSM service time accrued earlier
        in this very slice.  (Before this commit existed, barrier
        waiters could leave earlier than the thread that released
        them.)  The commit also happens before the woken threads bump
        the machine's run queue, so the pre-wake work is charged at
        pre-wake contention.  Returns the zeroed slice accumulators.
        """
        process = self.process
        self._commit(thread, machine, cycles, instret, extra, count_step=False)
        # Barrier release: everyone leaves at the latest arrival time,
        # including the releasing thread.
        wake_at = max(
            [thread.vtime]
            + [process.threads[t].vtime for t in result.wake]
        )
        thread.vtime = wake_at
        for woken_tid in result.wake:
            self._wake(process.threads[woken_tid], wake_at, 0)
        return 0.0, 0.0, 0.0

    def _locations(self, mf) -> Dict[str, tuple]:
        cached = getattr(mf, "_loc_cache", None)
        if cached is None:
            cached = {}
            for var in mf.fn.var_types:
                reg = mf.alloc.reg_assignment.get(var)
                if reg is not None:
                    cached[var] = ("r", reg)
                else:
                    cached[var] = ("s", mf.frame.slot_depths[var])
            mf._loc_cache = cached
        return cached

    def _cycles(self, mf, cpu) -> Dict[str, List[float]]:
        caches = getattr(mf, "_cycles_cache", None)
        if caches is None:
            caches = {}
            mf._cycles_cache = caches
        table = caches.get(cpu.name)
        if table is None:
            table = {
                label: [cpu.cycles_for(mi.counts) for mi in mis]
                for label, mis in mf.blocks.items()
            }
            caches[cpu.name] = table
        return table

    def _touch_range(self, thread: Thread, instr: Work, base: int) -> float:
        dsm = self.process.dsm
        key = (thread.tid, id(instr))
        # The cache entry is only valid while the DSM state is untouched
        # AND the thread is still on the same machine — a migration
        # must re-establish residency even if no fault bumped the epoch.
        state = (dsm.epoch, base, thread.machine_name)
        if self._range_cache.get(key) == state:
            return 0.0
        cost, _pages = dsm.ensure_range(
            thread.machine_name, base, instr.span, write=True
        )
        if self.sharing_observer is not None:
            self.sharing_observer.note_range(
                thread.tid, base, instr.span, cost, _pages
            )
        self._range_cache[key] = (dsm.epoch, base, thread.machine_name)
        if cost:
            self._mark_io(thread, cost)
        return cost

    def _resolve_symbol(self, thread: Thread, mf, frame, symbol: str) -> int:
        binary = self.process.binary
        if symbol in mf.frame.buffer_depths:
            depth, _ = mf.frame.buffer_depths[symbol]
            return frame.cfa - depth
        if symbol in mf.frame.slot_depths:
            return frame.cfa - mf.frame.slot_depths[symbol]
        if symbol in binary.tls.offsets:
            return thread.thread_pointer + binary.tls.offsets[symbol]
        if symbol in binary.global_addresses:
            return binary.global_addresses[symbol]
        if symbol in binary.module.functions:
            return binary.layout.address_of(symbol)
        raise ExecutionError(f"cannot resolve symbol {symbol!r}")

    # ----------------------------------------------------- call / return

    def _push_frame(self, thread: Thread, caller_mf, caller_frame, instr: Call,
                    args: List[float], mem) -> object:
        from repro.runtime.stack import Frame  # local: avoid import cycle

        isa_name = caller_mf.isa.name
        callee_mf = self.process.binary.machine_function(isa_name, instr.callee)
        new_cfa = caller_frame.cfa - caller_mf.frame.frame_size
        low, _high = thread.stack.active_bounds()
        if new_cfa - callee_mf.frame.frame_size < low:
            raise ExecutionError(
                f"stack overflow calling {instr.callee} (tid {thread.tid})"
            )
        regs = thread.regs
        isa = callee_mf.isa
        ra = caller_mf.return_address(instr.site_id)
        cfr = callee_mf.frame
        if cfr.return_addr_depth:
            mem[new_cfa - cfr.return_addr_depth] = ra
        if isa.cc.link_register:
            regs[isa.cc.link_register] = ra
        if cfr.saved_lr_depth:
            mem[new_cfa - cfr.saved_lr_depth] = ra
        if cfr.saved_fp_depth:
            mem[new_cfa - cfr.saved_fp_depth] = regs[isa.regfile.fp]
        for reg, depth in cfr.saved_reg_depths.items():
            mem[new_cfa - depth] = regs[reg]
        regs[isa.regfile.fp] = new_cfa
        regs[isa.regfile.sp] = new_cfa - cfr.frame_size

        frame = Frame(mf=callee_mf, cfa=new_cfa)
        thread.frames.append(frame)
        loc = self._locations(callee_mf)
        for (pname, _vt), value in zip(callee_mf.fn.params, args):
            where = loc[pname]
            if where[0] == "r":
                regs[where[1]] = value
            else:
                mem[new_cfa - where[1]] = value
        thread.pc = (callee_mf.fn.entry, 0)
        return callee_mf

    def _pop_frame(self, thread: Thread, value, mem, cpu) -> bool:
        """Unwind one frame; True when the thread has no caller left."""
        frame = thread.frames.pop()
        mf = frame.mf
        regs = thread.regs
        isa = mf.isa
        for reg, depth in mf.frame.saved_reg_depths.items():
            regs[reg] = mem.get(frame.cfa - depth, 0)
        if mf.frame.saved_fp_depth:
            regs[isa.regfile.fp] = mem.get(
                frame.cfa - mf.frame.saved_fp_depth, 0
            )
        if not thread.frames:
            return True
        caller = thread.frames[-1]
        block, idx = caller.resume
        call_instr = caller.mf.fn.blocks[block].instrs[idx]
        if call_instr.dst:
            loc = self._locations(caller.mf)[call_instr.dst]
            if loc[0] == "r":
                regs[loc[1]] = value
            else:
                mem[caller.cfa - loc[1]] = value
        regs[isa.regfile.sp] = caller.cfa - caller.mf.frame.frame_size
        thread.pc = (block, idx + 1)
        caller.resume = None
        return False

    # ------------------------------------------------- thread lifecycle

    def _evict_thread_caches(self, tid: int, flow: bool = True) -> None:
        """Drop per-thread engine caches for a finished/failed thread.

        Long serving runs execute many short-lived threads through one
        engine; without eviction ``_page_cache``/``_range_cache`` (and
        the migration flow map) grow monotonically with every thread
        that ever ran.
        """
        self._page_cache.pop(tid, None)
        if self._range_cache:
            stale = [key for key in self._range_cache if key[0] == tid]
            for key in stale:
                del self._range_cache[key]
        if flow:
            self._mig_flow.pop(tid, None)

    def _thread_finished(self, thread: Thread, value) -> None:
        thread.exit_value = value
        kernel = self.system.kernels[thread.machine_name]
        kernel.release_thread(thread)
        thread.state = ThreadState.DONE
        self._evict_thread_caches(thread.tid)
        main_tid = min(self.process.threads)
        if thread.tid == main_tid and self.process.exit_code is None:
            self.process.exit_code = int(value)
        # Wake joiners.
        for other in self.process.threads.values():
            if other.blocked_on == ("join", thread.tid):
                self._wake(other, max(other.vtime, thread.vtime), value)

    def _wake(self, thread: Thread, at_time: float, value) -> None:
        if thread.state != ThreadState.BLOCKED:
            return
        thread.wake(at_time)
        self.system.machines[thread.machine_name].thread_started()
        self._wake_values[thread.tid] = value

    def _complete_blocking_syscall(self, thread: Thread, value) -> None:
        """Finish the syscall the thread blocked in (pc is still at it)."""
        frame = thread.frames[-1]
        block, idx = thread.pc
        instr = frame.mf.fn.blocks[block].instrs[idx]
        if not isinstance(instr, Syscall):
            raise ExecutionError("woken thread not parked at a syscall")
        if instr.dst:
            loc = self._locations(frame.mf)[instr.dst]
            if loc[0] == "r":
                thread.regs[loc[1]] = value
            else:
                self.process.space._mem[frame.cfa - loc[1]] = value
        thread.pc = (block, idx + 1)

    def _exit_process(self, thread: Thread) -> None:
        self.system.reap_process(self.process)
        raise ProcessExit()

    def _fail_thread(self, thread: Thread, exc: Exception) -> None:
        """A crash (or a lost page) killed this thread mid-slice."""
        if thread.state != ThreadState.DONE:
            self.system.fail_thread(thread, str(exc))
        self._evict_thread_caches(thread.tid)

    # -------------------------------------------------------- migration

    def _do_migration(self, thread: Thread, target: str, site_id: int) -> None:
        outcome = self.migration.migrate_thread(thread, target, site_id)
        thread.vtime += outcome.total_seconds
        if outcome.span is not None:
            self._mig_flow[thread.tid] = outcome.span.span_id
        # Residency caches are stale on the new machine (the range
        # cache's machine-name check would catch it, but the dead
        # entries would pin memory until the thread exits).
        self._evict_thread_caches(thread.tid, flow=False)
        if self.hooks.on_migration is not None:
            self.hooks.on_migration(thread, outcome)


# ------------------------------------------------------------- factory

ENGINE_KINDS = ("exact", "fast")


def default_engine_kind() -> str:
    """The engine selected by ``REPRO_ENGINE`` (default: ``exact``)."""
    kind = os.environ.get("REPRO_ENGINE", "exact").strip().lower() or "exact"
    if kind not in ENGINE_KINDS:
        raise ValueError(
            f"REPRO_ENGINE={kind!r} unknown; choose one of {ENGINE_KINDS}"
        )
    return kind


def make_engine(
    system,
    process: Process,
    hooks: Optional[EngineHooks] = None,
    sampler=None,
    batch: int = 256,
    engine: Optional[str] = None,
) -> ExecutionEngine:
    """Build an execution engine: ``engine="exact"`` steps instruction
    by instruction, ``engine="fast"`` fast-forwards compiled regions
    (:mod:`repro.runtime.fastforward`) with bit-identical results.
    ``engine=None`` defers to the ``REPRO_ENGINE`` environment variable.
    """
    kind = engine if engine is not None else default_engine_kind()
    if kind == "exact":
        return ExecutionEngine(system, process, hooks, sampler=sampler, batch=batch)
    if kind == "fast":
        from repro.runtime.fastforward import FastExecutionEngine

        return FastExecutionEngine(
            system, process, hooks, sampler=sampler, batch=batch
        )
    raise ValueError(f"unknown engine kind {kind!r}; choose one of {ENGINE_KINDS}")

"""User-space runtime: address space, heap, stacks, the execution
engine, and the migration runtime (stack transformation + register
mapping).

This is the paper's modified musl + migration library layer: everything
that runs in user mode, between the compiled multi-ISA binary and the
replicated-kernel OS.
"""

from repro.runtime.address_space import AddressSpace, Vma
from repro.runtime.heap import HeapAllocator
from repro.runtime.stack import Frame, UserStack
from repro.runtime.regmap import map_registers
from repro.runtime.transform import StackTransformer, TransformStats


def __getattr__(name):
    # The execution engine pulls in the kernel package (for syscalls and
    # the migration service), which itself builds on the lower layers of
    # repro.runtime — import it lazily to keep the layering acyclic.
    if name in ("ExecutionEngine", "EngineHooks", "ProcessExit"):
        from repro.runtime import execution

        return getattr(execution, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "AddressSpace",
    "Vma",
    "HeapAllocator",
    "Frame",
    "UserStack",
    "map_registers",
    "StackTransformer",
    "TransformStats",
    "ExecutionEngine",
    "EngineHooks",
    "ProcessExit",
]

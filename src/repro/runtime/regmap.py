"""Register-state mapping r_AB (Sections 4 and 5.1).

"When a user thread migrates amongst different-ISA processors, the
kernel provides a service that maps the program counter, frame pointer,
and stack pointer registers from one ISA to the other."  Everything
else in the destination register file starts from a known-good state:
caller-saved registers are dead at migration points (they are call
sites), and live callee-saved values are installed afterwards by the
stack transformation.
"""

from typing import Dict

from repro.isa import Isa


def map_registers(
    dst_isa: Isa,
    sp: int,
    fp: int,
    pc: int,
    link: int = 0,
) -> Dict[str, float]:
    """Build the destination register file.

    ``sp``/``fp``/``pc`` are the already-transformed values (they point
    into the destination stack half and the destination ISA's aliased
    text).  ``link`` seeds the link register on ISAs that have one.
    """
    regs: Dict[str, float] = {
        reg.name: 0 for reg in dst_isa.regfile.all()
    }
    regs[dst_isa.regfile.sp] = sp
    regs[dst_isa.regfile.fp] = fp
    regs[dst_isa.regfile.pc] = pc
    if dst_isa.cc.link_register:
        regs[dst_isa.cc.link_register] = link
    return regs

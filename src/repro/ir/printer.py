"""Textual IR: printing.

A human-readable serialisation of modules (the analogue of LLVM's
``.ll`` form), used by the CLI's ``dump`` command and round-trippable
through :mod:`repro.ir.parser`.  Format by example::

    module is.A.1
    entry main

    global g_keys i64 x 1
    global g_init f64 x 2 = [1.5, 2.5]
    tls tls_counter i64 x 1 = [100]

    func main() -> i64 {
    entry:
      acc : i64 = const 0
      t : i64 = add acc, 3
      p : ptr = addr_of cell
      store i64 [p + 0], t
      v : i64 = load i64 [p + 8]
      r : i64 = call accum(t, 5)
      x : i64 = syscall print(r)
      work 5000 int_alu pages=base span=4096
      asm "rep movsb" ~ 16
      migpoint 0 entry
      cbr v, body, exit
    body:
      br entry
    exit:
      ret acc
    }
"""

from typing import List, Union

from repro.ir.function import Function, GlobalVar, Module
from repro.ir.instructions import (
    AddrOf,
    BinOp,
    Br,
    CBr,
    Call,
    Const,
    InlineAsm,
    Load,
    MigPoint,
    Operand,
    Ret,
    StackAlloc,
    Store,
    Syscall,
    UnOp,
    Work,
)


def _operand(op: Operand) -> str:
    if isinstance(op, str):
        return op
    if isinstance(op, float):
        return repr(op)
    return str(op)


def _vt(vt) -> str:
    return vt.value


def format_instr(instr, fn: Function = None) -> str:
    """One instruction as a line of text (no indentation).

    ``fn`` supplies destination types for call/syscall results; without
    it they print as ``i64``.
    """

    def dst_type(dst: str) -> str:
        if fn is not None and dst in fn.var_types:
            return _vt(fn.var_types[dst])
        return "i64"

    if isinstance(instr, Const):
        return f"{instr.dst} : {_vt(instr.vt)} = const {_operand(instr.value)}"
    if isinstance(instr, BinOp):
        return (
            f"{instr.dst} : {_vt(instr.vt)} = {instr.op} "
            f"{_operand(instr.a)}, {_operand(instr.b)}"
        )
    if isinstance(instr, UnOp):
        return f"{instr.dst} : {_vt(instr.vt)} = {instr.op} {_operand(instr.a)}"
    if isinstance(instr, Load):
        return (
            f"{instr.dst} : {_vt(instr.vt)} = load {_vt(instr.vt)} "
            f"[{_operand(instr.addr)} + {instr.offset}]"
        )
    if isinstance(instr, Store):
        return (
            f"store {_vt(instr.vt)} [{_operand(instr.addr)} + {instr.offset}], "
            f"{_operand(instr.src)}"
        )
    if isinstance(instr, AddrOf):
        return f"{instr.dst} : ptr = addr_of {instr.symbol}"
    if isinstance(instr, StackAlloc):
        return f"{instr.dst} : ptr = alloca {instr.size} {instr.name}"
    if isinstance(instr, Call):
        args = ", ".join(_operand(a) for a in instr.args)
        head = f"{instr.dst} : {dst_type(instr.dst)} = " if instr.dst else ""
        return f"{head}call {instr.callee}({args})"
    if isinstance(instr, Syscall):
        args = ", ".join(_operand(a) for a in instr.args)
        head = f"{instr.dst} : {dst_type(instr.dst)} = " if instr.dst else ""
        return f"{head}syscall {instr.name}({args})"
    if isinstance(instr, Ret):
        if instr.value is None:
            return "ret"
        return f"ret {_operand(instr.value)}"
    if isinstance(instr, Br):
        return f"br {instr.target}"
    if isinstance(instr, CBr):
        return f"cbr {_operand(instr.cond)}, {instr.if_true}, {instr.if_false}"
    if isinstance(instr, Work):
        text = f"work {_operand(instr.amount)} {instr.kind}"
        if instr.pages is not None:
            text += f" pages={_operand(instr.pages)} span={instr.span}"
        return text
    if isinstance(instr, MigPoint):
        return f"migpoint {instr.point_id} {instr.origin}"
    if isinstance(instr, InlineAsm):
        return f'asm "{instr.text}" ~ {instr.instr_estimate}'
    raise TypeError(f"unprintable instruction {type(instr).__name__}")


def _format_global(gv: GlobalVar) -> str:
    kind = "tls" if gv.thread_local else ("const" if gv.const else "global")
    line = f"{kind} {gv.name} {_vt(gv.vt)} x {gv.count}"
    if gv.init:
        values = ", ".join(_operand(v) for v in gv.init)
        line += f" = [{values}]"
    return line


def format_function(fn: Function) -> List[str]:
    params = ", ".join(f"{name} : {_vt(vt)}" for name, vt in fn.params)
    ret = _vt(fn.ret) if fn.ret is not None else "void"
    library = " library" if fn.library else ""
    lines = [f"func {fn.name}({params}) -> {ret}{library} {{"]
    # Locals that are never defined by an instruction (e.g. declared,
    # address-taken, written only through memory) need explicit
    # declarations or their types would be lost in the round trip.
    defined = {name for name, _ in fn.params}
    for label in fn.block_order:
        for instr in fn.blocks[label].instrs:
            defined.update(instr.defs())
    for name, vt in fn.var_types.items():
        if name not in defined:
            lines.append(f"  decl {name} : {_vt(vt)}")
    for label in fn.block_order:
        lines.append(f"{label}:")
        for instr in fn.blocks[label].instrs:
            lines.append(f"  {format_instr(instr, fn)}")
    lines.append("}")
    return lines


def print_module(module: Module) -> str:
    """Serialise a module to its textual form."""
    lines = [f"module {module.name}", f"entry {module.entry}", ""]
    for gv in module.globals.values():
        lines.append(_format_global(gv))
    if module.globals:
        lines.append("")
    for fn in module.functions.values():
        lines.extend(format_function(fn))
        lines.append("")
    return "\n".join(lines)

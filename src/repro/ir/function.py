"""Modules, functions, globals and basic blocks."""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.ir.instructions import Instr
from repro.isa.types import ValueType, type_size


@dataclass
class GlobalVar:
    """A global data symbol: ``count`` elements of type ``vt``.

    ``init`` holds initial element values; shorter than ``count`` means
    the remainder is zero-initialised (.bss-like).  ``section`` follows
    ELF conventions and drives the linker layout.
    """

    name: str
    vt: ValueType
    count: int = 1
    init: List[Union[int, float]] = field(default_factory=list)
    thread_local: bool = False
    const: bool = False

    @property
    def size(self) -> int:
        return type_size(self.vt) * self.count

    @property
    def section(self) -> str:
        if self.thread_local:
            return ".tdata" if self.init else ".tbss"
        if self.const:
            return ".rodata"
        return ".data" if self.init else ".bss"


class BasicBlock:
    """A labelled straight-line run of instructions ending in a terminator."""

    def __init__(self, label: str):
        self.label = label
        self.instrs: List[Instr] = []

    def append(self, instr: Instr) -> None:
        if self.instrs and self.instrs[-1].is_terminator:
            raise ValueError(f"block {self.label} already terminated")
        self.instrs.append(instr)

    @property
    def terminated(self) -> bool:
        return bool(self.instrs) and self.instrs[-1].is_terminator

    def successors(self) -> List[str]:
        if not self.terminated:
            return []
        term = self.instrs[-1]
        targets = []
        for attr in ("target", "if_true", "if_false"):
            value = getattr(term, attr, None)
            if value is not None:
                targets.append(value)
        return targets

    def __repr__(self) -> str:
        return f"BasicBlock({self.label}, {len(self.instrs)} instrs)"


class Function:
    """A function: typed params and locals, and a CFG of basic blocks."""

    def __init__(
        self,
        name: str,
        params: List[Tuple[str, ValueType]],
        ret: Optional[ValueType] = None,
        library: bool = False,
    ):
        self.name = name
        self.params = list(params)
        self.ret = ret
        # Library code (libc-like): migration points are never inserted
        # here — "applications cannot migrate during library code
        # execution" (Section 5.4).
        self.library = library
        self.var_types: Dict[str, ValueType] = dict(params)
        self.blocks: Dict[str, BasicBlock] = {}
        self.block_order: List[str] = []
        # Locals whose address is taken — they must live in memory.
        self.address_taken: set = set()
        # Stack buffers: name -> size in bytes.
        self.stack_buffers: Dict[str, int] = {}
        self._label_counter = 0

    @property
    def entry(self) -> str:
        if not self.block_order:
            raise ValueError(f"function {self.name} has no blocks")
        return self.block_order[0]

    def block(self, label: str = "") -> BasicBlock:
        """Create (and register) a new basic block."""
        if not label:
            label = f"bb{self._label_counter}"
            self._label_counter += 1
        if label in self.blocks:
            raise ValueError(f"duplicate block label {label} in {self.name}")
        bb = BasicBlock(label)
        self.blocks[label] = bb
        self.block_order.append(label)
        return bb

    def declare(self, name: str, vt: ValueType) -> str:
        existing = self.var_types.get(name)
        if existing is not None and existing != vt:
            raise ValueError(
                f"local {name} redeclared as {vt} (was {existing}) in {self.name}"
            )
        self.var_types[name] = vt
        return name

    def instructions(self):
        """Iterate (block_label, index, instr) in layout order."""
        for label in self.block_order:
            for i, instr in enumerate(self.blocks[label].instrs):
                yield label, i, instr

    def __repr__(self) -> str:
        n = sum(len(b.instrs) for b in self.blocks.values())
        return f"Function({self.name}, {len(self.blocks)} blocks, {n} instrs)"


class Module:
    """A compilation unit: globals plus functions."""

    def __init__(self, name: str):
        self.name = name
        self.globals: Dict[str, GlobalVar] = {}
        self.functions: Dict[str, Function] = {}
        self.entry: str = "main"

    def add_global(self, gv: GlobalVar) -> GlobalVar:
        if gv.name in self.globals:
            raise ValueError(f"duplicate global {gv.name}")
        self.globals[gv.name] = gv
        return gv

    def function(
        self,
        name: str,
        params: Optional[List[Tuple[str, ValueType]]] = None,
        ret: Optional[ValueType] = None,
        library: bool = False,
    ) -> Function:
        if name in self.functions:
            raise ValueError(f"duplicate function {name}")
        fn = Function(name, params or [], ret, library=library)
        self.functions[name] = fn
        return fn

    def __repr__(self) -> str:
        return (
            f"Module({self.name}, {len(self.functions)} functions, "
            f"{len(self.globals)} globals)"
        )

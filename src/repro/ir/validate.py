"""Structural validation of IR modules.

Run by the toolchain before lowering; catches the usual construction
mistakes (unterminated blocks, branches to nowhere, undeclared locals,
calls to missing functions) at build time instead of interpret time.
"""

from typing import List

from repro.ir.function import Function, Module
from repro.ir.instructions import AddrOf, Br, CBr, Call, StackAlloc


class ValidationError(Exception):
    """Raised when a module is structurally invalid."""

    def __init__(self, problems: List[str]):
        self.problems = problems
        super().__init__("; ".join(problems))


def _validate_function(fn: Function, module: Module, problems: List[str]) -> None:
    where = f"function {fn.name}"
    if not fn.block_order:
        problems.append(f"{where}: no blocks")
        return
    for label in fn.block_order:
        block = fn.blocks[label]
        if not block.terminated:
            problems.append(f"{where}: block {label} not terminated")
            continue
        for i, instr in enumerate(block.instrs[:-1]):
            if instr.is_terminator:
                problems.append(
                    f"{where}: terminator mid-block at {label}:{i}"
                )
        for succ in block.successors():
            if succ not in fn.blocks:
                problems.append(f"{where}: branch to unknown block {succ}")
    for label, i, instr in fn.instructions():
        at = f"{where} {label}:{i}"
        for use in instr.uses():
            if use not in fn.var_types:
                problems.append(f"{at}: use of undeclared local {use}")
        for d in instr.defs():
            if d not in fn.var_types:
                problems.append(f"{at}: def of undeclared local {d}")
        if isinstance(instr, Call) and instr.callee not in module.functions:
            problems.append(f"{at}: call to unknown function {instr.callee}")
        if isinstance(instr, AddrOf):
            known = (
                instr.symbol in module.globals
                or instr.symbol in fn.var_types
                or instr.symbol in fn.stack_buffers
                or instr.symbol in module.functions
            )
            if not known:
                problems.append(f"{at}: addr_of unknown symbol {instr.symbol}")
        if isinstance(instr, StackAlloc) and instr.size <= 0:
            problems.append(f"{at}: stack_alloc of size {instr.size}")


def validate_module(module: Module) -> None:
    """Raise :class:`ValidationError` if ``module`` is malformed."""
    problems: List[str] = []
    if module.entry not in module.functions:
        problems.append(f"entry function {module.entry} not defined")
    for fn in module.functions.values():
        _validate_function(fn, module, problems)
    if problems:
        raise ValidationError(problems)

"""Textual IR: parsing.

Inverse of :mod:`repro.ir.printer`: ``parse_module(print_module(m))``
reconstructs a structurally identical module (types, blocks, globals,
address-taken sets and stack buffers included).  Site ids are not part
of the text — the toolchain assigns them at build time.
"""

import re
from typing import List, Optional, Union

from repro.ir.function import Function, GlobalVar, Module
from repro.ir.instructions import (
    AddrOf,
    BinOp,
    Br,
    CBr,
    Call,
    Const,
    InlineAsm,
    Load,
    MigPoint,
    Operand,
    Ret,
    StackAlloc,
    Store,
    Syscall,
    UnOp,
    BINARY_OPS,
    UNARY_OPS,
)
from repro.ir.instructions import Work
from repro.isa.types import ValueType

_IDENT = r"[A-Za-z_.][A-Za-z0-9_.]*"
_NUM = r"-?\d+(?:\.\d+)?(?:[eE][-+]?\d+)?"

_RE_GLOBAL = re.compile(
    rf"^(global|const|tls) ({_IDENT}) (\w+) x (\d+)(?: = \[(.*)\])?$"
)
_RE_FUNC = re.compile(
    rf"^func ({_IDENT})\((.*)\) -> (\w+)( library)? \{{$"
)
_RE_LABEL = re.compile(rf"^({_IDENT}):$")
_RE_DEF = re.compile(rf"^({_IDENT}) : (\w+) = (.+)$")
_RE_LOAD = re.compile(rf"^load (\w+) \[({_IDENT}|{_NUM}) \+ (-?\d+)\]$")
_RE_STORE = re.compile(
    rf"^store (\w+) \[({_IDENT}|{_NUM}) \+ (-?\d+)\], (.+)$"
)
_RE_CALLISH = re.compile(rf"^(call|syscall) ({_IDENT})\((.*)\)$")
_RE_WORK = re.compile(
    rf"^work ({_IDENT}|{_NUM}) (\w+)(?: pages=({_IDENT}|{_NUM}) span=(\d+))?$"
)
_RE_MIGPOINT = re.compile(r"^migpoint (-?\d+) (\w+)$")
_RE_ASM = re.compile(r'^asm "(.*)" ~ (\d+)$')
_RE_ALLOCA = re.compile(rf"^alloca (\d+) ({_IDENT})$")


class ParseError(Exception):
    def __init__(self, line_no: int, line: str, reason: str):
        super().__init__(f"line {line_no}: {reason}: {line!r}")
        self.line_no = line_no


def _parse_operand(text: str) -> Operand:
    text = text.strip()
    if re.fullmatch(_NUM, text):
        if any(c in text for c in ".eE") and not text.lstrip("-").isdigit():
            return float(text)
        return int(text)
    return text


def _parse_args(text: str) -> List[Operand]:
    text = text.strip()
    if not text:
        return []
    return [_parse_operand(part) for part in text.split(",")]


def _vt(name: str, line_no: int, line: str) -> ValueType:
    try:
        return ValueType(name)
    except ValueError:
        raise ParseError(line_no, line, f"unknown type {name}") from None


def _parse_rhs(dst: str, vt: ValueType, rhs: str, fn: Function,
               line_no: int, line: str):
    """The right-hand side of a ``dst : vt = ...`` definition."""
    m = _RE_LOAD.match(rhs)
    if m:
        load_vt = _vt(m.group(1), line_no, line)
        return Load(dst, _parse_operand(m.group(2)), int(m.group(3)), load_vt)
    m = _RE_CALLISH.match(rhs)
    if m:
        kind, callee, args = m.groups()
        if kind == "call":
            return Call(dst, callee, _parse_args(args))
        return Syscall(dst, callee, _parse_args(args))
    m = _RE_ALLOCA.match(rhs)
    if m:
        size, name = int(m.group(1)), m.group(2)
        fn.stack_buffers[name] = size
        return StackAlloc(dst, size, name)
    if rhs.startswith("addr_of "):
        symbol = rhs[len("addr_of "):].strip()
        return AddrOf(dst, symbol)
    if rhs.startswith("const "):
        return Const(dst, _parse_operand(rhs[len("const "):]), vt)
    # Unary / binary operators.
    parts = rhs.split(None, 1)
    if len(parts) == 2:
        op, rest = parts
        operands = [_parse_operand(p) for p in rest.split(",")]
        if op in BINARY_OPS and len(operands) == 2:
            return BinOp(dst, op, operands[0], operands[1], vt)
        if op in UNARY_OPS and len(operands) == 1:
            return UnOp(dst, op, operands[0], vt)
    raise ParseError(line_no, line, "unparseable definition")


def _parse_plain(text: str, fn: Function, line_no: int, line: str):
    """An instruction without a destination."""
    m = _RE_STORE.match(text)
    if m:
        vt = _vt(m.group(1), line_no, line)
        return Store(
            _parse_operand(m.group(2)), int(m.group(3)),
            _parse_operand(m.group(4)), vt,
        )
    m = _RE_CALLISH.match(text)
    if m:
        kind, callee, args = m.groups()
        if kind == "call":
            return Call("", callee, _parse_args(args))
        return Syscall("", callee, _parse_args(args))
    m = _RE_WORK.match(text)
    if m:
        amount, kind, pages, span = m.groups()
        return Work(
            _parse_operand(amount), kind,
            _parse_operand(pages) if pages is not None else None,
            int(span) if span is not None else 0,
        )
    m = _RE_MIGPOINT.match(text)
    if m:
        return MigPoint(point_id=int(m.group(1)), origin=m.group(2))
    m = _RE_ASM.match(text)
    if m:
        return InlineAsm(text=m.group(1), instr_estimate=int(m.group(2)))
    if text == "ret":
        return Ret(None)
    if text.startswith("ret "):
        return Ret(_parse_operand(text[4:]))
    if text.startswith("br "):
        return Br(text[3:].strip())
    if text.startswith("cbr "):
        cond, if_true, if_false = [p.strip() for p in text[4:].split(",")]
        return CBr(_parse_operand(cond), if_true, if_false)
    raise ParseError(line_no, line, "unparseable instruction")


def parse_module(text: str) -> Module:
    """Parse the textual form back into a :class:`Module`."""
    module: Optional[Module] = None
    fn: Optional[Function] = None
    block = None

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("module "):
            module = Module(line[len("module "):].strip())
            continue
        if module is None:
            raise ParseError(line_no, line, "missing module header")
        if line.startswith("entry "):
            module.entry = line[len("entry "):].strip()
            continue
        m = _RE_GLOBAL.match(line)
        if m and fn is None:
            kind, name, vt_name, count, init = m.groups()
            values = _parse_args(init) if init else []
            module.add_global(
                GlobalVar(
                    name,
                    _vt(vt_name, line_no, line),
                    count=int(count),
                    init=values,
                    thread_local=(kind == "tls"),
                    const=(kind == "const"),
                )
            )
            continue
        m = _RE_FUNC.match(line)
        if m:
            name, params_text, ret_name, library = m.groups()
            params = []
            if params_text.strip():
                for part in params_text.split(","):
                    pname, ptype = [x.strip() for x in part.split(":")]
                    params.append((pname, _vt(ptype, line_no, line)))
            ret = None if ret_name == "void" else _vt(ret_name, line_no, line)
            fn = module.function(name, params, ret, library=bool(library))
            block = None
            continue
        if line == "}":
            fn = None
            block = None
            continue
        if fn is None:
            raise ParseError(line_no, line, "instruction outside a function")
        if line.startswith("decl "):
            name, vt_name = [x.strip() for x in line[5:].split(":")]
            fn.declare(name, _vt(vt_name, line_no, line))
            continue
        m = _RE_LABEL.match(line)
        if m:
            block = fn.block(m.group(1))
            continue
        if block is None:
            raise ParseError(line_no, line, "instruction outside a block")
        m = _RE_DEF.match(line)
        if m:
            dst, vt_name, rhs = m.groups()
            vt = _vt(vt_name, line_no, line)
            instr = _parse_rhs(dst, vt, rhs.strip(), fn, line_no, line)
            fn.declare(dst, vt)
        else:
            instr = _parse_plain(line, fn, line_no, line)
        # Re-derive bookkeeping the builder normally maintains.
        if isinstance(instr, AddrOf) and instr.symbol in fn.var_types:
            fn.address_taken.add(instr.symbol)
        block.append(instr)

    if module is None:
        raise ParseError(0, "", "empty input")
    return module

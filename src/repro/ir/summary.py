"""Per-block cost summaries — the metadata behind fast-forward execution.

The exact interpreter charges every machine instruction individually
from ``MachineInstr.counts``.  The analytical fast-forward engine
(:mod:`repro.runtime.fastforward`) instead precomputes, per basic
block, the per-instruction machine-instruction counts, the aggregate
per-:class:`InstrClass` totals, and the positions of *events* (calls,
returns, syscalls, migration points, branches) that bound the
straight-line segments it evaluates in closed form.

Cycle costs for a concrete CPU are derived from a summary exactly as
the interpreter derives them — :meth:`CpuModel.cycles_for` applied per
instruction, never reassociated — so a summary that matches the IR
reproduces the interpreter's floating-point arithmetic bit for bit.  A
summary that does *not* match the IR (stale, corrupted) is detectable:
under ``REPRO_VALIDATE=1`` the fast engine replays every segment
against the interpreter's own cycle tables and raises
``FastForwardDivergence`` on the first mismatch.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.ir.instructions import Br, CBr, Call, MigPoint, Ret, Syscall, Work
from repro.isa.isa import InstrClass

# Event kinds recorded in BlockSummary.events.
EVENT_CALL = "call"
EVENT_RET = "ret"
EVENT_SYSCALL = "syscall"
EVENT_MIGPOINT = "migpoint"
EVENT_BR = "br"
EVENT_CBR = "cbr"

_EVENT_OF = {
    Call: EVENT_CALL,
    Ret: EVENT_RET,
    Syscall: EVENT_SYSCALL,
    MigPoint: EVENT_MIGPOINT,
    Br: EVENT_BR,
    CBr: EVENT_CBR,
}


@dataclass
class BlockSummary:
    """Precomputed cost metadata for one lowered basic block."""

    label: str
    # Per-instruction machine-instruction counts, copied from the
    # lowered MachineInstrs — mutating a summary never mutates the IR,
    # which is what lets the cross-validator catch a corrupted one.
    counts: List[Dict[InstrClass, float]]
    # Aggregate machine-instruction counts over the whole block.
    totals: Dict[InstrClass, float] = field(default_factory=dict)
    # (position, event kind) for every segment-bounding instruction.
    events: List[Tuple[int, str]] = field(default_factory=list)
    # Positions of Work instructions (dynamic, data-dependent costs).
    work_positions: List[int] = field(default_factory=list)

    def cycles_per_instr(self, cpu) -> List[float]:
        """Static cycle cost of each instruction on ``cpu``.

        Element ``i`` is ``cpu.cycles_for(self.counts[i])`` — the same
        per-instruction sum the interpreter's cycle tables use, in the
        same class order, so the floats are identical.
        """
        return [cpu.cycles_for(c) for c in self.counts]

    @property
    def straight_line(self) -> bool:
        """True when nothing in the block bounds a segment early (the
        only event is the terminator)."""
        return len(self.events) <= 1


def summarize_block(label: str, mis) -> BlockSummary:
    """Build the summary for one block's lowered instructions."""
    counts: List[Dict[InstrClass, float]] = []
    totals: Dict[InstrClass, float] = {}
    events: List[Tuple[int, str]] = []
    work_positions: List[int] = []
    for pos, mi in enumerate(mis):
        counts.append(dict(mi.counts))
        for cls, n in mi.counts.items():
            totals[cls] = totals.get(cls, 0.0) + n
        kind = _EVENT_OF.get(type(mi.ir))
        if kind is not None:
            events.append((pos, kind))
        elif type(mi.ir) is Work:
            work_positions.append(pos)
    return BlockSummary(
        label=label,
        counts=counts,
        totals=totals,
        events=events,
        work_positions=work_positions,
    )


def block_summaries(mf) -> Dict[str, BlockSummary]:
    """Summaries for every block of a machine function, cached on it."""
    cached = getattr(mf, "_block_summaries", None)
    if cached is None:
        cached = {
            label: summarize_block(label, mis)
            for label, mis in mf.blocks.items()
        }
        mf._block_summaries = cached
    return cached


def invalidate_summaries(mf) -> None:
    """Drop cached summaries *and* code compiled from them.

    Tests use this to force recompilation after mutating a summary;
    the engine never mutates summaries itself.
    """
    if hasattr(mf, "_block_summaries"):
        del mf._block_summaries
    if hasattr(mf, "_fast_segments"):
        del mf._fast_segments


def function_totals(mf) -> Dict[InstrClass, float]:
    """Aggregate machine-instruction counts across all blocks."""
    totals: Dict[InstrClass, float] = {}
    for summary in block_summaries(mf).values():
        for cls, n in summary.totals.items():
            totals[cls] = totals.get(cls, 0.0) + n
    return totals

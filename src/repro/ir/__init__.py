"""A small typed intermediate representation.

This stands in for LLVM bitcode in the paper's toolchain.  Workloads are
written against :class:`repro.ir.builder.FunctionBuilder`; the per-ISA
back-ends in :mod:`repro.compiler` lower modules to machine functions.

Design points mirroring the paper's needs:

* locals are mutable and typed (no SSA) — liveness analysis recovers the
  live sets the stackmap emitter needs at call sites;
* address-taken locals and stack arrays live in (simulated) memory, so
  pointers into the stack exist and must be fixed up on migration;
* an abstract ``work`` instruction represents a calibrated burst of
  machine instructions of one class, letting class-C NPB runs execute in
  a Python interpreter without interpreting billions of operations.
"""

from repro.ir.instructions import (
    AddrOf,
    BinOp,
    Br,
    CBr,
    Call,
    Const,
    InlineAsm,
    Instr,
    Load,
    MigPoint,
    Ret,
    StackAlloc,
    Store,
    Syscall,
    UnOp,
    Work,
)
from repro.ir.function import BasicBlock, Function, GlobalVar, Module
from repro.ir.builder import FunctionBuilder
from repro.ir.validate import ValidationError, validate_module
from repro.ir.analysis import call_graph, liveness

__all__ = [
    "Instr",
    "InlineAsm",
    "Const",
    "BinOp",
    "UnOp",
    "Load",
    "Store",
    "AddrOf",
    "StackAlloc",
    "Call",
    "Ret",
    "Br",
    "CBr",
    "Work",
    "MigPoint",
    "Syscall",
    "BasicBlock",
    "Function",
    "GlobalVar",
    "Module",
    "FunctionBuilder",
    "ValidationError",
    "validate_module",
    "liveness",
    "call_graph",
]

"""Ergonomic construction of IR functions.

Workloads (repro.workloads) are written against this API.  The builder
tracks a *current block* and provides structured control flow so that
benchmark code reads like the C it stands in for:

>>> from repro.ir import Module, FunctionBuilder
>>> from repro.isa.types import ValueType as VT
>>> m = Module("demo")
>>> fb = FunctionBuilder(m.function("sum_to", [("n", VT.I64)], VT.I64))
>>> acc = fb.local("acc", VT.I64, init=0)
>>> with fb.for_range("i", 0, "n") as i:
...     fb.binop_into(acc, "add", acc, i, VT.I64)
>>> fb.ret(acc)
"""

import contextlib
from typing import Callable, List, Optional, Union

from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import (
    AddrOf,
    BinOp,
    Br,
    CBr,
    Call,
    Const,
    InlineAsm,
    Load,
    MigPoint,
    Operand,
    Ret,
    StackAlloc,
    Store,
    Syscall,
    UnOp,
    Work,
)
from repro.isa.types import ValueType


class FunctionBuilder:
    """Builds the body of one :class:`Function`."""

    def __init__(self, fn: Function):
        self.fn = fn
        self._current: BasicBlock = fn.block("entry")
        self._temp_counter = 0
        self._migpoint_counter = 0

    # ---------------------------------------------------------------- blocks

    @property
    def current(self) -> BasicBlock:
        return self._current

    def emit(self, instr) -> None:
        self._current.append(instr)

    def new_block(self, label: str = "") -> BasicBlock:
        return self.fn.block(label)

    def switch_to(self, block: BasicBlock) -> None:
        self._current = block

    def branch_to(self, block: BasicBlock) -> None:
        """Terminate the current block with a jump and continue in ``block``."""
        if not self._current.terminated:
            self.emit(Br(block.label))
        self._current = block

    # ---------------------------------------------------------------- values

    def local(self, name: str, vt: ValueType, init: Optional[Operand] = None) -> str:
        self.fn.declare(name, vt)
        if init is not None:
            self.assign(name, init, vt)
        return name

    def temp(self, vt: ValueType) -> str:
        name = f".t{self._temp_counter}"
        self._temp_counter += 1
        return self.fn.declare(name, vt)

    def assign(self, dst: str, src: Operand, vt: Optional[ValueType] = None) -> str:
        vt = vt or self.fn.var_types.get(dst) or ValueType.I64
        self.fn.declare(dst, vt)
        if isinstance(src, str):
            self.emit(UnOp(dst, "mov", src, vt))
        else:
            self.emit(Const(dst, src, vt))
        return dst

    def binop(self, op: str, a: Operand, b: Operand, vt: ValueType) -> str:
        dst = self.temp(vt)
        self.emit(BinOp(dst, op, a, b, vt))
        return dst

    def binop_into(self, dst: str, op: str, a: Operand, b: Operand, vt: ValueType) -> str:
        self.fn.declare(dst, vt)
        self.emit(BinOp(dst, op, a, b, vt))
        return dst

    def unop(self, op: str, a: Operand, vt: ValueType) -> str:
        dst = self.temp(vt)
        self.emit(UnOp(dst, op, a, vt))
        return dst

    # ---------------------------------------------------------------- memory

    def load(self, addr: Operand, offset: int, vt: ValueType) -> str:
        dst = self.temp(vt)
        self.emit(Load(dst, addr, offset, vt))
        return dst

    def store(self, addr: Operand, offset: int, src: Operand, vt: ValueType) -> None:
        self.emit(Store(addr, offset, src, vt))

    def addr_of(self, symbol: str) -> str:
        dst = self.temp(ValueType.PTR)
        self.emit(AddrOf(dst, symbol))
        if symbol in self.fn.var_types:
            self.fn.address_taken.add(symbol)
        return dst

    def stack_alloc(self, size: int, name: str = "") -> str:
        """Allocate ``size`` bytes in this function's frame; returns a PTR."""
        if not name:
            name = f".buf{len(self.fn.stack_buffers)}"
        self.fn.stack_buffers[name] = size
        dst = self.temp(ValueType.PTR)
        self.emit(StackAlloc(dst, size, name))
        return dst

    # ----------------------------------------------------------------- calls

    def call(
        self,
        callee: str,
        args: Optional[List[Operand]] = None,
        ret_vt: Optional[ValueType] = None,
    ) -> str:
        dst = self.temp(ret_vt) if ret_vt is not None else ""
        self.emit(Call(dst, callee, list(args or [])))
        return dst

    def syscall(
        self,
        name: str,
        args: Optional[List[Operand]] = None,
        ret_vt: Optional[ValueType] = None,
    ) -> str:
        dst = self.temp(ret_vt) if ret_vt is not None else ""
        self.emit(Syscall(dst, name, list(args or [])))
        return dst

    def ret(self, value: Optional[Operand] = None) -> None:
        self.emit(Ret(value))

    # ------------------------------------------------------------------ misc

    def work(
        self,
        amount: Operand,
        kind: str = "int_alu",
        pages: Optional[Operand] = None,
        span: int = 0,
    ) -> None:
        self.emit(Work(amount, kind, pages, span))

    def inline_asm(self, text: str, instr_estimate: int = 4) -> None:
        """Emit opaque inline assembly (makes the function unmigratable)."""
        self.emit(InlineAsm(text=text, instr_estimate=instr_estimate))

    def migration_point(self, origin: str = "explicit") -> None:
        self.emit(MigPoint(point_id=self._migpoint_counter, origin=origin))
        self._migpoint_counter += 1

    # --------------------------------------------------------- control flow

    @contextlib.contextmanager
    def for_range(
        self,
        var: str,
        start: Operand,
        stop: Operand,
        step: int = 1,
        vt: ValueType = ValueType.I64,
    ):
        """``for var in range(start, stop, step)`` over IR blocks."""
        self.local(var, vt, init=start)
        header = self.new_block()
        body = self.new_block()
        exit_block = self.new_block()
        self.branch_to(header)
        cond = self.binop("lt" if step > 0 else "gt", var, stop, vt)
        self.emit(CBr(cond, body.label, exit_block.label))
        self.switch_to(body)
        yield var
        if not self._current.terminated:
            self.binop_into(var, "add", var, step, vt)
            self.emit(Br(header.label))
        self.switch_to(exit_block)

    @contextlib.contextmanager
    def while_loop(self, make_cond: Callable[[], Operand]):
        """``while make_cond():`` — the callable emits into the header block."""
        header = self.new_block()
        body = self.new_block()
        exit_block = self.new_block()
        self.branch_to(header)
        cond = make_cond()
        self.emit(CBr(cond, body.label, exit_block.label))
        self.switch_to(body)
        yield
        if not self._current.terminated:
            self.emit(Br(header.label))
        self.switch_to(exit_block)

    @contextlib.contextmanager
    def if_then(self, cond: Operand):
        then_block = self.new_block()
        join = self.new_block()
        self.emit(CBr(cond, then_block.label, join.label))
        self.switch_to(then_block)
        yield
        if not self._current.terminated:
            self.emit(Br(join.label))
        self.switch_to(join)

    def if_then_else(
        self, cond: Operand, then_fn: Callable[[], None], else_fn: Callable[[], None]
    ) -> None:
        then_block = self.new_block()
        else_block = self.new_block()
        join = self.new_block()
        self.emit(CBr(cond, then_block.label, else_block.label))
        self.switch_to(then_block)
        then_fn()
        if not self._current.terminated:
            self.emit(Br(join.label))
        self.switch_to(else_block)
        else_fn()
        if not self._current.terminated:
            self.emit(Br(join.label))
        self.switch_to(join)

"""Dataflow analyses over IR functions.

``liveness`` is the analysis the paper's stackmap emitter depends on:
the set of locals whose values must survive each call site is exactly
what the stack transformation runtime copies between ABIs.
"""

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.ir.function import Function, Module
from repro.ir.instructions import Call, MigPoint, Syscall


@dataclass
class LivenessResult:
    """Per-block and per-instruction liveness for one function."""

    live_in: Dict[str, FrozenSet[str]]
    live_out: Dict[str, FrozenSet[str]]
    # (block, index) -> locals live immediately AFTER that instruction.
    live_after: Dict[Tuple[str, int], FrozenSet[str]]

    def live_across_calls(self, fn: Function) -> Set[str]:
        """Locals live across at least one call / migration point.

        These may not be allocated to caller-saved registers, and (for
        migration points) are exactly the values the stackmap records.
        """
        across: Set[str] = set()
        for label, i, instr in fn.instructions():
            if isinstance(instr, (Call, Syscall, MigPoint)):
                after = set(self.live_after[(label, i)])
                after.discard(getattr(instr, "dst", ""))
                across |= after
        return across


def liveness(fn: Function) -> LivenessResult:
    """Backward may-liveness over the CFG."""
    predecessors: Dict[str, List[str]] = {label: [] for label in fn.block_order}
    for label in fn.block_order:
        for succ in fn.blocks[label].successors():
            predecessors[succ].append(label)

    use: Dict[str, Set[str]] = {}
    defs: Dict[str, Set[str]] = {}
    for label in fn.block_order:
        u: Set[str] = set()
        d: Set[str] = set()
        for instr in fn.blocks[label].instrs:
            for v in instr.uses():
                if v not in d:
                    u.add(v)
            d.update(instr.defs())
        use[label] = u
        defs[label] = d

    live_in: Dict[str, Set[str]] = {label: set() for label in fn.block_order}
    live_out: Dict[str, Set[str]] = {label: set() for label in fn.block_order}

    changed = True
    while changed:
        changed = False
        for label in reversed(fn.block_order):
            out: Set[str] = set()
            for succ in fn.blocks[label].successors():
                out |= live_in[succ]
            new_in = use[label] | (out - defs[label])
            if out != live_out[label] or new_in != live_in[label]:
                live_out[label] = out
                live_in[label] = new_in
                changed = True

    # Address-taken locals are pinned to memory and conservatively kept
    # live everywhere they might be reachable through a pointer.
    pinned = set(fn.address_taken)

    live_after: Dict[Tuple[str, int], FrozenSet[str]] = {}
    for label in fn.block_order:
        instrs = fn.blocks[label].instrs
        live: Set[str] = set(live_out[label]) | pinned
        for i in range(len(instrs) - 1, -1, -1):
            live_after[(label, i)] = frozenset(live)
            instr = instrs[i]
            live -= set(instr.defs())
            live |= set(instr.uses())
            live |= pinned

    return LivenessResult(
        live_in={k: frozenset(v | pinned) for k, v in live_in.items()},
        live_out={k: frozenset(v | pinned) for k, v in live_out.items()},
        live_after=live_after,
    )


def call_graph(module: Module) -> Dict[str, Set[str]]:
    """Map each function name to the set of functions it calls."""
    graph: Dict[str, Set[str]] = {name: set() for name in module.functions}
    for name, fn in module.functions.items():
        for _, _, instr in fn.instructions():
            if isinstance(instr, Call):
                graph[name].add(instr.callee)
    return graph


def max_call_depth(module: Module, root: str = "") -> int:
    """Longest acyclic call chain from ``root`` (defaults to the entry)."""
    root = root or module.entry
    graph = call_graph(module)
    seen: Set[str] = set()

    def depth(fn: str) -> int:
        if fn in seen or fn not in graph:
            return 0
        seen.add(fn)
        best = 0
        for callee in graph[fn]:
            best = max(best, depth(callee))
        seen.discard(fn)
        return 1 + best

    return depth(root)

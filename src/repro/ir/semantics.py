"""Operational semantics of IR operators.

One shared table used by both the execution engine and the constant
folder, so optimisation can never disagree with execution.  Integer
division/modulo follow C semantics (truncation toward zero); shifts are
masked to 64 bits.
"""

from typing import Callable, Dict


def truncdiv(a: int, b: int) -> int:
    """C-style integer division (truncates toward zero)."""
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


INT_BIN: Dict[str, Callable] = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "div": lambda a, b: truncdiv(int(a), int(b)),
    "mod": lambda a, b: int(a) - truncdiv(int(a), int(b)) * int(b),
    "and": lambda a, b: int(a) & int(b),
    "or": lambda a, b: int(a) | int(b),
    "xor": lambda a, b: int(a) ^ int(b),
    "shl": lambda a, b: (int(a) << int(b)) & 0xFFFFFFFFFFFFFFFF,
    "shr": lambda a, b: int(a) >> int(b),
    "eq": lambda a, b: 1 if a == b else 0,
    "ne": lambda a, b: 1 if a != b else 0,
    "lt": lambda a, b: 1 if a < b else 0,
    "le": lambda a, b: 1 if a <= b else 0,
    "gt": lambda a, b: 1 if a > b else 0,
    "ge": lambda a, b: 1 if a >= b else 0,
    "min": min,
    "max": max,
}

FLOAT_BIN: Dict[str, Callable] = dict(INT_BIN)
FLOAT_BIN.update(
    {
        "add": lambda a, b: a + b,
        "sub": lambda a, b: a - b,
        "mul": lambda a, b: a * b,
        "div": lambda a, b: a / b,
        "mod": lambda a, b: a - b * int(a / b) if b else 0.0,
    }
)


def apply_unop(op: str, a):
    """Evaluate a unary operator; raises on unknown ops."""
    if op == "mov":
        return a
    if op == "neg":
        return -a
    if op == "not":
        return ~int(a)
    if op == "i2f":
        return float(a)
    if op == "f2i":
        return int(a)
    if op == "sqrt":
        return abs(a) ** 0.5
    if op == "abs":
        return abs(a)
    raise ValueError(f"unknown unop {op}")

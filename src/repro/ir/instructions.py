"""IR instruction set.

Operands are either a ``str`` naming a local variable or a Python
``int``/``float`` literal.  Every instruction that produces a value
names its destination local in ``dst``.
"""

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from repro.isa.types import ValueType

Operand = Union[str, int, float]

BINARY_OPS = (
    "add", "sub", "mul", "div", "mod",
    "and", "or", "xor", "shl", "shr",
    "eq", "ne", "lt", "le", "gt", "ge",
    "min", "max",
)
UNARY_OPS = ("mov", "neg", "not", "i2f", "f2i", "sqrt", "abs")
# Syscall names understood by repro.kernel.syscall.
SYSCALL_NAMES = (
    "exit", "print", "sbrk", "free",
    "spawn", "join", "barrier_init", "barrier_wait",
    "mutex_init", "mutex_lock", "mutex_unlock",
    "cond_init", "cond_wait", "cond_signal", "cond_broadcast",
    "gettid", "getcpu", "time_ns", "migrate_hint",
    "write", "read", "open", "close",
)


def is_var(op: Operand) -> bool:
    return isinstance(op, str)


@dataclass
class Instr:
    """Base class for IR instructions."""

    def uses(self) -> List[str]:
        """Names of locals this instruction reads."""
        return []

    def defs(self) -> List[str]:
        """Names of locals this instruction writes."""
        return []

    @property
    def is_terminator(self) -> bool:
        return False


def _vars(*operands: Operand) -> List[str]:
    return [op for op in operands if isinstance(op, str)]


@dataclass
class Const(Instr):
    dst: str
    value: Union[int, float]
    vt: ValueType

    def defs(self):
        return [self.dst]


@dataclass
class BinOp(Instr):
    dst: str
    op: str
    a: Operand
    b: Operand
    vt: ValueType

    def __post_init__(self):
        if self.op not in BINARY_OPS:
            raise ValueError(f"unknown binary op {self.op!r}")

    def uses(self):
        return _vars(self.a, self.b)

    def defs(self):
        return [self.dst]


@dataclass
class UnOp(Instr):
    dst: str
    op: str
    a: Operand
    vt: ValueType

    def __post_init__(self):
        if self.op not in UNARY_OPS:
            raise ValueError(f"unknown unary op {self.op!r}")

    def uses(self):
        return _vars(self.a)

    def defs(self):
        return [self.dst]


@dataclass
class Load(Instr):
    """dst = *(addr + offset), typed."""

    dst: str
    addr: Operand
    offset: int
    vt: ValueType

    def uses(self):
        return _vars(self.addr)

    def defs(self):
        return [self.dst]


@dataclass
class Store(Instr):
    """*(addr + offset) = src, typed."""

    addr: Operand
    offset: int
    src: Operand
    vt: ValueType

    def uses(self):
        return _vars(self.addr, self.src)


@dataclass
class AddrOf(Instr):
    """dst = &symbol — address of a global or of a stack allocation."""

    dst: str
    symbol: str

    def uses(self):
        # The *address-taken* local is not a data dependency here; the
        # back-end resolves the symbol to a frame slot or global address.
        return []

    def defs(self):
        return [self.dst]


@dataclass
class StackAlloc(Instr):
    """dst = address of a fresh per-frame buffer of ``size`` bytes."""

    dst: str
    size: int
    name: str = ""

    def defs(self):
        return [self.dst]


@dataclass
class Call(Instr):
    """dst = callee(args...); dst may be '' for void calls.

    ``site_id`` is assigned by the toolchain; it is the ISA-independent
    identifier that lets the stack transformation runtime map a return
    address on one ISA to the matching one on the other.
    """

    dst: str
    callee: str
    args: List[Operand] = field(default_factory=list)
    site_id: int = -1

    def uses(self):
        return _vars(*self.args)

    def defs(self):
        return [self.dst] if self.dst else []


@dataclass
class Ret(Instr):
    value: Optional[Operand] = None

    def uses(self):
        return _vars(self.value) if self.value is not None else []

    @property
    def is_terminator(self):
        return True


@dataclass
class Br(Instr):
    target: str

    @property
    def is_terminator(self):
        return True


@dataclass
class CBr(Instr):
    cond: Operand
    if_true: str
    if_false: str

    def uses(self):
        return _vars(self.cond)

    @property
    def is_terminator(self):
        return True


@dataclass
class Work(Instr):
    """Execute ``amount`` abstract machine operations of class ``kind``.

    ``amount`` may be a local (data-dependent inner loops).  ``pages``
    optionally names a local holding the base address of the region this
    burst touches, with ``span`` bytes — the DSM charges on-demand page
    transfers for it after a migration.
    """

    amount: Operand
    kind: str = "int_alu"
    pages: Optional[Operand] = None
    span: int = 0

    def uses(self):
        ops = _vars(self.amount)
        if self.pages is not None:
            ops += _vars(self.pages)
        return ops


@dataclass
class MigPoint(Instr):
    """A migration point: poll the scheduler flag, maybe migrate.

    ``point_id`` is unique per function; ``origin`` records whether the
    point came from a function boundary ('entry'/'exit'), an explicit
    source annotation, or the profiler-guided insertion pass.
    """

    point_id: int = -1
    origin: str = "entry"
    site_id: int = -1


@dataclass
class InlineAsm(Instr):
    """Opaque inline assembly (Section 5.4).

    Executes as a short opaque burst on its native ISA, but defeats the
    live-variable analysis — "the toolchain does not support
    applications that use inline assembly" — so the toolchain rejects
    modules containing it unless unmigratable functions are allowed.
    """

    text: str = ""
    instr_estimate: int = 4


@dataclass
class Syscall(Instr):
    """dst = syscall(name, args...) — the narrow OS interface."""

    dst: str
    name: str
    args: List[Operand] = field(default_factory=list)
    site_id: int = -1

    def __post_init__(self):
        if self.name not in SYSCALL_NAMES:
            raise ValueError(f"unknown syscall {self.name!r}")

    def uses(self):
        return _vars(*self.args)

    def defs(self):
        return [self.dst] if self.dst else []

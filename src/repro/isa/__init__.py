"""Instruction set architecture descriptions.

This package captures everything the rest of the stack needs to know
about an ISA: its register file, its C ABI (calling convention, stack
discipline), the sizes and alignments of primitive types, and a cost
model for instruction classes.  Two concrete ISAs are provided, matching
the paper's evaluation platform: ARM64 (AArch64 / AAPCS64, the APM
X-Gene 1 side) and x86-64 (SysV AMD64, the Xeon side).
"""

from repro.isa.isa import Isa, InstrClass
from repro.isa.registers import Register, RegisterFile, RegKind
from repro.isa.abi import CallingConvention, FrameLayoutStyle
from repro.isa.types import ValueType, type_size, type_align
from repro.isa.arm64 import ARM64
from repro.isa.x86_64 import X86_64

ALL_ISAS = {ARM64.name: ARM64, X86_64.name: X86_64}


def get_isa(name: str) -> Isa:
    """Look up an ISA by name ('arm64' or 'x86_64')."""
    try:
        return ALL_ISAS[name]
    except KeyError:
        raise KeyError(f"unknown ISA {name!r}; known: {sorted(ALL_ISAS)}") from None


__all__ = [
    "Isa",
    "InstrClass",
    "Register",
    "RegisterFile",
    "RegKind",
    "CallingConvention",
    "FrameLayoutStyle",
    "ValueType",
    "type_size",
    "type_align",
    "ARM64",
    "X86_64",
    "ALL_ISAS",
    "get_isa",
]

"""The :class:`Isa` description object and instruction classes."""

import enum
from dataclasses import dataclass, field
from typing import Dict

from repro.isa.abi import CallingConvention
from repro.isa.registers import RegisterFile


class InstrClass(enum.Enum):
    """Coarse classes of machine instructions.

    Codegen charges every lowered IR operation to one of these classes;
    the CPU model (repro.machine.cpu) assigns each class a CPI, and the
    emulation model (repro.emulation) an expansion factor.
    """

    INT_ALU = "int_alu"
    FP_ALU = "fp_alu"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    CALL = "call"
    RET = "ret"
    MOV = "mov"
    ATOMIC = "atomic"
    SYSCALL = "syscall"
    NOP = "nop"


@dataclass(frozen=True)
class Isa:
    """Architectural description of an instruction set.

    ``lowering_expansion`` is the average number of machine instructions
    a single abstract operation of each class lowers to — RISC ISAs need
    more instructions for the same IR (separate loads, materialised
    immediates), CISC fewer.  ``bytes_per_instr`` drives text-section
    sizes (fixed 4-byte ARM encodings vs variable x86).
    """

    name: str
    description: str
    regfile: RegisterFile
    cc: CallingConvention
    pointer_size: int = 8
    bytes_per_instr: float = 4.0
    lowering_expansion: Dict[InstrClass, float] = field(default_factory=dict)
    # "variant 1" (ARM: TCB at start, offsets positive) vs "variant 2"
    # (x86: TLS below the thread pointer).  The paper forces all binaries
    # onto the x86-64 mapping; repro.linker.tls implements that.
    tls_variant: int = 1

    def expansion(self, instr_class: InstrClass) -> float:
        """Machine instructions per abstract operation of this class."""
        return self.lowering_expansion.get(instr_class, 1.0)

    def __repr__(self) -> str:
        return f"Isa({self.name})"

    def __hash__(self) -> int:
        return hash(self.name)

    def __eq__(self, other) -> bool:
        return isinstance(other, Isa) and other.name == self.name

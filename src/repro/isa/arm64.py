"""ARM64 (AArch64) as shipped on the APM X-Gene 1.

Register file and AAPCS64 calling convention per the ARM Procedure Call
Standard: x0-x7 argument registers, x19-x28 callee-saved, x29 frame
pointer, x30 link register; v8-v15 callee-saved FP registers.
"""

from repro.isa.abi import CallingConvention, FrameLayoutStyle
from repro.isa.isa import InstrClass, Isa
from repro.isa.registers import Register, RegisterFile, RegKind, make_registers


def _build_regfile() -> RegisterFile:
    gprs = make_registers("x", range(0, 29), RegKind.GPR, tuple(range(19, 29)))
    fprs = make_registers("v", range(0, 32), RegKind.FPR, tuple(range(8, 16)))
    specials = [
        Register("x29", RegKind.SPECIAL),  # frame pointer
        Register("x30", RegKind.SPECIAL),  # link register
        Register("sp", RegKind.SPECIAL),
        Register("pc", RegKind.SPECIAL),
    ]
    return RegisterFile(gprs + fprs + specials, sp="sp", fp="x29", pc="pc")


_CC = CallingConvention(
    name="aapcs64",
    int_arg_regs=("x0", "x1", "x2", "x3", "x4", "x5", "x6", "x7"),
    fp_arg_regs=("v0", "v1", "v2", "v3", "v4", "v5", "v6", "v7"),
    int_return_reg="x0",
    fp_return_reg="v0",
    stack_alignment=16,
    red_zone=0,
    return_address_on_stack=False,
    link_register="x30",
    frame_style=FrameLayoutStyle.AAPCS64,
)

# A fixed-width load/store RISC: address arithmetic and large immediates
# cost extra instructions relative to the abstract IR operation.
_EXPANSION = {
    InstrClass.INT_ALU: 1.1,
    InstrClass.FP_ALU: 1.0,
    InstrClass.LOAD: 1.2,
    InstrClass.STORE: 1.2,
    InstrClass.BRANCH: 1.0,
    InstrClass.CALL: 1.0,
    InstrClass.RET: 1.0,
    InstrClass.MOV: 1.0,
    InstrClass.ATOMIC: 1.5,
    InstrClass.SYSCALL: 1.0,
    InstrClass.NOP: 1.0,
}

ARM64 = Isa(
    name="arm64",
    description="AArch64 / AAPCS64 (APM X-Gene 1 class)",
    regfile=_build_regfile(),
    cc=_CC,
    bytes_per_instr=4.0,
    lowering_expansion=_EXPANSION,
    tls_variant=1,
)

"""Primitive value types shared by the IR and the ABIs.

The paper relies on ARM64 and x86-64 having identical primitive sizes
and alignments ("the primitive data types have the same sizes and
alignments for ARM64 and x86-64"), which is what makes a common data
layout possible without per-access conversion.  We model exactly the
LP64 common subset.
"""

import enum


class ValueType(enum.Enum):
    """Primitive types understood by the IR and both ABIs."""

    I8 = "i8"
    I16 = "i16"
    I32 = "i32"
    I64 = "i64"
    F32 = "f32"
    F64 = "f64"
    PTR = "ptr"

    def __repr__(self) -> str:
        return f"ValueType.{self.name}"

    @property
    def is_float(self) -> bool:
        return self in (ValueType.F32, ValueType.F64)

    @property
    def is_integer(self) -> bool:
        return not self.is_float


_SIZES = {
    ValueType.I8: 1,
    ValueType.I16: 2,
    ValueType.I32: 4,
    ValueType.I64: 8,
    ValueType.F32: 4,
    ValueType.F64: 8,
    ValueType.PTR: 8,
}


def type_size(vt: ValueType) -> int:
    """Size in bytes of a primitive type (LP64, both ISAs)."""
    return _SIZES[vt]


def type_align(vt: ValueType) -> int:
    """Natural alignment in bytes (equal to size on both ISAs)."""
    return _SIZES[vt]

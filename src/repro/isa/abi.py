"""C calling conventions and stack frame disciplines.

The two ABIs the prototype targets differ in exactly the ways that make
stack transformation non-trivial:

* different numbers of argument / callee-saved registers,
* a link register on ARM64 vs a pushed return address on x86-64,
* different prologue conventions, hence different frame layouts and
  frame sizes for the same function.
"""

import enum
from dataclasses import dataclass, field
from typing import List, Tuple


class FrameLayoutStyle(enum.Enum):
    """How a back-end organises a stack frame.

    AAPCS64 frames place the saved FP/LR pair at the *top* of the frame
    and callee-saved registers next to it; SysV x86-64 pushes the return
    address then RBP, then callee-saved registers, with locals below.
    The distinction changes every slot offset, which is what forces the
    runtime to rewrite frames rather than copy them.
    """

    AAPCS64 = "aapcs64"
    SYSV_X86_64 = "sysv-x86-64"


@dataclass(frozen=True)
class CallingConvention:
    """The subset of a C ABI needed for codegen and transformation."""

    name: str
    int_arg_regs: Tuple[str, ...]
    fp_arg_regs: Tuple[str, ...]
    int_return_reg: str
    fp_return_reg: str
    stack_alignment: int
    red_zone: int
    # True when the call instruction pushes the return address onto the
    # stack (x86); False when it lands in a link register (ARM).
    return_address_on_stack: bool
    link_register: str = ""
    frame_style: FrameLayoutStyle = FrameLayoutStyle.AAPCS64

    def max_reg_args(self, is_float: bool) -> int:
        return len(self.fp_arg_regs if is_float else self.int_arg_regs)

    def arg_register(self, index: int, is_float: bool) -> str:
        """Register carrying argument ``index`` of its class, or ''."""
        regs = self.fp_arg_regs if is_float else self.int_arg_regs
        if index < len(regs):
            return regs[index]
        return ""

"""x86-64 with the SysV AMD64 ABI (Intel Xeon E5 class).

rdi/rsi/rdx/rcx/r8/r9 carry integer arguments; rbx, r12-r15 (and rbp)
are callee-saved; xmm0-7 carry FP arguments and no FP register is
callee-saved.  The call instruction pushes the return address.
"""

from repro.isa.abi import CallingConvention, FrameLayoutStyle
from repro.isa.isa import InstrClass, Isa
from repro.isa.registers import Register, RegisterFile, RegKind


def _build_regfile() -> RegisterFile:
    gpr_names = [
        ("rax", False),
        ("rbx", True),
        ("rcx", False),
        ("rdx", False),
        ("rsi", False),
        ("rdi", False),
        ("r8", False),
        ("r9", False),
        ("r10", False),
        ("r11", False),
        ("r12", True),
        ("r13", True),
        ("r14", True),
        ("r15", True),
    ]
    gprs = [Register(n, RegKind.GPR, callee_saved=s) for n, s in gpr_names]
    fprs = [Register(f"xmm{i}", RegKind.FPR, callee_saved=False) for i in range(16)]
    specials = [
        Register("rbp", RegKind.SPECIAL),  # frame pointer
        Register("rsp", RegKind.SPECIAL),
        Register("rip", RegKind.SPECIAL),
    ]
    return RegisterFile(gprs + fprs + specials, sp="rsp", fp="rbp", pc="rip")


_CC = CallingConvention(
    name="sysv-amd64",
    int_arg_regs=("rdi", "rsi", "rdx", "rcx", "r8", "r9"),
    fp_arg_regs=("xmm0", "xmm1", "xmm2", "xmm3", "xmm4", "xmm5", "xmm6", "xmm7"),
    int_return_reg="rax",
    fp_return_reg="xmm0",
    stack_alignment=16,
    red_zone=128,
    return_address_on_stack=True,
    link_register="",
    frame_style=FrameLayoutStyle.SYSV_X86_64,
)

# CISC memory operands fold loads into ALU ops, so several abstract
# operations lower to fewer machine instructions than on a RISC.
_EXPANSION = {
    InstrClass.INT_ALU: 0.9,
    InstrClass.FP_ALU: 1.0,
    InstrClass.LOAD: 1.0,
    InstrClass.STORE: 1.0,
    InstrClass.BRANCH: 1.0,
    InstrClass.CALL: 1.0,
    InstrClass.RET: 1.0,
    InstrClass.MOV: 0.9,
    InstrClass.ATOMIC: 1.0,
    InstrClass.SYSCALL: 1.0,
    InstrClass.NOP: 1.0,
}

X86_64 = Isa(
    name="x86_64",
    description="x86-64 / SysV AMD64 (Intel Xeon E5 class)",
    regfile=_build_regfile(),
    cc=_CC,
    bytes_per_instr=3.7,
    lowering_expansion=_EXPANSION,
    tls_variant=2,
)

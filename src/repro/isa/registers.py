"""Register file descriptions.

Only the architectural properties that matter to register allocation and
stack transformation are modelled: names, kind (general-purpose vs
floating point), and whether the C ABI makes each register callee-saved.
"""

import enum
from dataclasses import dataclass
from typing import Dict, List, Tuple


class RegKind(enum.Enum):
    GPR = "gpr"
    FPR = "fpr"
    SPECIAL = "special"  # sp, fp, lr, pc — never allocatable


@dataclass(frozen=True)
class Register:
    """One architectural register."""

    name: str
    kind: RegKind
    callee_saved: bool = False

    def __repr__(self) -> str:
        saved = ",callee" if self.callee_saved else ""
        return f"<{self.name}:{self.kind.value}{saved}>"


class RegisterFile:
    """The full set of registers of an ISA, with allocation order."""

    def __init__(self, registers: List[Register], sp: str, fp: str, pc: str):
        self._by_name: Dict[str, Register] = {}
        for reg in registers:
            if reg.name in self._by_name:
                raise ValueError(f"duplicate register {reg.name}")
            self._by_name[reg.name] = reg
        for special in (sp, fp, pc):
            if special not in self._by_name:
                raise ValueError(f"special register {special} not in file")
        self.sp = sp
        self.fp = fp
        self.pc = pc

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> Register:
        return self._by_name[name]

    def all(self) -> List[Register]:
        return list(self._by_name.values())

    def allocatable(self, kind: RegKind) -> List[Register]:
        """Registers of ``kind`` usable by the register allocator."""
        return [
            r
            for r in self._by_name.values()
            if r.kind == kind and r.name not in (self.sp, self.fp, self.pc)
        ]

    def callee_saved(self, kind: RegKind = None) -> List[Register]:
        regs = [r for r in self._by_name.values() if r.callee_saved]
        if kind is not None:
            regs = [r for r in regs if r.kind == kind]
        return regs

    def caller_saved(self, kind: RegKind) -> List[Register]:
        return [r for r in self.allocatable(kind) if not r.callee_saved]


def make_registers(
    prefix: str, indices: range, kind: RegKind, callee_saved_indices: Tuple[int, ...]
) -> List[Register]:
    """Build ``prefixN`` registers, marking the given indices callee-saved."""
    saved = set(callee_saved_indices)
    return [
        Register(f"{prefix}{i}", kind, callee_saved=(i in saved)) for i in indices
    ]

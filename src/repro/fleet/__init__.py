"""Warehouse-scale fleet simulation (ROADMAP item 1).

Scales the paper's two-server story to the datacenter: thousands of
mixed-ISA nodes, millions of jobs, and a *migration wave* moving a
service population from one ISA to the other under canary/ramp/pause
policies — the scenario of fleet-level ISA migrations (see PAPERS.md)
with this paper's migration-cost model charged per wave.

Layers: :mod:`repro.fleet.model` (flat per-node structs + shared
per-ISA templates), :mod:`repro.fleet.waves` (wave policies),
:mod:`repro.fleet.simulator` (the analytic-completion DES), and
:mod:`repro.fleet.report` (rendered rollups).  See docs/fleet.md.
"""

from repro.fleet.model import (
    FleetConfig,
    FleetNode,
    NodeTemplate,
    ServiceInstance,
    node_name,
    parse_node_name,
)
from repro.fleet.report import render_result
from repro.fleet.simulator import (
    DEFAULT_SERVICE_MIX,
    FleetRunResult,
    FleetSimulator,
)
from repro.fleet.waves import WavePolicy, WaveReport

__all__ = [
    "FleetConfig",
    "FleetNode",
    "NodeTemplate",
    "ServiceInstance",
    "node_name",
    "parse_node_name",
    "WavePolicy",
    "WaveReport",
    "FleetSimulator",
    "FleetRunResult",
    "DEFAULT_SERVICE_MIX",
    "render_result",
]

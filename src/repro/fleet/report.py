"""Rendering for fleet-migration-wave runs (the ``repro fleet`` output).

Formats a :class:`~repro.fleet.simulator.FleetRunResult` through
:mod:`repro.render`: wave progress with migration bars, per-ISA
capacity/jobs/energy rollups, the latency/SLO summary, and the fault
plane's evacuation accounting.
"""

from typing import List

from repro.fleet.simulator import FleetRunResult
from repro.render import Table, bar


def wave_table(result: FleetRunResult) -> Table:
    """Wave-by-wave progress: who moved, who paused, what it cost."""
    table = Table(
        "migration waves",
        ["wave", "t (s)", "state", "moved", "cumulative", "attainment", "stall (s)"],
    )
    population = max(result.services, 1)
    for wave in result.waves:
        state = "PAUSED" if wave.paused else (
            "deferred" if wave.deferred else "ok"
        )
        progress = bar(wave.cumulative_migrated, population, width=16)
        table.add_row(
            wave.index,
            f"{wave.time:.0f}",
            state,
            wave.migrated,
            f"{wave.cumulative_migrated} {progress}",
            f"{wave.attainment_before:.3f}",
            f"{wave.stall_seconds:.3f}",
        )
    return table


def isa_table(result: FleetRunResult) -> Table:
    """Per-ISA capacity, completed jobs, utilisation and energy."""
    table = Table(
        "per-ISA rollup",
        ["isa", "nodes", "slots", "jobs", "busy core-s", "energy (kJ)"],
    )
    for isa in sorted(result.nodes_by_isa):
        table.add_row(
            isa,
            result.nodes_by_isa[isa],
            result.capacity_slots_by_isa[isa],
            result.jobs_by_isa[isa],
            f"{result.busy_core_seconds_by_isa[isa]:.1f}",
            f"{result.energy_by_isa[isa] / 1e3:.2f}",
        )
    return table


def summary_table(result: FleetRunResult) -> Table:
    """The run's headline numbers."""
    table = Table("fleet run", ["metric", "value"])
    table.add_row("seed", result.seed)
    table.add_row("services", result.services)
    table.add_row("jobs offered", result.jobs_offered)
    table.add_row("jobs completed", result.jobs_completed)
    if result.jobs_shed:
        table.add_row("jobs shed (stranded)", result.jobs_shed)
    table.add_row("horizon (s)", f"{result.horizon_s:.0f}")
    table.add_row("makespan (s)", f"{result.makespan:.2f}")
    table.add_row("p50 / p99 / p99.9 latency (s)", (
        f"{result.p50_latency_s:.3f} / {result.p99_latency_s:.3f} / "
        f"{result.p999_latency_s:.3f}"
    ))
    table.add_row("SLO attainment", f"{result.slo_attainment:.4f}")
    table.add_row("services migrated",
                  f"{result.services_migrated}/{result.services}")
    table.add_row("migrations (incl. evacuations)", result.migrations)
    table.add_row("migration stall (s)", f"{result.migration_stall_seconds:.3f}")
    if result.paused_waves:
        table.add_row("paused waves", result.paused_waves)
    if result.crashes:
        table.add_row("crashes / repairs", f"{result.crashes} / {result.repairs}")
        table.add_row("evacuations (cross-ISA)",
                      f"{result.evacuations} ({result.failovers})")
    if result.stranded_services:
        table.add_row("stranded services", result.stranded_services)
    table.add_row("total energy (kJ)", f"{result.total_energy / 1e3:.2f}")
    table.add_row("checksum", result.checksum())
    return table


def render_result(result: FleetRunResult) -> str:
    """The full ``repro fleet`` report as one string."""
    sections: List[str] = [
        summary_table(result).render(),
        wave_table(result).render(),
        isa_table(result).render(),
    ]
    return "\n\n".join(sections)

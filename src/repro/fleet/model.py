"""Fleet data model: node templates, per-node structs, configuration.

The warehouse-scale simulator holds thousands of nodes and millions of
jobs, so per-node and per-service state must stay small and flat.  The
heavyweight machinery — machine models, power models, duration tables —
lives in one :class:`NodeTemplate` *per ISA*, shared by every node of
that ISA; each :class:`FleetNode` and :class:`ServiceInstance` is a
``__slots__`` struct holding only counters and indices.  This mirrors
the :class:`~repro.kernel.kernel.PopcornSystem` split: the facade's
components carry the shared machinery so per-node state is cheap to
instantiate by the thousand.
"""

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.datacenter.job import JobSpec, job_duration, migration_penalty
from repro.kernel.testbed import machine_for_isa
from repro.machine.interconnect import make_dolphin_pxh810
from repro.machine.machine import Machine
from repro.machine.mcpat import project_finfet


class NodeTemplate:
    """Everything shared by every fleet node of one ISA.

    Holds the reference :class:`~repro.machine.machine.Machine` (for
    analytic durations), the — optionally FinFET-projected — power
    parameters, and a memoized duration table keyed by job spec.  The
    per-node structs keep only a template index, so a 10k-node fleet
    carries exactly one machine model per ISA.
    """

    def __init__(self, isa: str, project_arm_finfet: bool = True):
        self.isa = isa
        self.machine: Machine = machine_for_isa(isa, f"{isa}-template")
        power = self.machine.power
        if project_arm_finfet and self.machine.isa.name == "arm64":
            power = project_finfet(power)
        self.power = power
        self.cores = self.machine.cpu.cores
        self._durations: Dict[JobSpec, float] = {}

    def duration(self, spec: JobSpec) -> float:
        """Seconds to run ``spec`` on a node of this template (memoized)."""
        cached = self._durations.get(spec)
        if cached is None:
            cached = job_duration(spec, self.machine)
            self._durations[spec] = cached
        return cached

    def set_duration(self, spec: JobSpec, seconds: float) -> None:
        """Override the analytic duration (nested-node measurements)."""
        self._durations[spec] = seconds

    def energy_joules(self, uptime_s: float, busy_core_seconds: float) -> float:
        """On-package energy for one node over the run.

        Analytic counterpart of the cluster layer's power integral:
        idle power over the node's uptime plus the active-core power
        for every busy core-second.  The uncore term is utilization-
        weighted (charged per busy core-second at ``uncore/cores``)
        rather than gated on "any core active", which the flat per-node
        structs do not track; docs/fleet.md quantifies the
        approximation.
        """
        p = self.power
        per_core = p.core_active_w + p.uncore_active_w / max(self.cores, 1)
        return p.cpu_idle_w * uptime_s + per_core * busy_core_seconds

    def __repr__(self) -> str:
        return f"NodeTemplate({self.isa}, cores={self.cores})"


class FleetNode:
    """One machine of the fleet: a flat struct, no behaviour."""

    __slots__ = (
        "idx",
        "isa",
        "alive",
        "instances",
        "busy_core_seconds",
        "down_since",
        "downtime_s",
    )

    def __init__(self, idx: int, isa: str):
        self.idx = idx
        self.isa = isa
        self.alive = True
        # Service ids currently homed here (small: slots per node).
        self.instances: list = []
        self.busy_core_seconds = 0.0
        self.down_since = -1.0  # -1 = up
        self.downtime_s = 0.0


class ServiceInstance:
    """One service of the migrating population: a flat struct.

    The service runs as a single-server FIFO queue: ``free_at`` is the
    time its current backlog drains, and a job arriving at ``t`` starts
    at ``max(t, free_at)``.  Completion times are computed analytically
    at arrival, so a service instance needs no event-queue presence.
    """

    __slots__ = (
        "sid",
        "spec",
        "node_idx",
        "isa",
        "free_at",
        "migrated",
        "jobs_done",
        "jobs_in_slo",
        "busy_seconds",
        "busy_core_seconds",
        "migrations",
        "stall_seconds",
    )

    def __init__(self, sid: int, spec: JobSpec, node_idx: int, isa: str):
        self.sid = sid
        self.spec = spec
        self.node_idx = node_idx
        self.isa = isa
        self.free_at = 0.0
        self.migrated = False  # reached the wave's target ISA
        self.jobs_done = 0
        self.jobs_in_slo = 0
        self.busy_seconds = 0.0
        self.busy_core_seconds = 0.0
        self.migrations = 0
        self.stall_seconds = 0.0


@dataclass(frozen=True)
class FleetConfig:
    """Static shape of a fleet run.

    ``nodes`` maps ISA name to node count; ``slots_per_node`` bounds
    how many service instances a node hosts (capacity = nodes × slots).
    ``source_isa`` → ``target_isa`` is the direction of the migration
    wave.  ``slo_factor`` sets each service's latency SLO to
    ``slo_factor ×`` its duration on the *source* ISA — a migrated
    service must still answer within a small multiple of its old
    nominal service time.  The default 8 sits above the worst
    ARM/x86 duration ratio of the service mix (~7), so an *unloaded*
    migrated service meets its SLO and the pause-on-regression gate
    reacts to queueing, not to the ISA speed ratio itself; drop it
    below the ratio to model a migration that is SLO-infeasible.
    """

    nodes: Dict[str, int] = field(
        default_factory=lambda: {"x86-64": 32, "arm64": 32}
    )
    slots_per_node: int = 4
    services: int = 64
    source_isa: str = "x86-64"
    target_isa: str = "arm64"
    slo_factor: float = 8.0
    interconnect_bw: float = make_dolphin_pxh810().bandwidth_bytes_per_s
    project_arm_finfet: bool = True

    def validate(self) -> None:
        """Reject configurations that cannot place their services."""
        for isa in (self.source_isa, self.target_isa):
            if isa not in self.nodes:
                raise ValueError(f"no nodes declared for ISA {isa!r}")
        source_slots = self.nodes[self.source_isa] * self.slots_per_node
        target_slots = self.nodes[self.target_isa] * self.slots_per_node
        if self.services > source_slots:
            raise ValueError(
                f"{self.services} services exceed source capacity "
                f"{source_slots} ({self.source_isa})"
            )
        if self.services > target_slots:
            raise ValueError(
                f"{self.services} services exceed target capacity "
                f"{target_slots} ({self.target_isa})"
            )


def service_migration_cost(spec: JobSpec, bandwidth: float) -> float:
    """Seconds one service instance stalls while migrating ISAs.

    Reuses the cluster layer's :func:`migration_penalty` — migration
    response, stack transformation, kernel hand-off, DSM working-set
    pull — so fleet-level wave costs and node-level job costs come from
    the same model.
    """
    return migration_penalty(spec, bandwidth)


def node_name(idx: int) -> str:
    """The printable name of fleet node ``idx`` (fault schedules)."""
    return f"node-{idx}"


def parse_node_name(name: str) -> Optional[int]:
    """Inverse of :func:`node_name`; None for foreign names."""
    if name.startswith("node-"):
        try:
            return int(name[5:])
        except ValueError:
            return None
    return None

"""Wave policies for fleet-wide ISA migration.

A *wave* moves a batch of services from the source ISA to the target
ISA.  The policy follows the playbook of warehouse-scale ISA migrations
(PAPERS.md: "Instruction Set Migration at Warehouse Scale"): a small
canary first, then a ramp schedule of growing cumulative fractions,
with a bake period between waves and an automatic pause when the SLO
signal regresses — the fleet analogue of PR-9's latency-aware
migration gate.
"""

from dataclasses import dataclass, field
from typing import List, Tuple


@dataclass(frozen=True)
class WavePolicy:
    """When and how much of the service population migrates.

    ``canary_fraction`` is the first wave; ``ramp`` is the *cumulative*
    migrated fraction after each subsequent wave (the last entry is
    normally 1.0).  Waves fire every ``wave_interval_s`` of simulated
    time, after an initial ``bake_s`` warm-up that establishes the SLO
    baseline.  If SLO attainment measured over the inter-wave window
    drops more than ``regression_threshold`` below the baseline, the
    wave *pauses*: no services move, and the next window must recover
    before the ramp resumes.
    """

    canary_fraction: float = 0.05
    ramp: Tuple[float, ...] = (0.25, 0.5, 1.0)
    wave_interval_s: float = 60.0
    bake_s: float = 30.0
    regression_threshold: float = 0.05

    def __post_init__(self):
        if not 0.0 < self.canary_fraction <= 1.0:
            raise ValueError("canary_fraction must be in (0, 1]")
        last = self.canary_fraction
        for frac in self.ramp:
            if frac < last:
                raise ValueError(
                    f"ramp must be non-decreasing from the canary: {self.ramp}"
                )
            last = frac
        if self.wave_interval_s <= 0:
            raise ValueError("wave_interval_s must be positive")

    def targets(self) -> Tuple[float, ...]:
        """Cumulative migrated fraction after wave 1, 2, ..."""
        return (self.canary_fraction,) + tuple(self.ramp)

    def wave_times(self, horizon_s: float) -> List[float]:
        """Scheduled wave firing times within the horizon.

        One slot per ramp step; paused waves consume a slot without
        moving services, so the simulator keeps scheduling follow-up
        slots at the same cadence until the ramp completes or the
        horizon ends.
        """
        times = []
        t = self.bake_s
        while t < horizon_s:
            times.append(t)
            t += self.wave_interval_s
        return times


@dataclass
class WaveReport:
    """What one wave slot actually did (rendered by ``repro fleet``)."""

    index: int
    time: float
    target_fraction: float  # cumulative ramp target for this slot
    migrated: int  # services moved this slot
    cumulative_migrated: int
    paused: bool  # regression gate held the wave
    attainment_before: float  # SLO attainment over the preceding window
    baseline_attainment: float
    stall_seconds: float  # summed migration stalls paid this slot
    deferred: int = 0  # services that found no free target slot

    def describe(self) -> str:
        """One-line summary for logs and tables."""
        state = "paused" if self.paused else f"+{self.migrated}"
        return (
            f"wave {self.index} @ {self.time:.0f}s: {state} "
            f"(cum {self.cumulative_migrated}, "
            f"attain {self.attainment_before:.3f})"
        )


def plan_counts(targets: Tuple[float, ...], population: int) -> List[int]:
    """Cumulative service *counts* for each ramp target.

    Rounds half-up per target and forces the final target to cover the
    whole population when it is 1.0, so no service is stranded by
    rounding.
    """
    counts = []
    for frac in targets:
        count = min(population, int(frac * population + 0.5))
        if frac >= 1.0:
            count = population
        counts.append(count)
    return counts

"""The warehouse-scale fleet simulator.

Runs a mixed-ISA fleet of thousands of nodes serving millions of jobs
while a wave policy migrates the service population from one ISA to the
other.  The simulator composes three existing layers:

* the unified DES (:mod:`repro.sim`) carries the *sparse* events —
  wave slots and fault-plane events — on one ``(time, seq)`` queue;
* job completions are *analytic*: each service is a single-server FIFO
  whose completion time is computed at arrival
  (``start = max(arrival, free_at)``), so a million jobs cost a million
  flat-struct updates instead of a million heap events;
* costs come from the node layer's models — durations from
  :func:`repro.datacenter.job.job_duration` (or nested PopcornSystem
  measurements via :class:`repro.datacenter.nested.NestedNodeSampler`),
  migration stalls from :func:`repro.datacenter.job.migration_penalty`,
  energy from the per-ISA power models.

Fault semantics are *evacuate-live*, matching the paper's value
proposition: a crash never discards completed work; the crashed node's
services fail over to free slots (same ISA first, then cross-ISA — the
heterogeneous-ISA failover the paper enables) and pay the migration
cost.  ``LinkDegradation`` scales the migration bandwidth while its
window is open; ``NetworkPartition`` is rejected — the analytic queue
model cannot represent a service reachable from only part of the
fleet.
"""

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.datacenter.job import JobSpec
from repro.faults.inject import FaultSchedule
from repro.fleet.model import (
    FleetConfig,
    FleetNode,
    NodeTemplate,
    ServiceInstance,
    parse_node_name,
    service_migration_cost,
)
from repro.fleet.waves import WavePolicy, WaveReport, plan_counts
from repro.serving.traffic import ArrivalTrace
from repro.sim.events import Simulator
from repro.sim.rng import DeterministicRng
from repro.telemetry.metrics import percentiles

#: Default service population mix: the serving-adjacent benchmarks.
DEFAULT_SERVICE_MIX: Tuple[JobSpec, ...] = (
    JobSpec("is", "A", 2),
    JobSpec("ep", "A", 2),
    JobSpec("cg", "A", 2),
    JobSpec("redis", "A", 2),
)


@dataclass
class FleetRunResult:
    """Everything one fleet-migration-wave run produced."""

    seed: int
    nodes_by_isa: Dict[str, int]
    services: int
    horizon_s: float
    makespan: float
    # ---- jobs ----
    jobs_offered: int
    jobs_completed: int
    jobs_shed: int  # arrivals for a service stranded by a full fleet
    # ---- latency / SLO ----
    p50_latency_s: float
    p99_latency_s: float
    p999_latency_s: float
    slo_violations: int
    slo_attainment: float
    # ---- migration waves ----
    waves: List[WaveReport]
    services_migrated: int
    migrations: int  # wave migrations + evacuations
    migration_stall_seconds: float
    paused_waves: int
    deferred_migrations: int
    # ---- per-ISA rollups ----
    jobs_by_isa: Dict[str, int]
    busy_core_seconds_by_isa: Dict[str, float]
    energy_by_isa: Dict[str, float]
    capacity_slots_by_isa: Dict[str, int]
    # ---- fault plane ----
    crashes: int = 0
    repairs: int = 0
    evacuations: int = 0
    failovers: int = 0  # cross-ISA evacuations
    stranded_services: int = 0  # left unplaced at end of run

    @property
    def total_energy(self) -> float:
        """Whole-fleet on-package energy over the run (joules)."""
        return sum(self.energy_by_isa.values())

    def checksum(self) -> str:
        """Content digest of the run (bit-identity and bench baselines).

        Formats every float with ``repr`` (shortest round-trip form),
        so two runs agree iff their results are bit-identical.
        """
        parts = [
            repr(self.seed),
            repr(sorted(self.nodes_by_isa.items())),
            repr(self.services),
            repr(self.makespan),
            repr(self.jobs_offered),
            repr(self.jobs_completed),
            repr(self.jobs_shed),
            repr(self.p50_latency_s),
            repr(self.p99_latency_s),
            repr(self.p999_latency_s),
            repr(self.slo_violations),
            repr(self.services_migrated),
            repr(self.migrations),
            repr(self.migration_stall_seconds),
            repr(self.paused_waves),
            repr(sorted(self.jobs_by_isa.items())),
            repr(sorted(self.energy_by_isa.items())),
            repr(self.crashes),
            repr(self.evacuations),
            repr(self.failovers),
        ]
        digest = hashlib.sha256("|".join(parts).encode())
        return digest.hexdigest()[:16]


class FleetSimulator:
    """Drives one fleet through arrivals, waves and faults."""

    def __init__(
        self,
        config: FleetConfig,
        policy: WavePolicy,
        rng: DeterministicRng,
        faults: Optional[FaultSchedule] = None,
        service_mix: Sequence[JobSpec] = DEFAULT_SERVICE_MIX,
        nested=None,
    ):
        config.validate()
        self.config = config
        self.policy = policy
        self.rng = rng
        self.faults = faults if faults is not None else FaultSchedule()

        self.templates: Dict[str, NodeTemplate] = {
            isa: NodeTemplate(isa, config.project_arm_finfet)
            for isa in config.nodes
        }
        if nested is not None:
            # Replace analytic durations with nested-PopcornSystem
            # measurements for every (service spec, ISA) pair.
            for isa, template in self.templates.items():
                for spec in sorted(set(service_mix), key=str):
                    template.set_duration(spec, nested.duration(spec, isa))

        # Flat per-node structs, indexed globally; free capacity is a
        # per-ISA stack of node indices (one entry per free slot), so
        # placement, migration and failover are O(1) pool pops with no
        # per-event scan over the fleet.
        self.nodes: List[FleetNode] = []
        self._free_slots: Dict[str, List[int]] = {isa: [] for isa in config.nodes}
        for isa, count in config.nodes.items():
            for _ in range(count):
                idx = len(self.nodes)
                self.nodes.append(FleetNode(idx, isa))
        # Reversed so pops hand out low node indices first.
        for node in reversed(self.nodes):
            self._free_slots[node.isa].extend([node.idx] * config.slots_per_node)

        self._check_fault_names()

        self.services: List[ServiceInstance] = []
        for sid in range(config.services):
            spec = service_mix[sid % len(service_mix)]
            idx = self._take_slot(config.source_isa)
            if idx is None:  # config.validate() makes this unreachable
                raise RuntimeError("source ISA out of slots during placement")
            inst = ServiceInstance(sid, spec, idx, config.source_isa)
            self.nodes[idx].instances.append(sid)
            self.services.append(inst)

        # Per-service SLO target (slo_factor x source-ISA duration) and
        # per-ISA duration tables, both indexed by sid so the hot
        # arrival path is two list lookups.
        src = self.templates[config.source_isa]
        self._slo_by_sid = [
            config.slo_factor * src.duration(inst.spec) for inst in self.services
        ]
        self._durations_by_sid: Dict[str, List[float]] = {
            isa: [t.duration(inst.spec) for inst in self.services]
            for isa, t in self.templates.items()
        }

        # ---- run state ----
        self._sim = Simulator()
        self._bw_factor = 1.0
        self._migrate_cursor = 0  # next sid to migrate (sid order)
        self._migrated_count = 0
        self._ramp_step = 0
        self._baseline_attainment: Optional[float] = None
        self._window_offered = 0
        self._window_in_slo = 0
        self._stranded: List[int] = []  # sids awaiting a free slot
        self._latencies: List[float] = []
        self._makespan = 0.0
        self._counters = {
            "offered": 0,
            "completed": 0,
            "shed": 0,
            "violations": 0,
            "in_slo": 0,
            "migrations": 0,
            "crashes": 0,
            "repairs": 0,
            "evacuations": 0,
            "failovers": 0,
            "deferred": 0,
        }
        self._jobs_by_isa = {isa: 0 for isa in config.nodes}
        self._stall_seconds = 0.0
        self.waves: List[WaveReport] = []
        from repro import validate

        self._checker = validate.make_fleet_checker()

    # ------------------------------------------------------------ setup

    def _check_fault_names(self) -> None:
        total = len(self.nodes)
        for event in self.faults:
            if event.kind == "partition":
                raise ValueError(
                    "NetworkPartition is not supported by the fleet "
                    "simulator: analytic FIFO services have no notion of "
                    "partial reachability.  Use LinkDegradation (slower "
                    "migrations) or NodeCrash (lost capacity) instead."
                )
            if event.kind in ("crash", "repair"):
                idx = parse_node_name(event.node)
                if idx is None or not 0 <= idx < total:
                    raise ValueError(
                        f"fault names unknown fleet node {event.node!r}; "
                        f"fleet nodes are named node-0 .. node-{total - 1}"
                    )

    def _take_slot(self, isa: str) -> Optional[int]:
        """Pop a free slot's node index, skipping slots on dead nodes.

        The crash handler purges the dead node's pool entries eagerly
        (a repair re-adds the right count, so stale entries must not
        linger); the liveness check here is a safety net, not the
        primary mechanism.
        """
        pool = self._free_slots[isa]
        while pool:
            idx = pool.pop()
            if self.nodes[idx].alive:
                return idx
        return None

    # ------------------------------------------------------------- jobs

    def _handle_job(self, t: float, sid: int) -> None:
        inst = self.services[sid]
        node = self.nodes[inst.node_idx]
        if not node.alive:
            # Stranded service (its node died with the fleet full).
            self._counters["shed"] += 1
            self._window_offered += 1
            return
        duration = self._durations_by_sid[inst.isa][sid]
        start = inst.free_at if inst.free_at > t else t
        done = start + duration
        inst.free_at = done
        inst.jobs_done += 1
        inst.busy_seconds += duration
        cores = min(inst.spec.threads, self.templates[inst.isa].cores)
        busy = duration * cores
        inst.busy_core_seconds += busy
        node.busy_core_seconds += busy
        self._jobs_by_isa[inst.isa] += 1
        latency = done - t
        self._latencies.append(latency)
        in_slo = latency <= self._slo_by_sid[sid]
        if in_slo:
            inst.jobs_in_slo += 1
            self._counters["in_slo"] += 1
        else:
            self._counters["violations"] += 1
        self._counters["completed"] += 1
        self._window_offered += 1
        self._window_in_slo += in_slo
        if done > self._makespan:
            self._makespan = done

    # ------------------------------------------------------------ waves

    def _move_service(self, sid: int, t: float, target_isa: str) -> bool:
        """Move one service to a free slot on ``target_isa``.

        Pays the migration stall, returns the old slot to its pool
        (unless the old node is dead), and keeps node membership lists
        consistent.  False when the target ISA has no free slot.
        """
        inst = self.services[sid]
        idx = self._take_slot(target_isa)
        if idx is None:
            return False
        old = self.nodes[inst.node_idx]
        old.instances.remove(sid)
        if old.alive:
            self._free_slots[old.isa].append(inst.node_idx)
        cost = service_migration_cost(
            inst.spec, self.config.interconnect_bw * self._bw_factor
        )
        base = inst.free_at if inst.free_at > t else t
        inst.free_at = base + cost
        inst.stall_seconds += cost
        inst.migrations += 1
        inst.node_idx = idx
        inst.isa = target_isa
        self.nodes[idx].instances.append(sid)
        self._stall_seconds += cost
        self._counters["migrations"] += 1
        return True

    def _handle_wave(self, t: float) -> None:
        plan = plan_counts(self.policy.targets(), self.config.services)
        if self._ramp_step >= len(plan):
            return  # ramp finished; later slots are no-ops
        attainment = (
            self._window_in_slo / self._window_offered
            if self._window_offered
            else 1.0
        )
        if self._baseline_attainment is None:
            # The first slot closes the bake window: it defines the
            # pre-migration SLO baseline the regression gate compares
            # against.
            self._baseline_attainment = attainment
        gate = self._baseline_attainment - self.policy.regression_threshold
        paused = attainment < gate
        moved = 0
        deferred = 0
        stall_before = self._stall_seconds
        target_count = plan[self._ramp_step]
        if not paused:
            while self._migrated_count < target_count:
                if self._migrate_cursor >= len(self.services):
                    break
                sid = self._migrate_cursor
                inst = self.services[sid]
                if inst.isa == self.config.target_isa:
                    # Already there (cross-ISA failover beat the wave).
                    inst.migrated = True
                    self._migrate_cursor += 1
                    self._migrated_count += 1
                    continue
                if self._move_service(sid, t, self.config.target_isa):
                    inst.migrated = True
                    self._migrate_cursor += 1
                    self._migrated_count += 1
                    moved += 1
                else:
                    deferred = target_count - self._migrated_count
                    self._counters["deferred"] += deferred
                    break
            if self._migrated_count >= target_count:
                # Slot done; paused or capacity-deferred slots retry the
                # same ramp step at the next slot.
                self._ramp_step += 1
        self.waves.append(
            WaveReport(
                index=len(self.waves) + 1,
                time=t,
                target_fraction=self.policy.targets()[
                    min(self._ramp_step, len(plan) - 1)
                ],
                migrated=moved,
                cumulative_migrated=self._migrated_count,
                paused=paused,
                attainment_before=attainment,
                baseline_attainment=self._baseline_attainment,
                stall_seconds=self._stall_seconds - stall_before,
                deferred=deferred,
            )
        )
        self._window_offered = 0
        self._window_in_slo = 0
        if self._checker is not None:
            self._checker.check(self, f"wave@{t:.0f}")

    # ----------------------------------------------------------- faults

    def _handle_crash(self, t: float, event) -> None:
        idx = parse_node_name(event.node)
        node = self.nodes[idx]
        if not node.alive:
            return
        node.alive = False
        node.down_since = t
        self._counters["crashes"] += 1
        # Purge the dead node's free-slot entries now: the repair
        # handler re-derives the node's free count from its instance
        # list, so entries left behind here would double-count the
        # node's capacity after it comes back.
        pool = self._free_slots[node.isa]
        if idx in pool:
            self._free_slots[node.isa] = [i for i in pool if i != idx]
        # Evacuate-live: completed work is preserved; each resident
        # service fails over to a free slot — same ISA first, then the
        # other ISAs (heterogeneous-ISA failover) — paying the
        # migration cost.  With the fleet full it is stranded until a
        # repair frees capacity.
        for sid in list(node.instances):
            inst = self.services[sid]
            if self._move_service(sid, t, inst.isa):
                self._counters["evacuations"] += 1
                continue
            moved = False
            for isa in self.templates:
                if isa == inst.isa:
                    continue
                if self._move_service(sid, t, isa):
                    self._counters["evacuations"] += 1
                    self._counters["failovers"] += 1
                    moved = True
                    break
            if not moved:
                self._stranded.append(sid)
        if not getattr(event, "permanent", False):
            self._sim.queue.push(
                t + event.repair_seconds,
                lambda i=idx: self._handle_repair(i),
                name="repair",
            )
        if self._checker is not None:
            self._checker.check(self, f"crash@{t:.0f}")

    def _handle_repair(self, idx: int) -> None:
        node = self.nodes[idx]
        if node.alive:
            return
        t = self._sim.now
        node.alive = True
        node.downtime_s += t - node.down_since
        node.down_since = -1.0
        self._counters["repairs"] += 1
        free = self.config.slots_per_node - len(node.instances)
        self._free_slots[node.isa].extend([idx] * free)
        # Re-place services stranded by a full fleet.  A stranded
        # service still sits in its dead node's instance list, so if
        # *this* repair is its own home node coming back it simply
        # resumes in place; otherwise it needs a free slot somewhere.
        still: List[int] = []
        for sid in self._stranded:
            inst = self.services[sid]
            if self.nodes[inst.node_idx].alive:
                continue
            if self._move_service(sid, t, inst.isa):
                self._counters["evacuations"] += 1
            else:
                still.append(sid)
        self._stranded = still
        if self._checker is not None:
            self._checker.check(self, f"repair@{t:.0f}")

    def _handle_degrade_start(self, event) -> None:
        self._bw_factor *= event.bandwidth_factor
        self._sim.queue.push(
            self._sim.now + event.duration,
            lambda e=event: self._handle_degrade_end(e),
            name="degrade-end",
        )

    def _handle_degrade_end(self, event) -> None:
        self._bw_factor /= event.bandwidth_factor

    # -------------------------------------------------------------- run

    def _schedule(self, horizon_s: float) -> None:
        for t in self.policy.wave_times(horizon_s):
            self._sim.queue.push(
                t, lambda when=t: self._handle_wave(when), name="wave"
            )
        for event in self.faults:
            if event.kind == "crash":
                self._sim.queue.push(
                    event.time,
                    lambda e=event: self._handle_crash(e.time, e),
                    name="crash",
                )
            elif event.kind == "repair":
                self._sim.queue.push(
                    event.time,
                    lambda e=event: self._handle_repair(
                        parse_node_name(e.node)
                    ),
                    name="repair",
                )
            elif event.kind == "degrade":
                self._sim.queue.push(
                    event.time,
                    lambda e=event: self._handle_degrade_start(e),
                    name="degrade",
                )

    def run(self, trace: ArrivalTrace) -> FleetRunResult:
        """Drive the trace's arrivals through waves and faults.

        Arrivals are drained from a cursor between sparse events: every
        arrival with ``time <= next event`` is priced analytically,
        then the event fires.  Same seed, same config ⇒ bit-identical
        result (the checksum test relies on this).
        """
        self._schedule(trace.horizon_s)
        assign = self.rng.stream("fleet.assign")
        services = self.config.services
        times = trace.times
        n = len(times)
        cursor = 0
        queue = self._sim.queue
        clock = self._sim.clock
        while True:
            head = queue.peek()
            bound = head.time if head is not None else float("inf")
            while cursor < n and times[cursor] <= bound:
                t = times[cursor]
                self._handle_job(t, assign.randrange(services))
                cursor += 1
            if head is None:
                break
            event = queue.pop()
            clock.advance_to(event.time)
            event.action()
        if cursor < n:  # events ended before the trace did
            while cursor < n:
                t = times[cursor]
                self._handle_job(t, assign.randrange(services))
                cursor += 1
        self._counters["offered"] = n
        end = max(trace.horizon_s, self._makespan)
        if end > clock.now:
            clock.advance_to(end)
        if self._checker is not None:
            self._checker.check(self, "end")
        return self._finish(trace, end)

    def _finish(self, trace: ArrivalTrace, end: float) -> FleetRunResult:
        c = self._counters
        energy_by_isa = {isa: 0.0 for isa in self.config.nodes}
        busy_by_isa = {isa: 0.0 for isa in self.config.nodes}
        for node in self.nodes:
            downtime = node.downtime_s
            if node.down_since >= 0.0:
                downtime += end - node.down_since
            uptime = end - downtime
            template = self.templates[node.isa]
            energy_by_isa[node.isa] += template.energy_joules(
                uptime, node.busy_core_seconds
            )
            busy_by_isa[node.isa] += node.busy_core_seconds
        p50, p99, p999 = percentiles(self._latencies)
        offered = c["offered"]
        return FleetRunResult(
            seed=self.rng.seed,
            nodes_by_isa=dict(self.config.nodes),
            services=self.config.services,
            horizon_s=trace.horizon_s,
            makespan=self._makespan,
            jobs_offered=offered,
            jobs_completed=c["completed"],
            jobs_shed=c["shed"],
            p50_latency_s=p50,
            p99_latency_s=p99,
            p999_latency_s=p999,
            slo_violations=c["violations"],
            slo_attainment=c["in_slo"] / offered if offered else 0.0,
            waves=list(self.waves),
            services_migrated=self._migrated_count,
            migrations=c["migrations"],
            migration_stall_seconds=self._stall_seconds,
            paused_waves=sum(1 for w in self.waves if w.paused),
            deferred_migrations=c["deferred"],
            jobs_by_isa=dict(self._jobs_by_isa),
            busy_core_seconds_by_isa=busy_by_isa,
            energy_by_isa=energy_by_isa,
            capacity_slots_by_isa={
                isa: count * self.config.slots_per_node
                for isa, count in self.config.nodes.items()
            },
            crashes=c["crashes"],
            repairs=c["repairs"],
            evacuations=c["evacuations"],
            failovers=c["failovers"],
            stranded_services=len(self._stranded),
        )

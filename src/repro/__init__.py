"""repro — an executable reproduction of "Breaking the Boundaries in
Heterogeneous-ISA Datacenters" (Barbalace et al., ASPLOS 2017).

The package rebuilds the paper's entire stack as a faithful simulation:

* :mod:`repro.ir` / :mod:`repro.compiler` / :mod:`repro.linker` — the
  multi-ISA toolchain (migration points, per-ABI frame layouts,
  stackmaps, symbol alignment, common TLS);
* :mod:`repro.runtime` — the execution engine and the stack
  transformation / register mapping migration runtime;
* :mod:`repro.kernel` — the replicated-kernel OS with heterogeneous
  OS-containers, hDSM, the heterogeneous binary loader and the thread
  migration service;
* :mod:`repro.machine` / :mod:`repro.telemetry` — the ARM + x86
  testbed with power sensors;
* :mod:`repro.emulation` / :mod:`repro.managed` — the QEMU and PadMig
  baselines;
* :mod:`repro.workloads` — NPB, bzip2smp, Verus and Redis-like
  benchmarks;
* :mod:`repro.datacenter` — the scheduling / energy experiments.

Quickstart::

    from repro import Toolchain, boot_testbed, ExecutionEngine
    from repro.workloads import build_workload

    binary = Toolchain().build(build_workload("is", "A", threads=4))
    system = boot_testbed()
    process = system.exec_process(binary, "x86-server")
    system.request_migration(process, "arm-server")  # threads migrate
    ExecutionEngine(system, process).run()
"""

from repro.compiler import MultiIsaBinary, Toolchain
from repro.isa import ARM64, X86_64, get_isa
from repro.kernel import PopcornSystem, boot_testbed
from repro.workloads import build_workload

__version__ = "1.0.0"


def __getattr__(name):
    if name in ("ExecutionEngine", "EngineHooks"):
        from repro.runtime import execution

        return getattr(execution, name)
    if name == "StackTransformer":
        from repro.runtime.transform import StackTransformer

        return StackTransformer
    if name == "InvariantViolation":
        from repro.validate import InvariantViolation

        return InvariantViolation
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "Toolchain",
    "MultiIsaBinary",
    "ARM64",
    "X86_64",
    "get_isa",
    "PopcornSystem",
    "boot_testbed",
    "build_workload",
    "ExecutionEngine",
    "EngineHooks",
    "StackTransformer",
    "InvariantViolation",
    "__version__",
]

"""Exporting results for external plotting (CSV / JSON).

The harness prints ASCII artifacts; users who want real figures export
the underlying data instead::

    from repro.analysis.export import runs_to_csv, series_to_csv
"""

import csv
import io
import json
from typing import Dict, Iterable, List

from repro.sim.trace import TimeSeries


def series_to_csv(series_list: Iterable[TimeSeries]) -> str:
    """Merge time series on their timestamps into one CSV table.

    All series must share identical sampling grids (the PowerRecorder's
    probes do, by construction).
    """
    series_list = list(series_list)
    if not series_list:
        return "time\n"
    grid = series_list[0].times
    for series in series_list[1:]:
        if series.times != grid:
            raise ValueError(
                f"series {series.name} has a different sampling grid"
            )
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(["time"] + [s.name for s in series_list])
    for i, t in enumerate(grid):
        writer.writerow([f"{t:.6f}"] + [repr(s.values[i]) for s in series_list])
    return out.getvalue()


def runs_to_csv(runs_by_policy: Dict[str, List]) -> str:
    """Flatten RunResults into one CSV row per (policy, set)."""
    out = io.StringIO()
    writer = csv.writer(out)
    machines: List[str] = []
    for runs in runs_by_policy.values():
        for run in runs:
            for name in run.energy_by_machine:
                if name not in machines:
                    machines.append(name)
    writer.writerow(
        ["policy", "set", "makespan_s", "total_energy_j", "edp",
         "migrations", "jobs", "mean_response_s"]
        + [f"energy_{m}_j" for m in machines]
    )
    for policy, runs in runs_by_policy.items():
        for index, run in enumerate(runs):
            writer.writerow(
                [policy, index, f"{run.makespan:.6f}",
                 f"{run.total_energy:.3f}", f"{run.edp:.3f}",
                 run.migrations, run.job_count, f"{run.mean_response:.6f}"]
                + [f"{run.energy_by_machine.get(m, 0.0):.3f}" for m in machines]
            )
    return out.getvalue()


def runs_to_json(runs_by_policy: Dict[str, List]) -> str:
    """RunResults as a JSON document."""
    payload = {
        policy: [
            {
                "makespan_s": run.makespan,
                "total_energy_j": run.total_energy,
                "edp": run.edp,
                "migrations": run.migrations,
                "jobs": run.job_count,
                "mean_response_s": run.mean_response,
                "energy_by_machine_j": run.energy_by_machine,
            }
            for run in runs
        ]
        for policy, runs in runs_by_policy.items()
    }
    return json.dumps(payload, indent=2, sort_keys=True)

"""Exporting results for external plotting (CSV / JSON) and traces.

The harness prints ASCII artifacts; users who want real figures export
the underlying data instead::

    from repro.analysis.export import runs_to_csv, series_to_csv

Span traces (``repro.telemetry.spans``) export to the Chrome
trace-event format (:func:`spans_to_chrome`, loadable in Perfetto /
``chrome://tracing``) or to JSON-lines (:func:`spans_to_jsonl`); see
``docs/observability.md``.
"""

import csv
import io
import json
from typing import Dict, Iterable, List

from repro.sim.trace import TimeSeries


def series_to_csv(series_list: Iterable[TimeSeries]) -> str:
    """Merge time series on their timestamps into one CSV table.

    All series must share identical sampling grids (the PowerRecorder's
    probes do, by construction).
    """
    series_list = list(series_list)
    if not series_list:
        return "time\n"
    grid = series_list[0].times
    for series in series_list[1:]:
        if series.times != grid:
            raise ValueError(
                f"series {series.name} has a different sampling grid"
            )
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(["time"] + [s.name for s in series_list])
    for i, t in enumerate(grid):
        writer.writerow([f"{t:.6f}"] + [repr(s.values[i]) for s in series_list])
    return out.getvalue()


def runs_to_csv(runs_by_policy: Dict[str, List]) -> str:
    """Flatten RunResults into one CSV row per (policy, set)."""
    out = io.StringIO()
    writer = csv.writer(out)
    machines: List[str] = []
    for runs in runs_by_policy.values():
        for run in runs:
            for name in run.energy_by_machine:
                if name not in machines:
                    machines.append(name)
    writer.writerow(
        ["policy", "set", "makespan_s", "total_energy_j", "edp",
         "migrations", "jobs", "mean_response_s"]
        + [f"energy_{m}_j" for m in machines]
    )
    for policy, runs in runs_by_policy.items():
        for index, run in enumerate(runs):
            writer.writerow(
                [policy, index, f"{run.makespan:.6f}",
                 f"{run.total_energy:.3f}", f"{run.edp:.3f}",
                 run.migrations, run.job_count, f"{run.mean_response:.6f}"]
                + [f"{run.energy_by_machine.get(m, 0.0):.3f}" for m in machines]
            )
    return out.getvalue()


# --------------------------------------------------------- span traces

#: Synthetic pid for the single simulated "process" in a Chrome trace.
_TRACE_PID = 1


def _track_ids(spans) -> Dict[str, int]:
    """Deterministic track-name -> Chrome tid mapping (sorted names)."""
    return {
        name: tid
        for tid, name in enumerate(sorted({s.track for s in spans}), start=1)
    }


def spans_to_chrome(spans) -> str:
    """Spans as a Chrome trace-event JSON document.

    Loadable in Perfetto (https://ui.perfetto.dev) or
    ``chrome://tracing``.  Each span track becomes a named thread;
    closed spans with extent become complete ("X") events, instants
    become "i" events, and ``flow`` causal links become "s"/"f" flow
    arrows (e.g. migration -> post-migration page pulls).  Timestamps
    are simulated microseconds.
    """
    tracks = _track_ids(spans)
    events: List[dict] = []
    for name, tid in tracks.items():
        events.append(
            {
                "ph": "M",
                "pid": _TRACE_PID,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": name},
            }
        )
    by_id = {s.span_id: s for s in spans}
    for span in spans:
        tid = tracks[span.track]
        ts = span.start_s * 1e6
        args = {"span_id": span.span_id}
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        args.update(span.attrs)
        end_s = span.end_s if span.end_s is not None else span.start_s
        if end_s > span.start_s:
            events.append(
                {
                    "ph": "X",
                    "pid": _TRACE_PID,
                    "tid": tid,
                    "ts": ts,
                    "dur": (end_s - span.start_s) * 1e6,
                    "name": span.name,
                    "cat": span.category,
                    "args": args,
                }
            )
        else:
            events.append(
                {
                    "ph": "i",
                    "pid": _TRACE_PID,
                    "tid": tid,
                    "ts": ts,
                    "s": "t",
                    "name": span.name,
                    "cat": span.category,
                    "args": args,
                }
            )
        flow = span.attrs.get("flow")
        cause = by_id.get(flow) if flow is not None else None
        if cause is not None:
            flow_id = f"{cause.span_id}-{span.span_id}"
            cause_end = (
                cause.end_s if cause.end_s is not None else cause.start_s
            )
            events.append(
                {
                    "ph": "s",
                    "pid": _TRACE_PID,
                    "tid": tracks[cause.track],
                    "ts": cause_end * 1e6,
                    "id": flow_id,
                    "name": f"{cause.name}->{span.name}",
                    "cat": cause.category,
                }
            )
            events.append(
                {
                    "ph": "f",
                    "bp": "e",
                    "pid": _TRACE_PID,
                    "tid": tid,
                    "ts": ts,
                    "id": flow_id,
                    "name": f"{cause.name}->{span.name}",
                    "cat": cause.category,
                }
            )
    return json.dumps(
        {"traceEvents": events, "displayTimeUnit": "ms"}, sort_keys=True
    )


def spans_to_jsonl(spans) -> str:
    """Spans as JSON lines (one span object per line), for tooling."""
    lines = []
    for span in spans:
        lines.append(
            json.dumps(
                {
                    "trace_id": span.trace_id,
                    "span_id": span.span_id,
                    "parent_id": span.parent_id,
                    "name": span.name,
                    "category": span.category,
                    "start_s": span.start_s,
                    "end_s": span.end_s,
                    "track": span.track,
                    "attrs": span.attrs,
                },
                sort_keys=True,
            )
        )
    return "\n".join(lines) + ("\n" if lines else "")


def validate_chrome_trace(text: str) -> List[str]:
    """Schema-check a Chrome trace document; returns problem strings.

    Validates what Perfetto's loader actually relies on: a top-level
    ``traceEvents`` list whose events carry a known phase, a numeric
    timestamp (metadata excepted), and non-negative durations.
    """
    problems: List[str] = []
    try:
        doc = json.loads(text)
    except ValueError as exc:
        return [f"not valid JSON: {exc}"]
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        return ["missing top-level traceEvents"]
    events = doc["traceEvents"]
    if not isinstance(events, list):
        return ["traceEvents is not a list"]
    known_phases = {"X", "B", "E", "i", "I", "M", "s", "t", "f", "C"}
    for index, event in enumerate(events):
        where = f"event {index}"
        if not isinstance(event, dict):
            problems.append(f"{where} is not an object")
            continue
        phase = event.get("ph")
        if phase not in known_phases:
            problems.append(f"{where} has unknown phase {phase!r}")
            continue
        if "name" not in event:
            problems.append(f"{where} has no name")
        if phase == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)):
            problems.append(f"{where} ({event.get('name')}) has no ts")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(
                    f"{where} ({event.get('name')}) has bad dur {dur!r}"
                )
        if phase in ("s", "t", "f") and "id" not in event:
            problems.append(f"{where} flow event has no id")
    return problems


def runs_to_json(runs_by_policy: Dict[str, List]) -> str:
    """RunResults as a JSON document."""
    payload = {
        policy: [
            {
                "makespan_s": run.makespan,
                "total_energy_j": run.total_energy,
                "edp": run.edp,
                "migrations": run.migrations,
                "jobs": run.job_count,
                "mean_response_s": run.mean_response,
                "energy_by_machine_j": run.energy_by_machine,
            }
            for run in runs
        ]
        for policy, runs in runs_by_policy.items()
    }
    return json.dumps(payload, indent=2, sort_keys=True)

"""Shared result analysis: summary statistics and table/figure
rendering used by the benchmark harness (one module per paper table or
figure lives under ``benchmarks/``)."""

from repro.analysis.stats import FiveNumber, five_number_summary, geomean
from repro.analysis.report import Table, bar, format_series
from repro.analysis.export import (
    runs_to_csv,
    runs_to_json,
    series_to_csv,
    spans_to_chrome,
    spans_to_jsonl,
    validate_chrome_trace,
)
from repro.analysis.critical_path import (
    MigrationSegments,
    migration_critical_path,
    render_critical_path,
)

__all__ = [
    "FiveNumber",
    "five_number_summary",
    "geomean",
    "Table",
    "bar",
    "format_series",
    "runs_to_csv",
    "runs_to_json",
    "series_to_csv",
    "spans_to_chrome",
    "spans_to_jsonl",
    "validate_chrome_trace",
    "MigrationSegments",
    "migration_critical_path",
    "render_critical_path",
]

"""Plain-text rendering of the harness's tables and figure series.

The implementations moved to :mod:`repro.render` (one shared module
for every report surface — benchmark tables, telemetry digests, fault
timelines); this module re-exports the table and series helpers under
their historical import path.
"""

from repro.render import Table, _fmt, bar, format_series

__all__ = ["Table", "bar", "format_series"]

"""Summary statistics for benchmark results."""

import math
from dataclasses import dataclass
from typing import Sequence

from repro.telemetry.metrics import quantile as _quantile


@dataclass(frozen=True)
class FiveNumber:
    """Min / Q1 / median / Q3 / max — the Figure 10 box-plot stats."""

    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float

    def __str__(self) -> str:
        return (
            f"min={self.minimum:.6g} q1={self.q1:.6g} med={self.median:.6g} "
            f"q3={self.q3:.6g} max={self.maximum:.6g}"
        )


def five_number_summary(values: Sequence[float]) -> FiveNumber:
    if not values:
        raise ValueError("no data for a five-number summary")
    data = sorted(values)
    return FiveNumber(
        minimum=data[0],
        q1=_quantile(data, 0.25),
        median=_quantile(data, 0.5),
        q3=_quantile(data, 0.75),
        maximum=data[-1],
    )


def geomean(values: Sequence[float]) -> float:
    data = [v for v in values if v > 0]
    if not data:
        return 0.0
    return math.exp(sum(math.log(v) for v in data) / len(data))


def mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0

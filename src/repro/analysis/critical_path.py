"""Critical-path decomposition of traced migrations.

Re-derives the paper's migration-latency breakdown (stack
transformation vs. kernel hand-off vs. post-migration DSM pulls,
Figs. 10-11) purely from a span trace — the same decomposition the
instrumented sites charge into the cost model, recovered from
observability data alone.  ``docs/observability.md`` documents the
methodology; ``repro trace --critical-path`` prints the table.
"""

from dataclasses import dataclass, field
from typing import Dict, List

from repro.analysis.report import Table

#: Phase-child names that count as kernel hand-off time.
_HANDOFF_CHILDREN = (
    "migrate.transfer",
    "migrate.publish",
    "migrate.commit",
    "migrate.abort",
    "migrate.promote",
)


@dataclass
class MigrationSegments:
    """One migration's end-to-end latency, decomposed from its spans."""

    span_id: int
    src: str
    dst: str
    start_s: float
    total_s: float
    transform_s: float = 0.0
    handoff_s: float = 0.0
    #: Summed duration of flow-linked DSM spans *after* this migration
    #: (the residual page-pull tail; wall-clock, not part of total_s).
    dsm_tail_s: float = 0.0
    dsm_tail_pages: int = 0
    aborted: bool = False
    resumed: bool = False
    attrs: Dict[str, object] = field(default_factory=dict)


def migration_critical_path(spans) -> List[MigrationSegments]:
    """Decompose every ``migrate`` root span in ``spans``.

    The phase children tile each root exactly, so
    ``transform_s + handoff_s == total_s`` (within float rounding) for
    every returned record; the DSM tail is accounted separately because
    it overlaps resumed execution (no stop-the-world).
    """
    roots = [
        s for s in spans if s.name == "migrate" and s.category == "migrate"
    ]
    by_root: Dict[int, MigrationSegments] = {}
    out: List[MigrationSegments] = []
    for root in roots:
        seg = MigrationSegments(
            span_id=root.span_id,
            src=str(root.attrs.get("src", root.track)),
            dst=str(root.attrs.get("dst", "?")),
            start_s=root.start_s,
            total_s=root.duration_s,
            aborted=bool(root.attrs.get("aborted", False)),
            resumed=bool(root.attrs.get("resumed", False)),
            attrs=dict(root.attrs),
        )
        by_root[root.span_id] = seg
        out.append(seg)
    for span in spans:
        parent = by_root.get(span.parent_id) if span.parent_id else None
        if parent is not None:
            if span.name == "migrate.transform":
                parent.transform_s += span.duration_s
            elif span.name in _HANDOFF_CHILDREN:
                parent.handoff_s += span.duration_s
            continue
        if span.category != "dsm":
            continue
        cause = by_root.get(span.attrs.get("flow"))
        if cause is not None:
            cause.dsm_tail_s += span.duration_s
            cause.dsm_tail_pages += int(
                span.attrs.get("pages", 1 if span.name == "dsm.page" else 0)
            )
    return out


def total_transform_s(segments: List[MigrationSegments]) -> float:
    """Summed stack-transformation seconds across migrations."""
    return sum(s.transform_s for s in segments)


def total_handoff_s(segments: List[MigrationSegments]) -> float:
    """Summed kernel hand-off seconds across migrations."""
    return sum(s.handoff_s for s in segments)


def render_critical_path(segments: List[MigrationSegments]) -> str:
    """ASCII breakdown table, one row per migration plus a total row."""
    table = Table(
        "migration critical path",
        ["migration", "start (s)", "transform (us)", "hand-off (us)",
         "total (us)", "dsm tail (us)", "tail pages", "outcome"],
    )
    for seg in segments:
        outcome = "committed"
        if seg.aborted:
            outcome = "aborted"
        elif seg.resumed:
            outcome = "promoted"
        table.add_row(
            f"{seg.src}->{seg.dst}",
            f"{seg.start_s:.6f}",
            f"{seg.transform_s * 1e6:.1f}",
            f"{seg.handoff_s * 1e6:.1f}",
            f"{seg.total_s * 1e6:.1f}",
            f"{seg.dsm_tail_s * 1e6:.1f}",
            seg.dsm_tail_pages,
            outcome,
        )
    if segments:
        table.add_row(
            "TOTAL",
            "",
            f"{total_transform_s(segments) * 1e6:.1f}",
            f"{total_handoff_s(segments) * 1e6:.1f}",
            f"{sum(s.total_s for s in segments) * 1e6:.1f}",
            f"{sum(s.dsm_tail_s for s in segments) * 1e6:.1f}",
            sum(s.dsm_tail_pages for s in segments),
            "",
        )
    return table.render()

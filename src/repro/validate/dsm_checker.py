"""hDSM coherence checker: MSI invariants + a lock-step shadow model.

:class:`ValidatedDsmService` is a drop-in :class:`DsmService` that
re-executes every residency-changing operation against an independent
reference implementation of the intended MSI protocol and compares the
full coherence state (owner map, sharer sets, traffic counters) after
every ``access``/``ensure_range``/cleanup.  On top of the lock-step
comparison it asserts the structural MSI invariants directly:

* every tracked page has exactly one owner, and the owner holds a
  valid copy (owner ∈ sharer set);
* sharer sets are never empty for tracked pages, and the owner/valid
  maps track exactly the same pages;
* after a write the writer is the only holder (writer exclusivity) —
  enforced through the shadow model, which knows the access history;
* aliased pages (per-ISA ``.text``, vDSO) never enter the owner or
  valid maps — they are local everywhere by construction;
* every byte recorded on the interconnect is attributable to a
  messaging-layer kind (page payloads, invalidations, bulk pulls), so
  DSM traffic can never be double-charged or silently dropped.
"""

from collections import Counter
from typing import Dict, Optional, Set

from repro.kernel.dsm import DsmService, DsmStats
from repro.linker.layout import PAGE_SIZE, page_of
from repro.telemetry.validation import ValidationLog, default_log
from repro.validate.errors import InvariantViolation


class ShadowDsm:
    """Reference MSI model, deliberately independent of DsmService.

    Implements the *intended* protocol semantics (upgrades move no
    payload; every missing page is one logical fault; invalidations are
    counted per stale copy) so that any accounting drift in the real
    service shows up as a lock-step divergence.
    """

    def __init__(self, aliased_pages: Set[int], machines=None, backup=False):
        self.aliased = set(aliased_pages)
        self.owner: Dict[int, str] = {}
        self.valid: Dict[int, Set[str]] = {}
        self.stats = DsmStats()
        # Crash-recovery mirror state (independent re-implementation).
        self.machines = list(machines) if machines else []
        self.backup = bool(backup) and len(self.machines) > 1
        self.dirtied: Set[int] = set()
        self.backup_of: Dict[int, str] = {}
        self.dead: Set[str] = set()
        self.lost: Dict[int, str] = {}
        # page -> coherence faults served on it; the race-soundness
        # harness rank-correlates this observed traffic against the
        # static sharing predictions (SHR0xx scores).
        self.page_faults: Counter = Counter()

    def _push_backup(self, owner: str, page: int) -> None:
        if not self.backup or owner not in self.machines:
            return
        nxt = self.machines[
            (self.machines.index(owner) + 1) % len(self.machines)
        ]
        if nxt in self.dead:
            return
        self.backup_of[page] = nxt
        self.stats.backup_pushes += 1
        self.stats.backup_bytes += PAGE_SIZE

    def _first_touch(self, kernel: str, page: int, write: bool = False) -> None:
        if page not in self.owner and page not in self.aliased:
            self.owner[page] = kernel
            self.valid[page] = {kernel}
            if write:
                self.dirtied.add(page)
                self._push_backup(kernel, page)
        elif write and page not in self.aliased:
            self.dirtied.add(page)
            if page not in self.backup_of:
                self._push_backup(kernel, page)

    def _is_local(self, kernel: str, page: int, write: bool) -> bool:
        if page in self.aliased:
            return True
        owner = self.owner.get(page)
        if owner is None:
            return True
        if write:
            return owner == kernel and self.valid[page] == {kernel}
        return kernel in self.valid.get(page, set())

    def _serve_fault(self, kernel: str, page: int, write: bool) -> bool:
        """Apply one coherence fault; returns True if a payload moved."""
        self.stats.faults += 1
        self.page_faults[page] += 1
        sharers = self.valid[page]
        transferred = kernel not in sharers
        if transferred:
            self.stats.page_transfers += 1
            self.stats.bytes_transferred += PAGE_SIZE
        if write:
            self.stats.invalidations += sum(1 for k in sharers if k != kernel)
            self.owner[page] = kernel
            self.valid[page] = {kernel}
            self.dirtied.add(page)
            self._push_backup(kernel, page)
        else:
            sharers.add(kernel)
        return transferred

    def access(self, kernel: str, page: int, write: bool) -> None:
        if self._is_local(kernel, page, write):
            self._first_touch(kernel, page, write)
            return
        self._serve_fault(kernel, page, write)

    def ensure_range(self, kernel: str, base: int, span: int, write: bool) -> None:
        if span <= 0:
            return
        pages = range(page_of(base), page_of(base + span - 1) + 1)
        missing = [p for p in pages if not self._is_local(kernel, p, write)]
        for p in pages:
            self._first_touch(kernel, p, write)
        for p in missing:
            self._serve_fault(kernel, p, write)

    def cleanup(self, kernel: str) -> None:
        for page, sharers in self.valid.items():
            if kernel in sharers and self.owner.get(page) != kernel:
                sharers.discard(kernel)

    def scrub_dead(self, dead: str) -> None:
        """Mirror of DsmService.scrub_dead_kernel, independently derived."""
        self.dead.add(dead)
        for page in sorted(self.valid):
            sharers = self.valid[page]
            sharers.discard(dead)
            if self.owner.get(page) != dead:
                continue
            if sharers:
                self.owner[page] = min(sharers)
                continue
            backup = self.backup_of.get(page)
            del self.owner[page]
            del self.valid[page]
            if backup is not None and backup not in self.dead:
                self.owner[page] = backup
                self.valid[page] = {backup}
            elif page in self.dirtied:
                self.lost[page] = dead
        for page, holder in list(self.backup_of.items()):
            if holder == dead:
                del self.backup_of[page]


class ValidatedDsmService(DsmService):
    """DsmService that checks MSI invariants after every operation."""

    CHECKER = "dsm"

    def __init__(
        self,
        space,
        messaging,
        home_kernel: str,
        machines=None,
        backup: bool = False,
        log: Optional[ValidationLog] = None,
    ):
        super().__init__(
            space, messaging, home_kernel, machines=machines, backup=backup
        )
        self.shadow = ShadowDsm(
            self._aliased, machines=machines, backup=backup
        )
        self.log = log if log is not None else default_log()

    # ------------------------------------------------------ operations

    def access(self, kernel: str, addr: int, write: bool) -> float:
        cost = super().access(kernel, addr, write)
        self.shadow.access(kernel, page_of(addr), write)
        self._check(f"access({kernel}, {addr:#x}, write={write})")
        if cost < 0.0:
            self._fail(
                "non-negative-cost", f"access returned {cost!r}",
                {"kernel": kernel, "addr": hex(addr), "write": write},
            )
        return cost

    def ensure_range(self, kernel, base, span, write):
        cost, pages = super().ensure_range(kernel, base, span, write)
        self.shadow.ensure_range(kernel, base, span, write)
        self._check(
            f"ensure_range({kernel}, {base:#x}, span={span}, write={write})"
        )
        return cost, pages

    def all_threads_migrated_cleanup(self, kernel: str) -> int:
        dropped = super().all_threads_migrated_cleanup(kernel)
        self.shadow.cleanup(kernel)
        self._check(f"all_threads_migrated_cleanup({kernel})")
        return dropped

    def scrub_dead_kernel(self, dead: str):
        report = super().scrub_dead_kernel(dead)
        self.shadow.scrub_dead(dead)
        self._check(f"scrub_dead_kernel({dead})")
        return report

    # --------------------------------------------------------- checks

    def _fail(self, invariant: str, detail: str, extra=None) -> None:
        state = {
            "owner": dict(sorted(self._owner.items())),
            "valid": {p: sorted(s) for p, s in sorted(self._valid.items())},
            "stats": vars(self.stats.snapshot()),
            "shadow_owner": dict(sorted(self.shadow.owner.items())),
            "shadow_valid": {
                p: sorted(s) for p, s in sorted(self.shadow.valid.items())
            },
            "shadow_stats": vars(self.shadow.stats.snapshot()),
        }
        if extra:
            state.update(extra)
        violation = InvariantViolation(self.CHECKER, invariant, detail, state)
        self.log.note_violation(violation)
        raise violation

    def _check(self, op: str) -> None:
        self.log.note_check(self.CHECKER)
        self._check_structure(op)
        self._check_shadow(op)
        self._check_byte_conservation(op)

    def _check_structure(self, op: str) -> None:
        if self._owner.keys() != self._valid.keys():
            self._fail(
                "owner-valid-same-pages",
                f"after {op}: owner map and valid map track different pages",
                {"op": op},
            )
        for page, sharers in self._valid.items():
            if not sharers:
                self._fail(
                    "sharers-nonempty",
                    f"after {op}: page {page:#x} has an empty sharer set",
                    {"op": op, "page": page},
                )
            if self._owner[page] not in sharers:
                self._fail(
                    "owner-holds-copy",
                    f"after {op}: owner {self._owner[page]!r} of page "
                    f"{page:#x} holds no valid copy",
                    {"op": op, "page": page},
                )
            if page in self._aliased:
                self._fail(
                    "aliased-never-tracked",
                    f"after {op}: aliased page {page:#x} entered the "
                    "owner/valid maps",
                    {"op": op, "page": page},
                )
            if self._dead and (self._owner[page] in self._dead
                               or sharers & self._dead):
                self._fail(
                    "no-dead-routes",
                    f"after {op}: page {page:#x} still routes at a dead "
                    "kernel (directory scrub incomplete)",
                    {"op": op, "page": page, "dead": sorted(self._dead)},
                )
        for page in self.lost_pages:
            if page in self._owner or page in self._valid:
                self._fail(
                    "lost-pages-untracked",
                    f"after {op}: lost page {page:#x} still tracked in the "
                    "owner/valid maps",
                    {"op": op, "page": page},
                )

    def _check_shadow(self, op: str) -> None:
        if self._owner != self.shadow.owner:
            self._fail(
                "shadow-owner-lockstep",
                f"after {op}: owner map diverged from the reference model",
                {"op": op},
            )
        if self._valid != self.shadow.valid:
            self._fail(
                "shadow-valid-lockstep",
                f"after {op}: sharer sets diverged from the reference "
                "model (writer exclusivity or sharer tracking broken)",
                {"op": op},
            )
        if self.lost_pages != self.shadow.lost:
            self._fail(
                "shadow-lost-lockstep",
                f"after {op}: lost-page map diverged from the reference "
                "model",
                {"op": op, "lost": dict(self.lost_pages),
                 "shadow_lost": dict(self.shadow.lost)},
            )
        if self._backup_of != self.shadow.backup_of:
            self._fail(
                "shadow-backup-lockstep",
                f"after {op}: backup-copy map diverged from the reference "
                "model",
                {"op": op},
            )
        real, ref = self.stats, self.shadow.stats
        for counter in ("faults", "page_transfers", "invalidations",
                        "bytes_transferred", "backup_pushes", "backup_bytes"):
            if getattr(real, counter) != getattr(ref, counter):
                self._fail(
                    f"stats-{counter}",
                    f"after {op}: stats.{counter} is "
                    f"{getattr(real, counter)}, reference model expects "
                    f"{getattr(ref, counter)}",
                    {"op": op},
                )

    def _check_byte_conservation(self, op: str) -> None:
        recorded = self.messaging.interconnect.bytes_sent
        charged = sum(self.messaging.bytes_by_kind.values())
        if recorded != charged:
            self._fail(
                "interconnect-byte-conservation",
                f"after {op}: interconnect recorded {recorded} bytes but "
                f"the messaging layer charged {charged} "
                "(DSM + messaging traffic must account for every byte)",
                {"op": op, "bytes_by_kind": dict(self.messaging.bytes_by_kind)},
            )

"""Conservation checker for the cluster simulator.

Asserts, after every simulation step and at result time, that the
:class:`~repro.datacenter.cluster.ClusterSimulator` never creates or
loses work or energy out of thin air:

* job conservation — every submitted job is exactly one of finished,
  lost, parked, running, or not yet admitted;
* job-state consistency — running jobs sit on the node their record
  names, only on nodes that are up, with remaining work in [0, 1];
* energy/time monotonicity — per-node energy, busy seconds, lost work
  and overhead only ever grow, and simulated time never runs backwards;
* goodput decomposition — lost work and overhead never exceed the busy
  seconds they are carved out of (once any work has accrued).
"""

from typing import Dict, Optional

from repro.telemetry.validation import ValidationLog, default_log
from repro.validate.errors import InvariantViolation

_EPS = 1e-6


class ClusterConservationChecker:
    """Lock-step bookkeeping audit of one ClusterSimulator run."""

    CHECKER = "cluster"

    def __init__(self, log: Optional[ValidationLog] = None):
        self.log = log if log is not None else default_log()
        self.submitted: Optional[int] = None
        self._last_now = 0.0
        self._last_busy = 0.0
        self._last_lost_work = 0.0
        self._last_overhead = 0.0
        self._last_energy: Dict[str, float] = {}

    def begin(self, submitted: int) -> None:
        self.submitted = submitted

    # ---------------------------------------------------------- checks

    def _fail(self, sim, invariant: str, detail: str, extra=None) -> None:
        state = {
            "now": sim.now,
            "submitted": self.submitted,
            "finished": len(sim.finished),
            "lost": sim.jobs_lost,
            "parked": len(sim.parked),
            "running": {n.name: len(n.jobs) for n in sim.nodes},
            "busy_seconds": sim.busy_seconds,
            "lost_work_seconds": sim.lost_work_seconds,
            "overhead_seconds": sim.overhead_seconds,
            "energy": {n.name: n.energy_joules for n in sim.nodes},
        }
        if extra:
            state.update(extra)
        violation = InvariantViolation(self.CHECKER, invariant, detail, state)
        self.log.note_violation(violation)
        raise violation

    def check(self, sim, outstanding: int = 0, final: bool = False) -> None:
        """Audit ``sim``; ``outstanding`` = submitted jobs not yet admitted."""
        self.log.note_check(self.CHECKER)
        self._check_jobs(sim, outstanding)
        self._check_monotonicity(sim)
        self._check_energy(sim)
        if final:
            self._check_goodput(sim)

    def _check_jobs(self, sim, outstanding: int) -> None:
        running = sum(len(node.jobs) for node in sim.nodes)
        # Two-phase hand-offs hold jobs in flight, and a failure
        # detector keeps a crashed node's jobs in limbo until the death
        # is confirmed — both are legitimate "exactly one copy, nowhere
        # resident" states the conservation sum must include.
        in_flight = len(getattr(sim, "_in_flight", ()))
        undetected = sum(
            len(v) for v in getattr(sim, "_undetected", {}).values()
        )
        accounted = (
            len(sim.finished) + sim.jobs_lost + len(sim.parked)
            + running + outstanding + in_flight + undetected
        )
        if self.submitted is not None and accounted != self.submitted:
            self._fail(
                sim, "job-conservation",
                f"{self.submitted} jobs submitted but "
                f"{accounted} accounted for (finished + lost + parked + "
                f"running + in-flight + undetected + not-yet-admitted)",
                {
                    "outstanding": outstanding,
                    "in_flight": in_flight,
                    "undetected": undetected,
                },
            )
        for node in sim.nodes:
            if node.jobs and not node.up:
                self._fail(
                    sim, "no-jobs-on-down-nodes",
                    f"crashed node {node.name} still holds "
                    f"{len(node.jobs)} jobs",
                )
            for job in node.jobs:
                if job.machine != node.name:
                    self._fail(
                        sim, "job-placement-consistent",
                        f"job {job.spec} sits on {node.name} but its "
                        f"record names {job.machine!r}",
                    )
                if not (-_EPS <= job.remaining_fraction <= 1.0 + _EPS):
                    self._fail(
                        sim, "remaining-fraction-bounded",
                        f"job {job.spec} on {node.name} has remaining "
                        f"fraction {job.remaining_fraction!r}",
                    )

    def _check_monotonicity(self, sim) -> None:
        if sim.now + _EPS < self._last_now:
            self._fail(
                sim, "time-monotone",
                f"simulated time went backwards: {self._last_now} -> "
                f"{sim.now}",
            )
        for name, value, last in (
            ("busy_seconds", sim.busy_seconds, self._last_busy),
            ("lost_work_seconds", sim.lost_work_seconds, self._last_lost_work),
            ("overhead_seconds", sim.overhead_seconds, self._last_overhead),
        ):
            if value + _EPS < last:
                self._fail(
                    sim, f"{name}-monotone",
                    f"{name} shrank: {last} -> {value}",
                )
        self._last_now = sim.now
        self._last_busy = sim.busy_seconds
        self._last_lost_work = sim.lost_work_seconds
        self._last_overhead = sim.overhead_seconds

    def _check_energy(self, sim) -> None:
        for node in sim.nodes:
            joules = node.energy_joules
            if not (joules >= 0.0) or joules != joules:  # NaN guard
                self._fail(
                    sim, "energy-non-negative",
                    f"node {node.name} accumulated {joules!r} J",
                )
            last = self._last_energy.get(node.name, 0.0)
            if joules + _EPS < last:
                self._fail(
                    sim, "energy-monotone",
                    f"node {node.name} energy shrank: {last} -> {joules}",
                )
            self._last_energy[node.name] = joules

    def _check_goodput(self, sim) -> None:
        if sim.busy_seconds <= 0.0:
            return
        carved = sim.lost_work_seconds + sim.overhead_seconds
        # Overhead is added to a migrated job's remaining work, so it is
        # only ever carved out of busy time already (or about to be)
        # accrued; at result time the decomposition must close.
        if carved > sim.busy_seconds * (1.0 + 1e-9) + _EPS:
            self._fail(
                sim, "goodput-decomposition",
                f"lost work + overhead ({carved}) exceeds total busy "
                f"seconds ({sim.busy_seconds})",
            )


class FleetConservationChecker:
    """Bookkeeping audit of one FleetSimulator run.

    Invoked at every sparse event (wave slot, crash, repair) and once
    at result time, re-deriving what must hold over the flat per-node
    and per-service structs:

    * slot conservation — per ISA, live free-pool entries plus occupied
      slots on live nodes equal the live nodes' total capacity;
    * placement consistency — every service sits in the instance list
      of the node it names, on a node of its recorded ISA, and services
      on dead nodes are exactly the stranded set;
    * counter conservation — completed/in-SLO/stall totals equal the
      sums over services, and per-node busy core-seconds equal the
      per-service busy seconds weighted by granted cores;
    * monotonicity — per-service ``free_at`` and the global counters
      never decrease between checks.
    """

    CHECKER = "fleet"

    def __init__(self, log: Optional[ValidationLog] = None):
        self.log = log if log is not None else default_log()
        self._last_free_at: Dict[int, float] = {}
        self._last_completed = 0

    def _fail(self, sim, invariant: str, detail: str) -> None:
        state = {
            "now": sim._sim.now,
            "services": len(sim.services),
            "nodes": len(sim.nodes),
            "counters": dict(sim._counters),
            "stranded": list(sim._stranded),
        }
        violation = InvariantViolation(self.CHECKER, invariant, detail, state)
        self.log.note_violation(violation)
        raise violation

    def check(self, sim, where: str) -> None:
        """Audit ``sim`` at event ``where``."""
        self.log.note_check(self.CHECKER)
        self._check_slots(sim, where)
        self._check_placement(sim, where)
        self._check_counters(sim, where)
        self._check_monotonicity(sim, where)

    def _check_slots(self, sim, where: str) -> None:
        spn = sim.config.slots_per_node
        for isa in sim.config.nodes:
            live_free = sum(
                1 for idx in sim._free_slots[isa] if sim.nodes[idx].alive
            )
            occupied = 0
            capacity = 0
            for node in sim.nodes:
                if node.isa != isa or not node.alive:
                    continue
                occupied += len(node.instances)
                capacity += spn
            if live_free + occupied != capacity:
                self._fail(
                    sim, "slot-conservation",
                    f"[{where}] {isa}: free {live_free} + occupied "
                    f"{occupied} != live capacity {capacity}",
                )

    def _check_placement(self, sim, where: str) -> None:
        stranded = set(sim._stranded)
        for inst in sim.services:
            node = sim.nodes[inst.node_idx]
            if inst.sid not in node.instances:
                self._fail(
                    sim, "placement-consistency",
                    f"[{where}] service {inst.sid} not in node "
                    f"{inst.node_idx}'s instance list",
                )
            if node.isa != inst.isa:
                self._fail(
                    sim, "placement-consistency",
                    f"[{where}] service {inst.sid} records ISA {inst.isa} "
                    f"but sits on a {node.isa} node",
                )
            if not node.alive and inst.sid not in stranded:
                self._fail(
                    sim, "placement-consistency",
                    f"[{where}] service {inst.sid} on dead node "
                    f"{inst.node_idx} but not marked stranded",
                )

    def _check_counters(self, sim, where: str) -> None:
        c = sim._counters
        done = sum(inst.jobs_done for inst in sim.services)
        if done != c["completed"]:
            self._fail(
                sim, "counter-conservation",
                f"[{where}] sum(jobs_done) {done} != completed "
                f"{c['completed']}",
            )
        in_slo = sum(inst.jobs_in_slo for inst in sim.services)
        if in_slo != c["in_slo"]:
            self._fail(
                sim, "counter-conservation",
                f"[{where}] sum(jobs_in_slo) {in_slo} != in_slo "
                f"{c['in_slo']}",
            )
        if c["in_slo"] + c["violations"] != c["completed"]:
            self._fail(
                sim, "counter-conservation",
                f"[{where}] in_slo {c['in_slo']} + violations "
                f"{c['violations']} != completed {c['completed']}",
            )
        stall = sum(inst.stall_seconds for inst in sim.services)
        if abs(stall - sim._stall_seconds) > _EPS * max(1.0, stall):
            self._fail(
                sim, "counter-conservation",
                f"[{where}] sum(stall) {stall} != recorded "
                f"{sim._stall_seconds}",
            )
        by_service = sum(inst.busy_core_seconds for inst in sim.services)
        by_node = sum(node.busy_core_seconds for node in sim.nodes)
        if abs(by_service - by_node) > _EPS * max(1.0, by_node):
            self._fail(
                sim, "busy-conservation",
                f"[{where}] per-service busy core-seconds {by_service} "
                f"!= per-node total {by_node}",
            )

    def _check_monotonicity(self, sim, where: str) -> None:
        if sim._counters["completed"] < self._last_completed:
            self._fail(
                sim, "monotonicity",
                f"[{where}] completed went backwards: "
                f"{sim._counters['completed']} < {self._last_completed}",
            )
        self._last_completed = sim._counters["completed"]
        for inst in sim.services:
            last = self._last_free_at.get(inst.sid)
            if last is not None and inst.free_at < last - _EPS:
                self._fail(
                    sim, "monotonicity",
                    f"[{where}] service {inst.sid} free_at went backwards: "
                    f"{inst.free_at} < {last}",
                )
            self._last_free_at[inst.sid] = inst.free_at

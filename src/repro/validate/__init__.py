"""Opt-in runtime invariant checking (``REPRO_VALIDATE=1`` / ``--validate``).

The simulator's correctness rests on two delicate mechanisms — hDSM
page coherence and frame-by-frame stack transformation — plus the
cluster simulator's work/energy bookkeeping.  This package wraps each
of them with a checker that re-derives what *must* hold and raises a
structured :class:`InvariantViolation` (with a dump of the offending
state) the moment reality diverges:

* :class:`~repro.validate.dsm_checker.ValidatedDsmService` — MSI
  structural invariants plus a lock-step shadow reference model of the
  coherence protocol and its traffic counters;
* :class:`~repro.validate.stack_checker.ValidatedStackTransformer` —
  destination stack layout, bit-exact value/buffer preservation,
  pointer containment, and an optional A->B->A round-trip check
  (``REPRO_VALIDATE_ROUNDTRIP=1``);
* :class:`~repro.validate.conservation.ClusterConservationChecker` —
  job, time and energy conservation in the datacenter simulator.

Checking is **off by default** and costs nothing when disabled: the
factories below return the plain implementations.  Enable it with the
``REPRO_VALIDATE=1`` environment variable, the CLI's ``--validate``
flag, or programmatically via :func:`set_enabled`.
"""

import os
from typing import Optional

from repro.validate.errors import InvariantViolation

_TRUTHY = ("1", "true", "yes", "on")

_forced: Optional[bool] = None
_forced_roundtrip: Optional[bool] = None


def _env_flag(name: str) -> bool:
    return os.environ.get(name, "").strip().lower() in _TRUTHY


def enabled() -> bool:
    """Is invariant checking on (override, else ``REPRO_VALIDATE``)?"""
    if _forced is not None:
        return _forced
    return _env_flag("REPRO_VALIDATE")


def set_enabled(value: Optional[bool]) -> None:
    """Force checking on/off; ``None`` defers to the environment again."""
    global _forced
    _forced = value


def roundtrip_enabled() -> bool:
    """Is the A->B->A stack round-trip check on?  Implies :func:`enabled`."""
    if _forced_roundtrip is not None:
        return _forced_roundtrip
    return _env_flag("REPRO_VALIDATE_ROUNDTRIP")


def set_roundtrip(value: Optional[bool]) -> None:
    global _forced_roundtrip
    _forced_roundtrip = value


# ------------------------------------------------------------ factories

def make_dsm_service(
    space, messaging, home_kernel: str, machines=None, backup: bool = False
):
    """A DsmService — validated when checking is enabled."""
    if enabled():
        from repro.validate.dsm_checker import ValidatedDsmService

        return ValidatedDsmService(
            space, messaging, home_kernel, machines=machines, backup=backup
        )
    from repro.kernel.dsm import DsmService

    return DsmService(space, messaging, home_kernel, machines=machines,
                      backup=backup)


def make_stack_transformer(binary, space):
    """A StackTransformer — validated when checking is enabled."""
    if enabled():
        from repro.validate.stack_checker import ValidatedStackTransformer

        return ValidatedStackTransformer(
            binary, space, roundtrip=roundtrip_enabled()
        )
    from repro.runtime.transform import StackTransformer

    return StackTransformer(binary, space)


def check_crash_consistency(system, processes) -> None:
    """Audit a system after (possibly injected) crashes.

    Always-on where called (the chaos harness calls it directly rather
    than through the enable flag): asserts the exactly-one-copy thread
    invariant and that no surviving route names a dead kernel.
    """
    from repro.validate.system_checker import (
        check_directory_scrubbed,
        check_thread_conservation,
    )

    check_thread_conservation(system, processes)
    check_directory_scrubbed(system, processes)


def make_cluster_checker():
    """A ClusterConservationChecker, or None when checking is disabled."""
    if enabled():
        from repro.validate.conservation import ClusterConservationChecker

        return ClusterConservationChecker()
    return None


def make_fleet_checker():
    """A FleetConservationChecker, or None when checking is disabled."""
    if enabled():
        from repro.validate.conservation import FleetConservationChecker

        return FleetConservationChecker()
    return None


__all__ = [
    "InvariantViolation",
    "enabled",
    "set_enabled",
    "roundtrip_enabled",
    "set_roundtrip",
    "make_dsm_service",
    "make_stack_transformer",
    "make_cluster_checker",
    "make_fleet_checker",
    "check_crash_consistency",
]

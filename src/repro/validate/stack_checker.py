"""Stack-transformation checker (destination layout + A->B->A round trip).

:class:`ValidatedStackTransformer` is a drop-in
:class:`~repro.runtime.transform.StackTransformer` that, after every
``transform``, verifies the rewritten stack against the invariants the
paper's Section 5.3 machinery promises:

* the destination stack has exactly one frame per source activation,
  with contiguous, monotonically descending CFAs that stay inside the
  (newly active) stack half — no frame overlap, no overflow;
* every live value either survives bit-exactly (common data format) or
  is a stack pointer relocated from the old half into the new one, and
  every relocated pointer lands inside a live destination frame;
* stack buffers are copied verbatim, word for word — including zeros,
  which is exactly what the stale-half-reuse bug violated;
* in round-trip mode, transforming A->B and immediately back B->A
  restores slots, buffers and registers bit-exactly (f_BA ∘ f_AB = id),
  then undoes the speculative second transform so the caller observes
  only the A->B rewrite.
"""

from typing import Dict, List, Optional

from repro.runtime.transform import StackTransformer, TransformError
from repro.telemetry.validation import ValidationLog, default_log
from repro.validate.errors import InvariantViolation


class _StackSnapshot:
    """Pre-transform state needed to judge the post-transform stack."""

    def __init__(self, thread, live, buffers):
        self.half = thread.stack.half
        self.bounds = thread.stack.active_bounds()
        self.isa_name = thread.frames[-1].mf.isa.name
        self.regfile = thread.frames[-1].mf.isa.regfile
        self.regs = dict(thread.regs)
        self.frames = [
            {"function": f.function, "cfa": f.cfa,
             "frame_size": f.mf.frame.frame_size}
            for f in thread.frames
        ]
        self.live = live      # per frame: {var: value} or None
        self.buffers = buffers  # per frame: {name: [words]}


class ValidatedStackTransformer(StackTransformer):
    """StackTransformer that verifies every rewrite it performs."""

    CHECKER = "stack"

    def __init__(self, binary, space, roundtrip: bool = False,
                 log: Optional[ValidationLog] = None):
        super().__init__(binary, space)
        self.roundtrip = roundtrip
        self.log = log if log is not None else default_log()

    # ------------------------------------------------------------ entry

    def transform(self, thread, dst_isa_name: str, migpoint_site: int):
        src = self._snapshot(thread, migpoint_site)
        stats = StackTransformer.transform(
            self, thread, dst_isa_name, migpoint_site
        )
        self.log.note_check(self.CHECKER)
        self._check_layout(thread, src, dst_isa_name)
        self._check_buffers(thread, src, migpoint_site)
        self._check_values(thread, src, migpoint_site)
        if self.roundtrip:
            self._check_roundtrip(thread, src, migpoint_site)
        return stats

    # -------------------------------------------------------- snapshot

    def _snapshot(self, thread, migpoint_site: int) -> _StackSnapshot:
        return _StackSnapshot(
            thread,
            live=self._live_state(thread, migpoint_site),
            buffers=self._buffer_state(thread),
        )

    def _live_state(self, thread, innermost_site: int) -> List[Optional[Dict]]:
        """Read every live value per frame, through stackmaps.

        Mirrors the transformer's own value location rules: a slot is
        read at cfa - depth; a register value is found in the save area
        of the youngest younger frame that saved it, else in the
        register file.
        """
        frames = thread.frames
        out: List[Optional[Dict]] = []
        for index, frame in enumerate(frames):
            site = (
                innermost_site if index == len(frames) - 1
                else frame.call_site_id
            )
            smap = frame.mf.stackmaps.get(site)
            if smap is None:
                out.append(None)  # transform itself will reject this
                continue
            values = {}
            for entry in smap.entries:
                loc = entry.location
                if loc.kind == "slot":
                    values[entry.var] = self.space.read(frame.cfa - loc.depth)
                    continue
                value = None
                for younger in frames[index + 1:]:
                    saved = younger.mf.frame.saved_reg_depths
                    if loc.reg in saved:
                        value = self.space.read(younger.cfa - saved[loc.reg])
                        break
                if value is None:
                    value = thread.regs.get(loc.reg, 0)
                values[entry.var] = value
            out.append(values)
        return out

    def _buffer_state(self, thread) -> List[Dict[str, List]]:
        out = []
        for frame in thread.frames:
            words = {}
            for name, (depth, size) in frame.mf.frame.buffer_depths.items():
                base = frame.cfa - depth
                words[name] = [
                    self.space.read(base + offset)
                    for offset in range(0, size, 8)
                ]
            out.append(words)
        return out

    # ---------------------------------------------------------- checks

    def _fail(self, invariant: str, detail: str, thread, extra=None) -> None:
        state = {
            "frames": [repr(f) for f in thread.frames],
            "stack": repr(thread.stack),
            "half": thread.stack.half,
        }
        if extra:
            state.update(extra)
        violation = InvariantViolation(self.CHECKER, invariant, detail, state)
        self.log.note_violation(violation)
        raise violation

    def _check_layout(self, thread, src: _StackSnapshot, dst_isa_name) -> None:
        frames = thread.frames
        if len(frames) != len(src.frames):
            self._fail(
                "frame-count",
                f"{len(src.frames)} source frames became {len(frames)}",
                thread,
            )
        if thread.stack.half == src.half:
            self._fail(
                "half-switched",
                "transform committed without switching stack halves",
                thread,
            )
        lo, hi = thread.stack.active_bounds()
        if frames[0].cfa != thread.stack.top:
            self._fail(
                "outermost-at-top",
                f"outermost CFA {frames[0].cfa:#x} != stack top "
                f"{thread.stack.top:#x}",
                thread,
            )
        for i, frame in enumerate(frames):
            if frame.mf.isa.name != dst_isa_name:
                self._fail(
                    "frames-on-destination-isa",
                    f"frame {frame.function} is {frame.mf.isa.name}, "
                    f"expected {dst_isa_name}",
                    thread,
                )
            if frame.function != src.frames[i]["function"]:
                self._fail(
                    "call-chain-preserved",
                    f"frame {i} is {frame.function}, source had "
                    f"{src.frames[i]['function']}",
                    thread,
                )
            if not (lo <= frame.sp and frame.cfa <= hi):
                self._fail(
                    "frames-inside-half",
                    f"frame {frame.function} [{frame.sp:#x},{frame.cfa:#x}) "
                    f"escapes the active half [{lo:#x},{hi:#x})",
                    thread,
                )
            if i + 1 < len(frames):
                expected = frame.cfa - frame.mf.frame.frame_size
                if frames[i + 1].cfa != expected:
                    self._fail(
                        "cfa-monotone-contiguous",
                        f"frame {frames[i + 1].function} CFA "
                        f"{frames[i + 1].cfa:#x} != caller CFA - frame size "
                        f"({expected:#x}) — frames overlap or leave a gap",
                        thread,
                    )

    def _check_buffers(self, thread, src: _StackSnapshot, site: int) -> None:
        for i, frame in enumerate(thread.frames):
            dst_names = set(frame.mf.frame.buffer_depths)
            if dst_names != set(src.buffers[i]):
                self._fail(
                    "buffers-preserved",
                    f"frame {frame.function} buffers {sorted(dst_names)} != "
                    f"source buffers {sorted(src.buffers[i])}",
                    thread,
                )
            for name, (depth, size) in frame.mf.frame.buffer_depths.items():
                base = frame.cfa - depth
                got = [
                    self.space.read(base + offset)
                    for offset in range(0, size, 8)
                ]
                if got != src.buffers[i][name]:
                    self._fail(
                        "buffer-words-verbatim",
                        f"buffer {name!r} of {frame.function} not copied "
                        "bit-exactly (stale destination-half words?)",
                        thread,
                        {"expected": src.buffers[i][name], "got": got},
                    )

    def _check_values(self, thread, src: _StackSnapshot, site: int) -> None:
        dst_live = self._live_state(thread, site)
        src_lo, src_hi = src.bounds
        dst_lo, dst_hi = thread.stack.active_bounds()
        extents = [(f.sp, f.cfa) for f in thread.frames]
        for i, (src_vals, dst_vals) in enumerate(zip(src.live, dst_live)):
            if src_vals is None or dst_vals is None:
                continue
            if set(src_vals) != set(dst_vals):
                self._fail(
                    "live-sets-match",
                    f"frame {thread.frames[i].function}: live variables "
                    f"{sorted(src_vals)} became {sorted(dst_vals)}",
                    thread,
                )
            for var, before in src_vals.items():
                after = dst_vals[var]
                if after == before:
                    continue
                # The only legal change is stack-pointer relocation.
                relocated = (
                    isinstance(before, int)
                    and isinstance(after, int)
                    and src_lo <= before < src_hi
                    and dst_lo <= after < dst_hi
                )
                if not relocated:
                    self._fail(
                        "values-bit-exact",
                        f"{var} in {thread.frames[i].function} changed "
                        f"{before!r} -> {after!r} without being a stack "
                        "pointer relocation",
                        thread,
                        {"var": var, "before": before, "after": after},
                    )
                if not any(sp <= after < cfa for sp, cfa in extents):
                    self._fail(
                        "pointers-inside-live-frames",
                        f"{var} in {thread.frames[i].function} relocated to "
                        f"{after:#x}, outside every live frame",
                        thread,
                        {"var": var, "after": after,
                         "extents": [(hex(a), hex(b)) for a, b in extents]},
                    )

    # ------------------------------------------------------ round trip

    def _check_roundtrip(self, thread, src: _StackSnapshot, site: int) -> None:
        """Transform back (B->A), assert bit-exact restoration, undo."""
        b_frames = list(thread.frames)
        b_regs = dict(thread.regs)
        b_half = thread.stack.half
        lo, hi = src.bounds  # the half the return trip will rewrite
        mem_snap = self.space.snapshot_range(lo, hi)
        try:
            try:
                StackTransformer.transform(self, thread, src.isa_name, site)
            except TransformError as exc:
                self._fail(
                    "roundtrip-transformable",
                    f"return transform to {src.isa_name} failed: {exc}",
                    thread,
                )
            back_live = self._live_state(thread, site)
            back_buffers = self._buffer_state(thread)
            for i, frame in enumerate(thread.frames):
                if frame.cfa != src.frames[i]["cfa"]:
                    self._fail(
                        "roundtrip-layout",
                        f"frame {frame.function} returned to CFA "
                        f"{frame.cfa:#x}, originally {src.frames[i]['cfa']:#x}",
                        thread,
                    )
            if [v for v in back_live] != [v for v in src.live]:
                self._fail(
                    "roundtrip-values-bit-exact",
                    "live slots/registers not restored bit-exactly by "
                    "the A->B->A round trip",
                    thread,
                    {"expected": src.live, "got": back_live},
                )
            if back_buffers != src.buffers:
                self._fail(
                    "roundtrip-buffers-bit-exact",
                    "stack buffers not restored bit-exactly by the "
                    "A->B->A round trip",
                    thread,
                    {"expected": src.buffers, "got": back_buffers},
                )
            for reg in (src.regfile.sp, src.regfile.fp):
                if reg in src.regs and thread.regs.get(reg) != src.regs[reg]:
                    self._fail(
                        "roundtrip-registers",
                        f"register {reg} came back as "
                        f"{thread.regs.get(reg)!r}, originally "
                        f"{src.regs[reg]!r}",
                        thread,
                    )
        finally:
            # Undo the speculative return trip: the caller must observe
            # exactly the state the real A->B transform produced.
            thread.frames = b_frames
            thread.regs = b_regs
            if thread.stack.half != b_half:
                thread.stack.switch_halves()
            self.space.restore_range(lo, hi, mem_snap)

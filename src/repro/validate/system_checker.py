"""Whole-system crash-consistency invariants (chaos-harness checks).

These functions audit a :class:`~repro.kernel.kernel.PopcornSystem`
*after* a run that may have included injected kernel crashes:

* :func:`check_thread_conservation` — the exactly-one-copy guarantee:
  every live thread is homed on exactly one *alive* kernel (never zero
  after a survivable crash, never two after a resumed hand-off), and
  finished threads are homed nowhere;
* :func:`check_directory_scrubbed` — no hDSM directory entry, backup
  record, or process-table route still names a fenced (dead) kernel.

Both raise :class:`~repro.validate.errors.InvariantViolation` with a
state dump on failure and return quietly otherwise.
"""

from typing import Dict, Iterable, List

from repro.kernel.process import ThreadState
from repro.validate.errors import InvariantViolation

CHECKER = "system"


def _fail(invariant: str, detail: str, state=None) -> None:
    raise InvariantViolation(CHECKER, invariant, detail, state or {})


def check_thread_conservation(system, processes: Iterable) -> None:
    """Every live thread has exactly one copy, on an alive kernel."""
    homes: Dict[int, List[str]] = {}
    for kernel in system.kernels.values():
        for tid in kernel.threads:
            homes.setdefault(tid, []).append(kernel.name)
    for process in processes:
        for thread in process.threads.values():
            hosted = homes.get(thread.tid, [])
            if thread.state is ThreadState.DONE:
                if hosted:
                    _fail(
                        "done-thread-homed-nowhere",
                        f"finished tid {thread.tid} still homed on "
                        f"{hosted} (a dead thread's copy survived)",
                        {"tid": thread.tid, "hosted": hosted},
                    )
                continue
            if len(hosted) != 1:
                _fail(
                    "exactly-one-copy",
                    f"live tid {thread.tid} homed on {len(hosted)} kernels "
                    f"{hosted} — a crash left "
                    + ("zero" if not hosted else "multiple")
                    + " live copies",
                    {"tid": thread.tid, "hosted": hosted,
                     "state": thread.state.value},
                )
            if hosted[0] != thread.machine_name:
                _fail(
                    "home-matches-thread",
                    f"live tid {thread.tid} believes it is on "
                    f"{thread.machine_name} but kernel {hosted[0]} hosts it",
                    {"tid": thread.tid, "hosted": hosted,
                     "machine_name": thread.machine_name},
                )
            if not system.kernels[hosted[0]].alive:
                _fail(
                    "live-copy-on-alive-kernel",
                    f"live tid {thread.tid} homed on dead kernel "
                    f"{hosted[0]} (crash recovery missed it)",
                    {"tid": thread.tid, "kernel": hosted[0]},
                )


def check_directory_scrubbed(system, processes: Iterable) -> None:
    """No surviving route (DSM, backup, proctable) names a dead kernel."""
    dead = set(system.messaging.fenced)
    if not dead:
        return
    for process in processes:
        dsm = process.dsm
        if dsm is not None:
            for kernel in dead:
                if dsm.references_kernel(kernel):
                    _fail(
                        "dsm-directory-scrubbed",
                        f"pid {process.pid}: hDSM directory still routes at "
                        f"dead kernel {kernel}",
                        {"pid": process.pid, "kernel": kernel,
                         "owner": dict(dsm._owner)},
                    )
            stale_backups = {
                page: holder
                for page, holder in dsm._backup_of.items()
                if holder in dead
            }
            if stale_backups:
                _fail(
                    "backups-scrubbed",
                    f"pid {process.pid}: backup copies still recorded on "
                    f"dead kernels: {stale_backups}",
                    {"pid": process.pid, "stale": stale_backups},
                )
        routes = system.services.proctable.threads_of(process.pid)
        for tid, machine in routes.items():
            thread = process.threads.get(tid)
            if thread is None or thread.state is ThreadState.DONE:
                continue
            if machine in dead:
                _fail(
                    "proctable-scrubbed",
                    f"pid {process.pid}: process table routes live tid "
                    f"{tid} at dead kernel {machine}",
                    {"pid": process.pid, "tid": tid, "machine": machine},
                )
            if machine != thread.machine_name:
                _fail(
                    "proctable-current",
                    f"pid {process.pid}: process table routes tid {tid} at "
                    f"{machine} but the thread runs on "
                    f"{thread.machine_name}",
                    {"pid": process.pid, "tid": tid, "machine": machine,
                     "actual": thread.machine_name},
                )

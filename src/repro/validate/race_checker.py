"""Race-soundness cross-validation: static RACE/SHR vs dynamic sharing.

The concurrency analyzer (:mod:`repro.analyze.races` /
:mod:`repro.analyze.sharing`) claims two things the simulator can check
empirically on every workload:

* **Coverage (soundness).**  Any page the MSI shadow model observes as
  *shared read-write* at run time — touched by at least two threads
  with at least one writer — must belong to a region the static passes
  flagged (``RACE0xx`` finding or ``SHR0xx`` prediction).  A shared
  page with no static finding is a missed race candidate: the analyzer
  over-suppressed and its "registry corpus is race-free" claim is
  unsound.

* **Hotness (rank correlation).**  The ``SHR`` predictions order
  regions by expected DSM pressure; the observed per-page coherence
  faults of the shadow model must rank-correlate with those scores.
  This keeps the sharing pass honest as a *placement* oracle, not just
  a boolean one.

The dynamic side is a :class:`SharingObserver` attached to the
execution engine.  It is notified only on DSM *miss* paths (the
``dsm.access``/``ensure_range`` calls behind the per-thread residency
caches), so attaching one changes neither timing nor results, and both
the exact and the fast engine drive it through the same bound methods —
``tests/test_race_soundness.py`` asserts the two report identical
shared-pair sets.

Run it standalone with ``tools/check_race_soundness.py`` (CI does, on
two workloads under ``REPRO_VALIDATE=1``).
"""

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.linker.layout import PAGE_SIZE, page_of

__all__ = [
    "SharingObserver",
    "SoundnessReport",
    "check_module",
    "check_workload",
    "spearman",
]


class SharingObserver:
    """Records which threads touch which DSM pages, and how.

    Attached via ``engine.sharing_observer``; the engine calls
    :meth:`note_access` / :meth:`note_range` on residency-cache misses
    only, so every (thread, page) combination is seen at least once per
    DSM epoch — exactly enough to reconstruct the shared-page set.
    """

    def __init__(self):
        self.readers: Dict[int, Set[int]] = {}   # page -> tids
        self.writers: Dict[int, Set[int]] = {}   # page -> tids
        self.page_cost: Counter = Counter()      # page -> DSM seconds
        self.events = 0
        self._seen_ranges: Set[Tuple[int, int, int]] = set()

    # ------------------------------------------------- engine callbacks

    def note_access(self, tid: int, page: int, write: bool, cost: float) -> None:
        self.events += 1
        (self.writers if write else self.readers).setdefault(page, set()).add(tid)
        if cost:
            self.page_cost[page] += cost

    def note_range(
        self, tid: int, base: int, span: int, cost: float, pages: int
    ) -> None:
        """One ``Work`` burst made ``[base, base+span)`` writable."""
        if span <= 0:
            return
        self.events += 1
        first, last = page_of(base), page_of(base + span - 1)
        if cost:
            # Attribute the bulk-pull cost evenly across the range.
            per_page = cost / (last - first + 1)
            for p in range(first, last + 1):
                self.page_cost[p] += per_page
        key = (tid, first, last)
        if key in self._seen_ranges:
            return
        self._seen_ranges.add(key)
        for p in range(first, last + 1):
            self.writers.setdefault(p, set()).add(tid)

    # ---------------------------------------------------------- queries

    def tids_of(self, page: int) -> Set[int]:
        return self.readers.get(page, set()) | self.writers.get(page, set())

    def shared_rw_pages(self) -> List[int]:
        """Pages touched by >= 2 threads with >= 1 writer."""
        return sorted(
            p
            for p in set(self.readers) | set(self.writers)
            if len(self.tids_of(p)) >= 2 and self.writers.get(p)
        )

    def shared_pairs(self) -> Set[Tuple[int, int, int]]:
        """Canonical ``(page, tid_a, tid_b)`` set over shared RW pages.

        This is the engine-independence contract: the fast engine must
        produce exactly this set for any workload the exact engine ran.
        """
        pairs: Set[Tuple[int, int, int]] = set()
        for page in self.shared_rw_pages():
            tids = sorted(self.tids_of(page))
            for i, a in enumerate(tids):
                for b in tids[i + 1:]:
                    pairs.add((page, a, b))
        return pairs


# ------------------------------------------------------- rank statistics


def _ranks(values: List[float]) -> List[float]:
    """Tie-averaged ranks (1-based), as Spearman requires."""
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    i = 0
    while i < len(order):
        j = i
        while j + 1 < len(order) and values[order[j + 1]] == values[order[i]]:
            j += 1
        avg = (i + j) / 2.0 + 1.0
        for k in range(i, j + 1):
            ranks[order[k]] = avg
        i = j + 1
    return ranks


def spearman(xs: List[float], ys: List[float]) -> Optional[float]:
    """Spearman's rho with tie-averaged ranks; None if undefined."""
    if len(xs) != len(ys) or len(xs) < 2:
        return None
    rx, ry = _ranks(list(xs)), _ranks(list(ys))
    n = len(rx)
    mx, my = sum(rx) / n, sum(ry) / n
    cov = sum((a - mx) * (b - my) for a, b in zip(rx, ry))
    vx = sum((a - mx) ** 2 for a in rx)
    vy = sum((b - my) ** 2 for b in ry)
    if vx == 0.0 or vy == 0.0:
        return None
    return cov / math.sqrt(vx * vy)


# ------------------------------------------------------------- reporting


@dataclass
class SoundnessReport:
    """Outcome of one static-vs-dynamic cross-validation run."""

    subject: str
    threads: int
    engine: str
    shared_rw_pages: int = 0
    uncovered: List[dict] = field(default_factory=list)
    rho: Optional[float] = None
    regions_compared: int = 0
    predictions: int = 0
    static_findings: Dict[str, int] = field(default_factory=dict)
    dynamic_events: int = 0
    shadow_faults: int = 0
    pairs: Set[Tuple[int, int, int]] = field(default_factory=set)

    def ok(self, min_rho: float = 0.0) -> bool:
        if self.uncovered:
            return False
        if self.rho is not None and self.rho < min_rho:
            return False
        return True

    def summary(self) -> str:
        rho = "n/a" if self.rho is None else f"{self.rho:+.2f}"
        state = "SOUND" if not self.uncovered else "UNSOUND"
        return (
            f"{self.subject} t{self.threads} [{self.engine}]: {state} — "
            f"{self.shared_rw_pages} shared rw pages, "
            f"{len(self.uncovered)} uncovered, rho={rho} over "
            f"{self.regions_compared} regions "
            f"({self.predictions} predictions, "
            f"{self.dynamic_events} dynamic events, "
            f"{self.shadow_faults} shadow faults)"
        )


# -------------------------------------------------------- region mapping


def _region_page_map(binary, process, predictions) -> Dict[str, Tuple[int, int]]:
    """Static region name -> (first_page, last_page) in the common layout.

    Globals come straight from the linked addresses; ``heap:<global>``
    regions are resolved by reading the published pointer global from
    process memory and matching it to a live heap allocation.
    """
    module = binary.module
    out: Dict[str, Tuple[int, int]] = {}
    for name, gv in module.globals.items():
        if gv.thread_local:
            continue
        addr = binary.global_addresses.get(name)
        if addr is None:
            continue
        out[f"global:{name}"] = (page_of(addr), page_of(addr + gv.size - 1))
    allocations = process.heap.allocations()
    for region in predictions:
        kind, _, rest = region.partition(":")
        if kind != "heap":
            continue
        addr = binary.global_addresses.get(rest)
        if addr is None:
            continue
        ptr = int(process.space.read(addr))
        for start, size in allocations.items():
            if start <= ptr < start + size:
                out[region] = (page_of(start), page_of(start + size - 1))
                break
    return out


def _page_kind(page: int, binary) -> str:
    addr = page * PAGE_SIZE
    vm = binary.vm_map
    if vm.is_stack_address(addr):
        return "stack"
    if vm.heap_base <= addr < vm.heap_limit:
        return "heap"
    return "other"


# ------------------------------------------------------------ the check


def check_module(
    module,
    threads: int = 0,
    engine: str = "exact",
    start: str = "x86-server",
    spread: bool = True,
    subject: str = "",
) -> SoundnessReport:
    """Run ``module``, observe dynamic sharing, check the static claims.

    ``spread=True`` migrates every odd-tid thread to the other kernel
    at its first migration point, so shared pages generate genuine MSI
    coherence traffic instead of staying node-local.  ``threads`` is
    informational (recorded in the report).
    """
    from repro.analyze import predict_sharing, run_lint
    from repro.compiler import Toolchain
    from repro.kernel import boot_testbed
    from repro.runtime.execution import EngineHooks, make_engine

    binary = Toolchain().build(module)
    system = boot_testbed()
    process = system.exec_process(binary, start)

    observer = SharingObserver()
    hooks = EngineHooks()
    if spread and len(system.machine_order) > 1:
        moved: Set[int] = set()

        def on_point(thread, fn, point_id, instrs):
            if thread.tid % 2 == 1 and thread.tid not in moved:
                moved.add(thread.tid)
                target = next(
                    m
                    for m in system.machine_order
                    if m != thread.machine_name
                )
                system.request_thread_migration(thread, target)

        hooks.on_migration_point = on_point
    eng = make_engine(system, process, hooks, engine=engine)
    eng.sharing_observer = observer
    eng.run()
    if process.exit_code != 0:
        raise RuntimeError(
            f"workload exited {process.exit_code}; the soundness check "
            "needs a complete, correct run"
        )

    # Static side: findings + sharing predictions on the same module.
    lint = run_lint(module, passes=["races", "locks", "sharing"])
    predictions = predict_sharing(module)
    covering = set(predictions)
    for diag in lint.diagnostics:
        if diag.code.startswith("RACE") and diag.symbol:
            covering.add(diag.symbol)

    region_pages = _region_page_map(binary, process, predictions)

    report = SoundnessReport(
        subject=subject or module.name,
        threads=threads,
        engine=engine,
        predictions=len(predictions),
        static_findings=lint.counts_by_code(),
        dynamic_events=observer.events,
        pairs=observer.shared_pairs(),
    )

    # Coverage: every dynamically shared RW page needs a static finding.
    shared = observer.shared_rw_pages()
    report.shared_rw_pages = len(shared)
    covering_stack = any(r.startswith("stack:") for r in covering)
    covering_heap = any(r.startswith("heap:") for r in covering)
    for page in shared:
        regions = [
            r for r, (a, b) in region_pages.items() if a <= page <= b
        ]
        if any(r in covering for r in regions):
            continue
        kind = _page_kind(page, binary)
        # Pages we cannot attribute exactly (freed allocations, stack
        # frames) fall back to kind-level coverage: some region of that
        # kind must still carry a finding.
        if kind == "stack" and covering_stack:
            continue
        if kind == "heap" and not regions and covering_heap:
            continue
        report.uncovered.append(
            {"page": page, "kind": kind, "regions": regions,
             "tids": sorted(observer.tids_of(page))}
        )

    # Hotness: predicted region scores vs observed coherence traffic.
    shadow = getattr(process.dsm, "shadow", None)
    if shadow is not None:
        traffic: Counter = Counter(shadow.page_faults)
        report.shadow_faults = sum(traffic.values())
    else:
        traffic = observer.page_cost
    observed: Dict[str, float] = {}
    for region in predictions:
        span = region_pages.get(region)
        if span is None:
            continue
        observed[region] = 0.0
    for page, amount in traffic.items():
        for region, (a, b) in region_pages.items():
            if region in observed and a <= page <= b:
                observed[region] += amount
    names = sorted(observed)
    report.regions_compared = len(names)
    if len(names) >= 3:
        report.rho = spearman(
            [predictions[r].score for r in names],
            [observed[r] for r in names],
        )
    return report


def check_workload(
    name: str,
    cls: str = "A",
    threads: int = 4,
    scale: float = 1.0,
    engine: str = "exact",
    start: str = "x86-server",
) -> SoundnessReport:
    """Build registry workload ``name`` and cross-validate it."""
    from repro.workloads import build_workload

    module = build_workload(name, cls=cls, threads=threads, scale=scale)
    return check_module(
        module,
        threads=threads,
        engine=engine,
        start=start,
        subject=f"{name}.{cls}",
    )

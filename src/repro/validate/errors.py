"""Structured invariant-violation errors.

Every checker in :mod:`repro.validate` raises
:class:`InvariantViolation` when a runtime invariant breaks.  The
exception carries the checker name, the invariant identifier, and a
dump of the offending state, so a violation deep inside a workload run
pinpoints the broken mechanism instead of surfacing as a wrong number
three layers later.
"""

import pprint
from typing import Any, Dict, Optional

_STATE_DUMP_LIMIT = 2400


class InvariantViolation(Exception):
    """A runtime invariant of the simulator was violated.

    Attributes:
        checker:   which checker fired ("dsm", "stack", "cluster").
        invariant: short identifier of the broken invariant.
        detail:    human-readable description of the mismatch.
        state:     dump of the offending state at violation time.
    """

    def __init__(
        self,
        checker: str,
        invariant: str,
        detail: str = "",
        state: Optional[Dict[str, Any]] = None,
    ):
        self.checker = checker
        self.invariant = invariant
        self.detail = detail
        self.state = dict(state or {})
        message = f"[{checker}] invariant {invariant!r} violated"
        if detail:
            message += f": {detail}"
        if self.state:
            dump = pprint.pformat(self.state, width=78, sort_dicts=True)
            if len(dump) > _STATE_DUMP_LIMIT:
                dump = dump[:_STATE_DUMP_LIMIT] + "\n... (state dump truncated)"
            message += "\n--- offending state ---\n" + dump
        super().__init__(message)

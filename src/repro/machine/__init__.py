"""Hardware models of the paper's evaluation platform.

Two servers — an APM X-Gene 1 class ARM board (8 cores @ 2.4 GHz) and
an Intel Xeon E5-1650 v2 class x86 server (6 cores @ 3.5 GHz,
hyper-threading disabled as in the paper) — joined by a Dolphin PXH810
PCIe interconnect (64 Gb/s).  Power is observable through RAPL-like
on-package sensors and an external shunt-resistor model, both sampled
at 100 Hz by :mod:`repro.telemetry`.
"""

from repro.machine.cpu import CpuModel
from repro.machine.cache import CacheModel
from repro.machine.memory import MemoryModel
from repro.machine.power import PowerModel, PowerSensors
from repro.machine.machine import Machine, make_xgene1, make_xeon_e5_1650v2
from repro.machine.interconnect import Interconnect, make_dolphin_pxh810
from repro.machine.mcpat import project_finfet

__all__ = [
    "CpuModel",
    "CacheModel",
    "MemoryModel",
    "PowerModel",
    "PowerSensors",
    "Machine",
    "make_xgene1",
    "make_xeon_e5_1650v2",
    "Interconnect",
    "make_dolphin_pxh810",
    "project_finfet",
]

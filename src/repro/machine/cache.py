"""First-level cache model (Table 1).

We do not simulate cache lines; the observable the paper reports is the
*ratio* of L1 instruction misses between the aligned (padded) and
unaligned builds, together with the execution-time ratio that tracks
it.  A compact working-set model captures both effects:

* the hot code footprint grows by the alignment padding, raising the
  L1I miss ratio slightly;
* changed function placement perturbs set conflicts either way, which
  is why Table 1 shows both small speedups and small slowdowns — we
  model that with a deterministic per-configuration perturbation.
"""

import hashlib
from dataclasses import dataclass


@dataclass(frozen=True)
class CacheModel:
    """One level of instruction/data cache."""

    name: str
    size_bytes: int
    line_bytes: int = 64
    base_miss_ratio: float = 0.004
    miss_penalty_cycles: float = 30.0

    def miss_ratio(self, footprint_bytes: int, hot_fraction: float = 0.35) -> float:
        """Steady-state miss ratio for a given code footprint.

        Below capacity the miss ratio is the compulsory floor; above it
        the ratio grows with the ratio of hot footprint to capacity —
        the standard working-set knee.
        """
        hot = footprint_bytes * hot_fraction
        if hot <= self.size_bytes:
            return self.base_miss_ratio
        overflow = (hot - self.size_bytes) / self.size_bytes
        return self.base_miss_ratio * (1.0 + 4.0 * overflow)

    def placement_perturbation(self, key: str, spread: float = 0.08) -> float:
        """Deterministic conflict-miss perturbation in [-spread, +spread].

        Moving symbols changes which functions collide in the same
        cache sets; the direction is effectively arbitrary but stable
        for a given (benchmark, class, ISA) configuration, which is the
        behaviour Table 1 exhibits.
        """
        digest = hashlib.sha256(key.encode()).digest()
        unit = int.from_bytes(digest[:8], "big") / float(1 << 64)
        return (unit * 2.0 - 1.0) * spread


def make_l1i() -> CacheModel:
    # Both evaluation machines have 32 KiB L1I caches.
    return CacheModel(name="L1I", size_bytes=32 * 1024)


def make_l1d() -> CacheModel:
    return CacheModel(name="L1D", size_bytes=32 * 1024, base_miss_ratio=0.02)

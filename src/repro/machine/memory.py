"""Main-memory model: capacity plus stream bandwidth/latency.

Used for charging the time of bulk page transfers (hDSM) and of
memory-class ``work`` bursts; per-access latency is already folded into
the LOAD/STORE CPIs of the CPU model.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class MemoryModel:
    name: str
    capacity_bytes: int
    bandwidth_bytes_per_s: float
    latency_s: float = 90e-9

    def copy_time(self, nbytes: int) -> float:
        """Seconds to stream ``nbytes`` through memory."""
        return self.latency_s + nbytes / self.bandwidth_bytes_per_s


def make_xeon_memory() -> MemoryModel:
    return MemoryModel(
        name="DDR3-1866 x4 (Xeon)",
        capacity_bytes=16 * 1024**3,
        bandwidth_bytes_per_s=40e9,
        latency_s=80e-9,
    )


def make_xgene_memory() -> MemoryModel:
    return MemoryModel(
        name="DDR3-1600 x4 (X-Gene)",
        capacity_bytes=32 * 1024**3,
        bandwidth_bytes_per_s=25e9,
        latency_s=110e-9,
    )

"""A server: CPU + memory + caches + power, with live load tracking.

The kernel (repro.kernel) marks threads running/blocked on a machine;
the power sensors and the Figure 11 load traces read the resulting
core occupancy.
"""

from dataclasses import dataclass, field
from typing import Optional

from repro.isa import Isa, get_isa
from repro.machine.cache import CacheModel, make_l1d, make_l1i
from repro.machine.cpu import CpuModel, make_xeon_cpu, make_xgene_cpu
from repro.machine.memory import MemoryModel, make_xeon_memory, make_xgene_memory
from repro.machine.power import (
    PowerModel,
    PowerSensors,
    make_xeon_power,
    make_xgene_power,
)
from repro.sim.clock import Clock


class Machine:
    """One physical server in the testbed."""

    def __init__(
        self,
        name: str,
        isa: Isa,
        cpu: CpuModel,
        memory: MemoryModel,
        power: PowerModel,
        clock: Optional[Clock] = None,
    ):
        self.name = name
        self.isa = isa
        self.cpu = cpu
        self.memory = memory
        self.power = power
        self.l1i: CacheModel = make_l1i()
        self.l1d: CacheModel = make_l1d()
        self.clock = clock if clock is not None else Clock()
        # Live load: number of runnable/running threads placed here.
        self._running_threads = 0
        self._io_busy_until = 0.0
        # Lifetime counters.
        self.instructions_retired = 0.0
        self.busy_core_seconds = 0.0

    # ------------------------------------------------------------- load

    @property
    def running_threads(self) -> int:
        return self._running_threads

    def thread_started(self) -> None:
        self._running_threads += 1

    def thread_stopped(self) -> None:
        if self._running_threads <= 0:
            raise RuntimeError(f"{self.name}: thread count underflow")
        self._running_threads -= 1

    def active_cores(self) -> float:
        return float(min(self._running_threads, self.cpu.cores))

    def utilization(self) -> float:
        """Fraction of cores busy, 0..1 (Figure 11's 'Load %' / 100)."""
        return self.active_cores() / self.cpu.cores

    # --------------------------------------------------------------- io

    def note_io_activity(self, duration_s: float) -> None:
        """Mark the interconnect/DSM path busy for ``duration_s``."""
        end = self.clock.now + duration_s
        self._io_busy_until = max(self._io_busy_until, end)

    def io_active(self) -> bool:
        return self.clock.now < self._io_busy_until

    # ------------------------------------------------------- accounting

    def charge_execution(self, instret: float, seconds: float) -> None:
        """Commit one engine slice's retired work in a single batch.

        Both the exact interpreter and the fast-forward engine charge
        lifetime counters only here, once per slice, so the two engines
        update machine state at the same commit points with the same
        floating-point additions.
        """
        self.instructions_retired += instret
        self.busy_core_seconds += seconds

    # ------------------------------------------------------------ power

    @property
    def sensors(self) -> PowerSensors:
        return PowerSensors(self.power, self.active_cores, self.io_active)

    def cpu_power(self) -> float:
        return self.sensors.cpu_power()

    def system_power(self) -> float:
        return self.sensors.system_power()

    # ------------------------------------------------------------ misc

    def __repr__(self) -> str:
        return f"Machine({self.name}, {self.isa.name}, {self.cpu.cores} cores)"


def make_xgene1(name: str = "arm-server", clock: Optional[Clock] = None) -> Machine:
    """The ARM development board of the evaluation (Section 6)."""
    return Machine(
        name=name,
        isa=get_isa("arm64"),
        cpu=make_xgene_cpu(),
        memory=make_xgene_memory(),
        power=make_xgene_power(),
        clock=clock,
    )


def make_xeon_e5_1650v2(
    name: str = "x86-server", clock: Optional[Clock] = None
) -> Machine:
    """The x86 server of the evaluation (Section 6)."""
    return Machine(
        name=name,
        isa=get_isa("x86_64"),
        cpu=make_xeon_cpu(),
        memory=make_xeon_memory(),
        power=make_xeon_power(),
        clock=clock,
    )

"""The inter-server interconnect (Dolphin ICS PXH810).

A point-to-point PCIe non-transparent bridge: 64 Gb/s peak, ~1 us
one-way message latency.  The kernels' messaging layer and the hDSM
page-transfer path both charge time through this model.
"""

from dataclasses import dataclass


@dataclass
class Interconnect:
    name: str
    bandwidth_bytes_per_s: float
    latency_s: float
    per_message_cpu_s: float = 2e-6  # marshalling + doorbell cost

    # --- accounting -------------------------------------------------
    messages_sent: int = 0
    bytes_sent: int = 0

    def transfer_time(self, nbytes: int) -> float:
        """One-way time for a message of ``nbytes``."""
        return self.latency_s + nbytes / self.bandwidth_bytes_per_s

    def round_trip_time(self, request_bytes: int, reply_bytes: int) -> float:
        return self.transfer_time(request_bytes) + self.transfer_time(reply_bytes)

    def record(self, nbytes: int) -> None:
        self.messages_sent += 1
        self.bytes_sent += nbytes

    def reset_stats(self) -> None:
        self.messages_sent = 0
        self.bytes_sent = 0


def make_dolphin_pxh810() -> Interconnect:
    return Interconnect(
        name="Dolphin ICS PXH810",
        bandwidth_bytes_per_s=64e9 / 8,  # 64 Gb/s
        latency_s=1.0e-6,
    )


def make_10gbe() -> Interconnect:
    """A commodity alternative ("our prototype supports any other NIC")."""
    return Interconnect(
        name="10GbE",
        bandwidth_bytes_per_s=10e9 / 8,
        latency_s=20e-6,
        per_message_cpu_s=8e-6,
    )

"""CPU timing model.

Time is charged per machine instruction by :class:`InstrClass` CPI.
The numbers are calibrated so the per-core native performance ratio
between the Xeon and the X-Gene matches the published characterisation
studies the paper cites ([8], [38]): roughly 3-4x in favour of x86 on
compute-bound code, less on memory-bound code.
"""

from dataclasses import dataclass, field
from typing import Dict

from repro.isa.isa import InstrClass


@dataclass(frozen=True)
class CpuModel:
    """Per-core timing for one microarchitecture."""

    name: str
    isa_name: str
    cores: int
    freq_hz: float
    cpi: Dict[InstrClass, float] = field(default_factory=dict)
    syscall_cycles: float = 1500.0

    def cycles_for(self, counts: Dict[InstrClass, float]) -> float:
        """Cycles to retire ``counts`` machine instructions."""
        total = 0.0
        for cls, n in counts.items():
            total += n * self.cpi.get(cls, 1.0)
        return total

    def seconds_for(self, counts: Dict[InstrClass, float]) -> float:
        return self.cycles_for(counts) / self.freq_hz

    def seconds_for_cycles(self, cycles: float) -> float:
        return cycles / self.freq_hz

    def instructions_per_second(self, cls: InstrClass = InstrClass.INT_ALU) -> float:
        return self.freq_hz / self.cpi.get(cls, 1.0)


# Intel Xeon E5-1650 v2 (Ivy Bridge-EP): wide out-of-order core.
XEON_CPI = {
    InstrClass.INT_ALU: 0.40,
    InstrClass.FP_ALU: 0.55,
    InstrClass.LOAD: 0.55,
    InstrClass.STORE: 0.60,
    InstrClass.BRANCH: 0.50,
    InstrClass.CALL: 1.20,
    InstrClass.RET: 1.20,
    InstrClass.MOV: 0.35,
    InstrClass.ATOMIC: 12.0,
    InstrClass.SYSCALL: 150.0,
    InstrClass.NOP: 0.25,
}

# APM X-Gene 1 (first-generation custom ARMv8): a modest out-of-order
# core that the IISWC'15 / E2SC'15 characterisations the paper cites
# ([8], [38]) place at roughly 4-6x slower than an Ivy Bridge Xeon core
# on server workloads once clock difference is included.
XGENE_CPI = {
    InstrClass.INT_ALU: 1.70,
    InstrClass.FP_ALU: 2.70,
    InstrClass.LOAD: 2.20,
    InstrClass.STORE: 2.20,
    InstrClass.BRANCH: 1.85,
    InstrClass.CALL: 3.40,
    InstrClass.RET: 3.40,
    InstrClass.MOV: 1.35,
    InstrClass.ATOMIC: 40.0,
    InstrClass.SYSCALL: 650.0,
    InstrClass.NOP: 0.85,
}


def make_xeon_cpu() -> CpuModel:
    return CpuModel(
        name="Xeon E5-1650 v2",
        isa_name="x86_64",
        cores=6,  # hyper-threading disabled in the evaluation
        freq_hz=3.5e9,
        cpi=dict(XEON_CPI),
        syscall_cycles=1200.0,
    )


def make_xgene_cpu() -> CpuModel:
    return CpuModel(
        name="APM X-Gene 1",
        isa_name="arm64",
        cores=8,
        freq_hz=2.4e9,
        cpi=dict(XGENE_CPI),
        syscall_cycles=2000.0,
    )

"""McPAT-style technology projection (Section 7, "Job Arrivals and
Scheduling").

The X-Gene 1 is a first-generation 40 nm part with "sub-optimal power
consumption"; the paper uses McPAT to project that "on FinFET
technology, future ARM processors will consume 1/10th of the measured
power while running at the same clock frequency", and runs the
scheduling studies against the projected figure.  We reproduce exactly
that projection as a power-model transform.
"""

from repro.machine.power import PowerModel

FINFET_FACTOR = 0.1  # 1/10th of measured power at the same clock


def project_finfet(model: PowerModel, factor: float = FINFET_FACTOR) -> PowerModel:
    """Project a measured power model onto FinFET technology.

    Scales the SoC terms (idle, per-core, uncore, I/O) by ``factor``
    and leaves the platform (board-level) power untouched, then returns
    a new model; the input is not modified.
    """
    if not 0 < factor <= 1:
        raise ValueError(f"implausible projection factor {factor}")
    return model.scaled(factor, name_suffix=" (FinFET projection)")

"""Power models and sensors (Section 6, "Power measurements").

Two observation points per machine, as in the paper:

* ``cpu_power`` — the on-package sensor (Intel RAPL on the Xeon, the
  I2C power-regulator chips on the X-Gene board);
* ``system_power`` — the external shunt-resistor / DAQ measurement at
  the ATX lines, which the paper shows to be proportional to the
  internal reading.

Instantaneous power is a function of the machine's current load
(active cores) plus any I/O activity (the hDSM transfer spike visible
in Figure 11).
"""

from dataclasses import dataclass


@dataclass
class PowerModel:
    """Parameters of one machine's power behaviour."""

    name: str
    cpu_idle_w: float
    core_active_w: float
    uncore_active_w: float
    platform_w: float  # fans, disks, NIC, VRM losses — external only
    io_active_w: float  # interconnect/DSM activity adder

    def cpu_power(self, active_cores: float, io_active: bool = False) -> float:
        """On-package sensor reading for a given number of busy cores."""
        power = self.cpu_idle_w + active_cores * self.core_active_w
        if active_cores > 0:
            power += self.uncore_active_w
        if io_active:
            power += self.io_active_w
        return power

    def system_power(self, active_cores: float, io_active: bool = False) -> float:
        """External (wall-side) reading: package power plus platform."""
        return self.cpu_power(active_cores, io_active) + self.platform_w

    def scaled(self, factor: float, name_suffix: str = "") -> "PowerModel":
        """A copy with all dynamic/idle CPU terms scaled by ``factor``.

        Used by the McPAT FinFET projection (see repro.machine.mcpat).
        The platform term is external to the SoC and is not scaled.
        """
        return PowerModel(
            name=self.name + name_suffix,
            cpu_idle_w=self.cpu_idle_w * factor,
            core_active_w=self.core_active_w * factor,
            uncore_active_w=self.uncore_active_w * factor,
            platform_w=self.platform_w,
            io_active_w=self.io_active_w * factor,
        )


class PowerSensors:
    """Live sensor view bound to a machine's load-tracking callbacks."""

    def __init__(self, model: PowerModel, active_cores_fn, io_active_fn):
        self.model = model
        self._active_cores = active_cores_fn
        self._io_active = io_active_fn

    def cpu_power(self) -> float:
        return self.model.cpu_power(self._active_cores(), self._io_active())

    def system_power(self) -> float:
        return self.model.system_power(self._active_cores(), self._io_active())


def make_xeon_power() -> PowerModel:
    # Fig. 11 (right column): x86 system power swings ~55 W idle to
    # ~120 W busy; RAPL package idle on Ivy Bridge-EP is ~30 W.
    return PowerModel(
        name="Xeon E5-1650 v2",
        cpu_idle_w=30.0,
        core_active_w=10.0,
        uncore_active_w=6.0,
        platform_w=28.0,
        io_active_w=8.0,
    )


def make_xgene_power() -> PowerModel:
    # Fig. 11 (left column): the first-generation X-Gene board is not
    # energy proportional — high idle, modest dynamic range (~45-70 W
    # system).
    return PowerModel(
        name="APM X-Gene 1",
        cpu_idle_w=22.0,
        core_active_w=3.0,
        uncore_active_w=4.0,
        platform_w=22.0,
        io_active_w=6.0,
    )

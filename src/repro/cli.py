"""Command-line interface.

Usage (also available as ``python -m repro``)::

    python -m repro list
    python -m repro run is --cls A --threads 4 --migrate-at 3
    python -m repro trace is --out trace.json --critical-path
    python -m repro layout cg --cls A
    python -m repro gaps ft --cls A
    python -m repro lint --all --format json
    python -m repro schedule --pattern periodic --sets 5
    python -m repro serve redis --traffic diurnal --policy latency-aware
"""

import argparse
import sys
from typing import List, Optional

from repro.analysis import Table, format_series
from repro.compiler import Toolchain
from repro.compiler.migration_points import DEFAULT_TARGET_GAP


def _add_workload_args(parser, with_threads=True):
    parser.add_argument("workload", help="benchmark name (see `repro list`)")
    parser.add_argument("--cls", default="A", choices=("A", "B", "C"),
                        help="NPB problem class")
    if with_threads:
        parser.add_argument("--threads", type=int, default=2)
    parser.add_argument("--scale", type=float, default=0.01,
                        help="instruction-budget scale (1.0 = full size)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Heterogeneous-ISA datacenter reproduction toolkit",
    )
    parser.add_argument(
        "--validate", action="store_true",
        help="enable runtime invariant checking (DSM coherence, stack "
        "transformation, cluster conservation); equivalent to "
        "REPRO_VALIDATE=1",
    )
    parser.add_argument(
        "--validate-roundtrip", action="store_true",
        help="with --validate: also check that every cross-ISA stack "
        "transform round-trips bit-exactly (A->B->A)",
    )
    parser.add_argument(
        "--lint", action="store_true",
        help="run the migration-safety static analyzer over every binary "
        "built by this command and fail on error-severity diagnostics",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available workloads")

    run = sub.add_parser("run", help="run a workload on the testbed")
    _add_workload_args(run)
    run.add_argument("--start", default="x86", choices=("x86", "arm"),
                     help="machine the process starts on")
    run.add_argument("--migrate-at", type=int, default=None, metavar="N",
                     help="migrate the whole process at the Nth migration point")
    run.add_argument("--engine", default=None, choices=("exact", "fast"),
                     help="execution engine: 'exact' steps every "
                     "instruction, 'fast' fast-forwards compiled regions "
                     "with bit-identical results (default: REPRO_ENGINE "
                     "or 'exact')")

    trace = sub.add_parser(
        "trace", help="run a workload with span tracing on and export "
        "the trace (see docs/observability.md)")
    _add_workload_args(trace)
    trace.add_argument("--start", default="x86", choices=("x86", "arm"),
                       help="machine the process starts on")
    trace.add_argument("--migrate-at", type=int, default=2, metavar="N",
                       help="migrate the whole process at the Nth migration "
                       "point (default: 2, the Fig. 11 scenario)")
    trace.add_argument("--out", default="trace.json", metavar="PATH",
                       help="trace output file (default: trace.json)")
    trace.add_argument("--format", default="chrome",
                       choices=("chrome", "jsonl"),
                       help="chrome = Perfetto-loadable trace-event JSON; "
                       "jsonl = one span object per line")
    trace.add_argument("--critical-path", action="store_true",
                       help="print the per-migration transform / hand-off / "
                       "DSM-tail latency decomposition")

    layout = sub.add_parser("layout", help="show the common multi-ISA layout")
    _add_workload_args(layout, with_threads=False)
    layout.add_argument("--script", action="store_true",
                        help="print the full per-ISA linker script")

    gaps = sub.add_parser("gaps", help="migration-point gap histograms (pre/post)")
    _add_workload_args(gaps, with_threads=False)

    lint = sub.add_parser(
        "lint", help="migration-safety static analysis of multi-ISA binaries")
    lint.add_argument("workload", nargs="?", default=None,
                      help="benchmark name, or use --all")
    lint.add_argument("--all", action="store_true",
                      help="lint every registered workload")
    lint.add_argument("--cls", default="A", choices=("A", "B", "C"))
    lint.add_argument("--threads", type=int, default=2)
    lint.add_argument("--scale", type=float, default=0.01)
    lint.add_argument("--format", default="text", choices=("text", "json"))
    lint.add_argument("--verbose", action="store_true",
                      help="include info-severity notes in text output")
    lint.add_argument("--pass", dest="passes", action="append", default=None,
                      metavar="NAME",
                      help="run only the named pass (repeatable); see "
                      "docs/lint.md")
    lint.add_argument("--baseline", default=None, metavar="PATH",
                      help="suppress diagnostics fingerprinted in this "
                      "baseline file")
    lint.add_argument("--write-baseline", default=None, metavar="PATH",
                      help="write the surviving error fingerprints to a "
                      "baseline file and exit 0")

    dump = sub.add_parser("dump", help="print a workload's IR in text form")
    _add_workload_args(dump, with_threads=True)
    dump.add_argument("--optimize", action="store_true",
                      help="run the middle-end passes before printing")

    sched = sub.add_parser("schedule", help="scheduling/energy study")
    sched.add_argument("--pattern", default="sustained",
                       choices=("sustained", "periodic"))
    sched.add_argument("--sets", type=int, default=3)
    sched.add_argument("--jobs", type=int, default=40)
    sched.add_argument("--seed", type=int, default=1200)

    faults = sub.add_parser(
        "faults", help="fault injection: crash a node, compare recovery")
    faults.add_argument("--pattern", default="sustained",
                        choices=("sustained", "periodic"))
    faults.add_argument("--jobs", type=int, default=24)
    faults.add_argument("--seed", type=int, default=1200)
    faults.add_argument("--crash", default="x86", choices=("x86", "arm"),
                        help="which node dies")
    faults.add_argument("--crash-at", type=float, default=None, metavar="T",
                        help="crash time in seconds (default: 40%% of the "
                        "fault-free makespan)")
    faults.add_argument("--repair-after", type=float, default=None,
                        metavar="T", help="repair delay in seconds "
                        "(default: 30%% of the fault-free makespan)")
    faults.add_argument("--permanent", action="store_true",
                        help="the node never comes back")
    faults.add_argument("--checkpoint-interval", type=float, default=60.0)
    faults.add_argument("--trace", action="store_true",
                        help="print the fault timelines")
    faults.add_argument("--detector", action="store_true",
                        help="detect crashes with a heartbeat/lease "
                        "failure detector (measured MTTD, false "
                        "suspicions, fencing) and run evacuations as "
                        "two-phase hand-offs instead of omniscient "
                        "instant recovery")
    faults.add_argument("--heartbeat", type=float, default=0.5, metavar="S",
                        help="detector heartbeat period in seconds")
    faults.add_argument("--lease", type=float, default=1.5, metavar="S",
                        help="suspicion-to-confirm lease in seconds")

    serve = sub.add_parser(
        "serve", help="open-loop serving: run a KV workload under a "
        "traffic shape with latency-aware migration (see docs/serving.md)")
    serve.add_argument("workload", help="benchmark name (see `repro list`)")
    serve.add_argument("--cls", default="A", choices=("A", "B", "C"),
                       help="NPB problem class (sets the working set the "
                       "hand-off must move)")
    serve.add_argument("--traffic", default="steady",
                       choices=("steady", "diurnal", "flash-crowd"),
                       help="arrival-trace shape (see docs/serving.md)")
    serve.add_argument("--policy", default="latency-aware",
                       choices=("static-x86", "static-arm",
                                "queue-reactive", "latency-aware"),
                       help="serving policy deciding where the service "
                       "lives and when it migrates")
    serve.add_argument("--seed", type=int, default=7,
                       help="trace seed (same seed = bit-identical trace)")
    serve.add_argument("--requests", type=int, default=8000,
                       help="total requests in the trace (conserved by "
                       "every shape)")
    serve.add_argument("--horizon", type=float, default=20.0, metavar="S",
                       help="trace horizon in simulated seconds")
    serve.add_argument("--slo-ms", type=float, default=None, metavar="MS",
                       help="end-to-end latency SLO in milliseconds "
                       "(default: 10)")
    serve.add_argument("--out", default=None, metavar="PATH",
                       help="also export the span trace (Perfetto-loadable "
                       "trace-event JSON)")
    serve.add_argument("--faults", action="store_true",
                       help="inject a node crash mid-run (shape it with "
                       "--crash/--crash-at/--repair-after/--permanent); "
                       "the service fails over to the surviving machine")
    serve.add_argument("--crash", default="arm", choices=("x86", "arm"),
                       help="which node dies (default: arm — the "
                       "latency-aware policy's home)")
    serve.add_argument("--crash-at", type=float, default=None, metavar="T",
                       help="crash time in seconds (default: 40%% of the "
                       "trace horizon)")
    serve.add_argument("--repair-after", type=float, default=None,
                       metavar="T", help="repair delay in seconds "
                       "(default: 30%% of the trace horizon)")
    serve.add_argument("--permanent", action="store_true",
                       help="the crashed node never comes back")
    serve.add_argument("--detector", action="store_true",
                       help="detect the crash with the heartbeat/lease "
                       "failure detector (measured MTTD, false "
                       "suspicions/confirms in the report) instead of "
                       "omniscient instant failover")
    serve.add_argument("--heartbeat", type=float, default=0.5, metavar="S",
                       help="detector heartbeat period in seconds")
    serve.add_argument("--lease", type=float, default=1.5, metavar="S",
                       help="suspicion-to-confirm lease in seconds")
    serve.add_argument("--resilient", action="store_true",
                       help="attach the resilience layer: request "
                       "deadlines, crash replays under a retry budget, "
                       "tail-latency hedging, circuit breakers, and "
                       "priority-class load shedding (docs/serving.md)")

    fleet = sub.add_parser(
        "fleet", help="warehouse-scale fleet simulation: migrate a "
        "service population across the ISA boundary in waves "
        "(see docs/fleet.md)")
    fleet.add_argument("--x86-nodes", type=int, default=8, metavar="N",
                       help="x86-64 node count")
    fleet.add_argument("--arm-nodes", type=int, default=8, metavar="N",
                       help="arm64 node count")
    fleet.add_argument("--slots", type=int, default=4, metavar="N",
                       help="service slots per node")
    fleet.add_argument("--services", type=int, default=24, metavar="N",
                       help="size of the migrating service population")
    fleet.add_argument("--jobs", type=int, default=2000, metavar="N",
                       help="total jobs in the arrival trace")
    fleet.add_argument("--traffic", default="steady",
                       choices=("steady", "diurnal", "flash-crowd"),
                       help="arrival-trace shape (see docs/serving.md)")
    fleet.add_argument("--horizon", type=float, default=900.0, metavar="S",
                       help="trace horizon in simulated seconds")
    fleet.add_argument("--seed", type=int, default=42,
                       help="run seed (same seed = bit-identical result)")
    fleet.add_argument("--canary", type=float, default=0.05, metavar="F",
                       help="first-wave (canary) fraction of services")
    fleet.add_argument("--ramp", default="0.25,0.5,1.0", metavar="F,F,...",
                       help="cumulative migrated fractions per wave")
    fleet.add_argument("--wave-interval", type=float, default=120.0,
                       metavar="S", help="seconds between wave slots")
    fleet.add_argument("--bake", type=float, default=60.0, metavar="S",
                       help="warm-up before the canary (sets the SLO "
                       "baseline the regression gate compares against)")
    fleet.add_argument("--regression-threshold", type=float, default=0.05,
                       metavar="F", help="pause waves when SLO attainment "
                       "drops this far below the baked baseline")
    fleet.add_argument("--slo-factor", type=float, default=8.0, metavar="F",
                       help="latency SLO as a multiple of each service's "
                       "source-ISA duration")
    fleet.add_argument("--direction", default="x86-to-arm",
                       choices=("x86-to-arm", "arm-to-x86"),
                       help="which way the wave migrates")
    fleet.add_argument("--crash", type=int, default=None, metavar="IDX",
                       help="crash fleet node IDX mid-run (evacuate-live "
                       "failover; repairs after --repair-after)")
    fleet.add_argument("--crash-at", type=float, default=None, metavar="T",
                       help="crash time (default: 40%% of the horizon)")
    fleet.add_argument("--repair-after", type=float, default=None,
                       metavar="T", help="repair delay (default: 30%% of "
                       "the horizon)")
    fleet.add_argument("--nested", action="store_true",
                       help="price service durations by running each "
                       "(workload, ISA) pair on a real nested "
                       "PopcornSystem instead of the analytic model")

    chaos = sub.add_parser(
        "chaos", help="deterministic crash-point enumeration over the "
        "two-phase migration and hDSM recovery protocols")
    chaos.add_argument("--workloads", default="is,ep", metavar="A,B,...",
                       help="comma-separated registry workloads")
    chaos.add_argument("--cls", default="A", choices=("A", "B", "C"))
    chaos.add_argument("--threads", type=int, default=2)
    chaos.add_argument("--scale", type=float, default=0.01)
    chaos.add_argument("--migrate-at", type=int, default=2, metavar="N",
                       help="migrate the process at the Nth migration point "
                       "(the hand-off protocol is what chaos crashes into)")
    chaos.add_argument("--dsm-backup", action="store_true",
                       help="enable dirty-page backup-home replication "
                       "(the recovery ablation)")
    chaos.add_argument("--serving", action="store_true",
                       help="enumerate the serving-plane crash points "
                       "instead (admit/enqueue/serve/complete and every "
                       "hand-off phase, request-conservation audited)")
    chaos.add_argument("--soak", type=int, default=0, metavar="N",
                       help="additionally run N seeded random crash "
                       "injections per workload")
    chaos.add_argument("--seed", type=int, default=1234)
    chaos.add_argument("--verbose", action="store_true",
                       help="print every case, not just violations")
    return parser


# ------------------------------------------------------------- commands

def cmd_list(args) -> int:
    from repro.workloads import profile_for, workload_names

    table = Table("Available workloads", ["name", "classes", "mix (top)",
                                          "parallel fraction"])
    for name in workload_names():
        profile = profile_for(name)
        top = max(profile.mix, key=profile.mix.get)
        table.add_row(
            name,
            "/".join(sorted(profile.classes)),
            f"{top.value} ({profile.mix[top] * 100:.0f}%)",
            f"{profile.parallel_fraction:.2f}",
        )
    print(table.render())
    return 0


def _machine_name(short: str) -> str:
    return {"x86": "x86-server", "arm": "arm-server"}[short]


def cmd_run(args) -> int:
    from repro.kernel import boot_testbed
    from repro.runtime.execution import EngineHooks, make_engine
    from repro.telemetry import PowerRecorder
    from repro.workloads import build_workload

    toolchain = Toolchain(
        target_gap=max(int(DEFAULT_TARGET_GAP * args.scale), 1000),
        lint=args.lint,
    )
    binary = toolchain.build(
        build_workload(args.workload, args.cls, args.threads, args.scale)
    )
    system = boot_testbed()
    recorder = PowerRecorder(system, rate_hz=min(100 / args.scale, 1e6))
    process = system.exec_process(binary, _machine_name(args.start))

    hooks = EngineHooks()
    hits = [0]

    def maybe_migrate(thread, fn, point_id, instrs):
        hits[0] += 1
        if args.migrate_at is not None and hits[0] == args.migrate_at:
            other = [m for m in system.machine_order
                     if m != thread.machine_name][0]
            print(f"migrating process to {other} "
                  f"(at {fn}, point {point_id})")
            system.request_migration(process, other)

    hooks.on_migration_point = maybe_migrate
    hooks.on_migration = lambda thread, outcome: print(
        f"  tid {thread.tid}: {outcome.src_machine} -> {outcome.dst_machine} "
        f"(transform {outcome.transform_seconds * 1e6:.0f} us)"
    )
    engine = make_engine(system, process, hooks, sampler=recorder.sampler,
                         engine=args.engine)
    engine.run()
    recorder.finish()

    table = Table(f"{args.workload}.{args.cls} x{args.threads}", ["metric", "value"])
    table.add_row("exit code", process.exit_code)
    table.add_row("output", " ".join(f"{v:.0f}" for v in process.output))
    table.add_row("simulated time (s)", f"{system.clock.now:.4f}")
    table.add_row("engine", "fast" if type(engine).__name__.startswith("Fast")
                  else "exact")
    table.add_row("migrations", engine.migration.migrations)
    table.add_row("DSM pages moved", process.dsm.stats.page_transfers)
    for name in system.machine_order:
        traces = recorder.machine(name)
        table.add_row(f"{name} energy (J)", f"{traces.cpu_energy():.2f}")
    from repro import validate

    if validate.enabled():
        from repro.telemetry.validation import default_log

        table.add_row("invariant checks", default_log().summary())
    if args.lint:
        from repro.telemetry.lintlog import default_lint_log

        table.add_row("lint checks", default_lint_log().summary())
    if system.tracer is not None:
        # REPRO_TRACE=1 attached a tracer; surface its aggregate view.
        table.add_row("spans recorded", len(system.tracer.spans))
        for name, value in system.tracer.metrics.render_rows():
            table.add_row(name, value)
    print(table.render())
    return 0 if process.exit_code == 0 else 1


def cmd_trace(args) -> int:
    from repro.analysis.critical_path import (
        migration_critical_path,
        render_critical_path,
    )
    from repro.analysis.export import (
        spans_to_chrome,
        spans_to_jsonl,
        validate_chrome_trace,
    )
    from repro.kernel import boot_testbed
    from repro.runtime.execution import EngineHooks, ExecutionEngine
    from repro.telemetry.spans import Tracer, check_causality
    from repro.workloads import build_workload

    toolchain = Toolchain(
        target_gap=max(int(DEFAULT_TARGET_GAP * args.scale), 1000),
        lint=args.lint,
    )
    binary = toolchain.build(
        build_workload(args.workload, args.cls, args.threads, args.scale)
    )
    tracer = Tracer()
    system = boot_testbed(tracer=tracer)
    process = system.exec_process(binary, _machine_name(args.start))

    hooks = EngineHooks()
    hits = [0]

    def maybe_migrate(thread, fn, point_id, instrs):
        hits[0] += 1
        if args.migrate_at is not None and hits[0] == args.migrate_at:
            other = [m for m in system.machine_order
                     if m != thread.machine_name][0]
            system.request_migration(process, other)

    hooks.on_migration_point = maybe_migrate
    ExecutionEngine(system, process, hooks).run()

    problems = check_causality(tracer.spans)
    if args.format == "chrome":
        text = spans_to_chrome(tracer.spans)
        problems += validate_chrome_trace(text)
    else:
        text = spans_to_jsonl(tracer.spans)
    with open(args.out, "w") as fh:
        fh.write(text)

    table = Table(
        f"trace of {args.workload}.{args.cls} x{args.threads}",
        ["metric", "value"],
    )
    table.add_row("exit code", process.exit_code)
    table.add_row("simulated time (s)", f"{system.clock.now:.4f}")
    table.add_row("spans", len(tracer.spans))
    for category, count in tracer.by_category().items():
        table.add_row(f"spans[{category}]", count)
    for name, value in tracer.metrics.render_rows():
        table.add_row(name, value)
    table.add_row("wrote", f"{args.out} ({args.format})")
    print(table.render())
    if args.critical_path:
        print()
        print(render_critical_path(migration_critical_path(tracer.spans)))
    for problem in problems:
        print(f"trace problem: {problem}", file=sys.stderr)
    if problems:
        return 1
    return 0 if process.exit_code == 0 else 1


def cmd_layout(args) -> int:
    from repro.workloads import build_workload

    binary = Toolchain(lint=args.lint).build(
        build_workload(args.workload, args.cls, 1, args.scale)
    )
    table = Table(
        f"Common layout of {args.workload}.{args.cls} "
        f"(identical on {', '.join(binary.isa_names)})",
        ["symbol", "address", "padded", "arm64 size", "x86_64 size"],
    )
    for placed in binary.layout.in_section(".text"):
        table.add_row(
            placed.name,
            hex(placed.address),
            placed.padded_size,
            placed.sizes.get("arm64", "-"),
            placed.sizes.get("x86_64", "-"),
        )
    print(table.render())
    print(f".text footprint (padded): {binary.text_footprint('x86_64')} bytes; "
          f"TLS block: {binary.tls.block_size} bytes; "
          f"{binary.migration_point_count} migration points, "
          f"{binary.site_count} call sites")
    if args.script:
        print(binary.binary_for("x86_64").linker_script)
    return 0


def cmd_gaps(args) -> int:
    from repro.compiler.profiling import GapProfile, GapRecorder
    from repro.kernel import boot_testbed
    from repro.runtime.execution import EngineHooks, ExecutionEngine
    from repro.workloads import build_workload

    target = max(int(DEFAULT_TARGET_GAP * args.scale), 1000)
    for mode in ("boundary", "profiled"):
        toolchain = Toolchain(
            migration_points=mode, target_gap=target, lint=args.lint
        )
        binary = toolchain.build(
            build_workload(args.workload, args.cls, 1, args.scale)
        )
        system = boot_testbed()
        process = system.exec_process(binary, "x86-server")
        profile = GapProfile()
        recorder = GapRecorder(profile)
        hooks = EngineHooks(on_migration_point=(
            lambda thread, fn, pid, instrs: recorder.on_migration_point(
                thread.tid, fn, pid, instrs)
        ))
        ExecutionEngine(system, process, hooks).run()
        label = "pre-insertion" if mode == "boundary" else "post-insertion"
        print(profile.format_histogram(
            f"{args.workload}.{args.cls} {label} "
            f"(max gap {profile.max_gap():.3g} instructions)"
        ))
        print()
    return 0


def cmd_lint(args) -> int:
    from repro.analyze import Baseline, render_json, render_text, run_lint
    from repro.telemetry.lintlog import default_lint_log
    from repro.workloads import build_workload, workload_names

    if args.all and args.workload:
        print("error: give a workload name or --all, not both",
              file=sys.stderr)
        return 2
    if not args.all and not args.workload:
        print("error: a workload name (or --all) is required",
              file=sys.stderr)
        return 2
    names = workload_names() if args.all else [args.workload]
    baseline = Baseline.load(args.baseline) if args.baseline else Baseline()
    # Lint is a reporting tool: build even modules the strict toolchain
    # would refuse, so the coverage pass can flag them instead.
    toolchain = Toolchain(
        target_gap=max(int(DEFAULT_TARGET_GAP * args.scale), 1000),
        allow_unmigratable=True,
    )
    log = default_lint_log()
    reports = []
    failed = False
    for name in names:
        subject = f"{name}.{args.cls}"
        module = build_workload(name, args.cls, args.threads, args.scale)
        report = run_lint(module, passes=args.passes, subject=subject)
        if not any(d.code == "MIG001" for d in report.diagnostics):
            binary = toolchain.build(module)
            report = run_lint(binary, passes=args.passes, subject=subject)
        report.apply_baseline(baseline)
        log.note_report(report)
        reports.append(report)
        if report.error_count:
            failed = True
        if args.format == "text":
            print(render_text(report, verbose=args.verbose))
    if args.write_baseline:
        wrote = Baseline.from_reports(reports)
        wrote.save(args.write_baseline)
        print(f"wrote {len(wrote.fingerprints)} suppression(s) to "
              f"{args.write_baseline}")
        return 0
    if args.format == "json":
        print(render_json(reports))
    else:
        print(log.summary())
    return 1 if failed else 0


def cmd_dump(args) -> int:
    from repro.compiler.optimize import optimize_module
    from repro.ir.printer import print_module
    from repro.workloads import build_workload

    module = build_workload(args.workload, args.cls, args.threads, args.scale)
    if args.optimize:
        optimize_module(module)
    print(print_module(module))
    return 0


def cmd_schedule(args) -> int:
    from repro.datacenter import (
        ClusterSimulator,
        POLICIES,
        make_policy,
        periodic_waves,
        summarize_runs,
        sustained_backfill,
    )
    from repro.machine import make_xeon_e5_1650v2, make_xgene1
    from repro.sim.rng import DeterministicRng

    baseline = "static-x86(2)"

    def machines_for(name):
        if name == baseline:
            return [make_xeon_e5_1650v2("x86-1"), make_xeon_e5_1650v2("x86-2")]
        return [make_xgene1("arm"), make_xeon_e5_1650v2("x86")]

    runs = {name: [] for name in POLICIES}
    for index in range(args.sets):
        rng = DeterministicRng(args.seed + index)
        for name in POLICIES:
            sim = ClusterSimulator(machines_for(name), make_policy(name))
            if args.pattern == "sustained":
                specs, conc = sustained_backfill(
                    DeterministicRng(args.seed + index), args.jobs, 6
                )
                runs[name].append(sim.run_sustained(specs, conc))
            else:
                arrivals = periodic_waves(DeterministicRng(args.seed + index))
                runs[name].append(sim.run_periodic(arrivals))
    summary = summarize_runs(runs, baseline)
    table = Table(
        f"{args.pattern} workload, {args.sets} sets (vs {baseline})",
        ["policy", "energy (kJ)", "saving", "makespan ratio", "EDP red."],
    )
    for name, s in summary.items():
        table.add_row(
            name,
            f"{s.mean_energy / 1e3:.2f}",
            f"{s.mean_energy_reduction * 100:+.1f}%",
            f"{s.mean_makespan_ratio:.2f}",
            f"{s.mean_edp_reduction * 100:+.1f}%",
        )
    print(table.render())
    return 0


def cmd_faults(args) -> int:
    from repro.datacenter import (
        ClusterSimulator,
        make_policy,
        periodic_waves,
        sustained_backfill,
    )
    from repro.faults import (
        CheckpointRestart,
        EvacuateLive,
        FailStop,
        render_fault_timeline,
        render_recovery_comparison,
        single_crash,
    )
    from repro.machine import make_xeon_e5_1650v2, make_xgene1
    from repro.sim.rng import DeterministicRng

    if args.checkpoint_interval <= 0:
        print("error: --checkpoint-interval must be positive")
        return 2
    if args.crash_at is not None and args.crash_at < 0:
        print("error: --crash-at must be non-negative")
        return 2
    if args.repair_after is not None and args.repair_after <= 0:
        print("error: --repair-after must be positive")
        return 2

    def machines():
        return [make_xgene1("arm"), make_xeon_e5_1650v2("x86")]

    def run(faults=None, recovery=None):
        detector = None
        if args.detector and faults is not None:
            from repro.faults import DetectorConfig, FailureDetector

            detector = FailureDetector(DetectorConfig(
                heartbeat_period_s=args.heartbeat, lease_s=args.lease,
            ))
        sim = ClusterSimulator(
            machines(), make_policy("dynamic-balanced"),
            faults=faults, recovery=recovery, detector=detector,
        )
        if args.pattern == "sustained":
            specs, conc = sustained_backfill(
                DeterministicRng(args.seed), args.jobs, 6
            )
            return sim.run_sustained(specs, conc)
        return sim.run_periodic(periodic_waves(DeterministicRng(args.seed)))

    fault_free = run()
    if args.crash_at is not None:
        crash_at = args.crash_at
    elif args.pattern == "periodic":
        # A fraction of the makespan often falls into an idle gap
        # between waves; crash while the cluster is provably busy.
        waves = sorted({t for t, _ in periodic_waves(DeterministicRng(args.seed))})
        crash_at = waves[len(waves) // 2] + 5.0
    else:
        crash_at = fault_free.makespan * 0.4
    repair_after = (
        args.repair_after if args.repair_after is not None
        else fault_free.makespan * 0.3
    )
    schedule = single_crash(
        crash_at, args.crash,
        repair_seconds=repair_after, permanent=args.permanent,
    )
    strategies = {
        "evacuate-live": EvacuateLive(),
        "checkpoint-restart": CheckpointRestart(args.checkpoint_interval),
        "fail-stop": FailStop(),
    }
    results = {"fault-free": fault_free}
    for name, recovery in strategies.items():
        results[name] = run(faults=schedule, recovery=recovery)

    crash_desc = (
        f"{args.crash} crash at t={crash_at:.0f}s, "
        + ("permanent" if args.permanent else f"repair after {repair_after:.0f}s")
    )
    print(render_recovery_comparison(
        results, f"{args.pattern} workload under failure ({crash_desc})"
    ))
    if args.trace:
        for name in strategies:
            print()
            print(render_fault_timeline(results[name], f"{name} timeline"))
    return 0


def cmd_serve(args) -> int:
    from repro.serving import (
        DEFAULT_SLO_S,
        ServingEngine,
        default_resilience,
        make_serving_policy,
        make_trace,
        render_detector_rows,
        render_resilience_rows,
        slo_report,
        render_slo_rows,
    )
    from repro.sim.rng import DeterministicRng
    from repro.telemetry.spans import Tracer, check_causality

    #: Per-shape trace parameters: the diurnal default runs two
    #: day/night cycles with a 6:1 peak:trough ratio so the peak
    #: actually breaches the default SLO on the ARM box.
    shape_kwargs = {
        "steady": {},
        "diurnal": {"peak_to_trough": 6.0, "periods": 2.0},
        "flash-crowd": {},
    }[args.traffic]
    trace = make_trace(
        args.traffic, DeterministicRng(args.seed),
        requests=args.requests, horizon_s=args.horizon, **shape_kwargs,
    )
    slo_s = DEFAULT_SLO_S if args.slo_ms is None else args.slo_ms / 1e3
    tracer = Tracer()
    faults = None
    detector = None
    if args.faults:
        from repro.faults import FaultSchedule, NodeCrash

        crash_at = (
            args.crash_at if args.crash_at is not None else 0.4 * args.horizon
        )
        repair = (
            args.repair_after
            if args.repair_after is not None
            else 0.3 * args.horizon
        )
        faults = FaultSchedule([
            NodeCrash(
                time=crash_at, node=_machine_name(args.crash),
                permanent=args.permanent, repair_seconds=repair,
            )
        ])
    if args.detector:
        from repro.faults import DetectorConfig, FailureDetector

        detector = FailureDetector(DetectorConfig(
            heartbeat_period_s=args.heartbeat, lease_s=args.lease,
        ))
    engine = ServingEngine(
        make_serving_policy(args.policy), trace,
        workload=args.workload, cls=args.cls, slo_s=slo_s, tracer=tracer,
        faults=faults, detector=detector,
        resilience=default_resilience(slo_s) if args.resilient else None,
        rng=DeterministicRng(args.seed),
    )
    result = engine.run()
    report = slo_report(
        [r.latency_s for r in engine.completed], slo_s, trace.requests
    )

    table = Table(
        f"serve {args.workload}.{args.cls} — {args.traffic} traffic, "
        f"{args.policy} policy (seed {args.seed})",
        ["metric", "value"],
    )
    table.add_row("trace checksum", trace.checksum())
    table.add_row("mean arrival rate", f"{trace.mean_rate():.1f} req/s")
    table.add_row("simulated time (s)", f"{result.makespan:.4f}")
    for metric, value in render_slo_rows(report):
        table.add_row(metric, value)
    table.add_row("hand-offs", result.migrations)
    table.add_row("hand-off seconds", f"{result.handoff_seconds:.6f}")
    table.add_row("blackout seconds", f"{result.overhead_seconds:.6f}")
    table.add_row("migration stall seconds",
                  f"{result.migration_stall_seconds:.6f}")
    table.add_row("deferrals", engine.deferrals)
    if args.faults or args.detector or args.resilient:
        for metric, value in render_resilience_rows(result):
            table.add_row(metric, value)
    if args.detector:
        for metric, value in render_detector_rows(result):
            table.add_row(metric, value)
    for name, joules in sorted(result.energy_by_machine.items()):
        table.add_row(f"{name} energy (J)", f"{joules:.2f}")
    table.add_row("total energy (J)", f"{result.total_energy:.2f}")
    table.add_row("spans recorded", len(tracer.spans))
    print(table.render())

    problems = check_causality(tracer.spans)
    if args.out:
        from repro.analysis.export import (
            spans_to_chrome,
            validate_chrome_trace,
        )

        text = spans_to_chrome(tracer.spans)
        problems += validate_chrome_trace(text)
        with open(args.out, "w") as fh:
            fh.write(text)
        print(f"wrote {args.out} (chrome)")
    for problem in problems:
        print(f"trace problem: {problem}", file=sys.stderr)
    return 1 if problems else 0


def cmd_chaos(args) -> int:
    from repro.faults import registry_scenario, run_chaos_suite

    if args.serving:
        from repro.faults import run_serving_chaos_suite, serving_scenarios

        reports = run_serving_chaos_suite(
            serving_scenarios(), soak_iterations=args.soak, seed=args.seed
        )
        violations = 0
        for report in reports:
            print(report.render(verbose=args.verbose))
            violations += len(report.violations)
        total = sum(len(r.cases) for r in reports)
        print(f"serving chaos total: {total} armed runs, "
              f"{violations} violations")
        return 1 if violations else 0

    names = [n.strip() for n in args.workloads.split(",") if n.strip()]
    if not names:
        print("error: --workloads named no workloads", file=sys.stderr)
        return 2
    scenarios = [
        registry_scenario(
            name, cls=args.cls, threads=args.threads, scale=args.scale,
            migrate_at=args.migrate_at, dsm_backup=args.dsm_backup,
        )
        for name in names
    ]
    reports = run_chaos_suite(
        scenarios, soak_iterations=args.soak, seed=args.seed
    )
    violations = 0
    for report in reports:
        print(report.render(verbose=args.verbose))
        violations += len(report.violations)
    total = sum(len(r.cases) for r in reports)
    print(f"chaos total: {total} armed runs, {violations} violations")
    return 1 if violations else 0


def cmd_fleet(args) -> int:
    from repro.fleet import (
        FleetConfig,
        FleetSimulator,
        WavePolicy,
        node_name,
        render_result,
    )
    from repro.serving.traffic import make_trace
    from repro.sim.rng import DeterministicRng

    if args.direction == "x86-to-arm":
        source, target = "x86-64", "arm64"
    else:
        source, target = "arm64", "x86-64"
    try:
        config = FleetConfig(
            nodes={"x86-64": args.x86_nodes, "arm64": args.arm_nodes},
            slots_per_node=args.slots,
            services=args.services,
            source_isa=source,
            target_isa=target,
            slo_factor=args.slo_factor,
        )
        config.validate()
        ramp = tuple(float(f) for f in args.ramp.split(",") if f.strip())
        policy = WavePolicy(
            canary_fraction=args.canary,
            ramp=ramp,
            wave_interval_s=args.wave_interval,
            bake_s=args.bake,
            regression_threshold=args.regression_threshold,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    faults = None
    if args.crash is not None:
        from repro.faults import FaultSchedule, NodeCrash

        crash_at = (
            args.crash_at if args.crash_at is not None
            else 0.4 * args.horizon
        )
        repair = (
            args.repair_after if args.repair_after is not None
            else 0.3 * args.horizon
        )
        faults = FaultSchedule([
            NodeCrash(
                time=crash_at, node=node_name(args.crash),
                repair_seconds=repair,
            )
        ])
    nested = None
    if args.nested:
        from repro.datacenter.nested import NestedNodeSampler

        nested = NestedNodeSampler()
    rng = DeterministicRng(args.seed)
    sim = FleetSimulator(config, policy, rng, faults=faults, nested=nested)
    trace = make_trace(
        args.traffic, rng, requests=args.jobs, horizon_s=args.horizon
    )
    result = sim.run(trace)
    print(render_result(result))
    from repro import validate

    if validate.enabled():
        from repro.telemetry.validation import default_log

        print(f"\ninvariant checks: {default_log().summary()}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.validate or args.validate_roundtrip:
        from repro import validate

        validate.set_enabled(True)
        if args.validate_roundtrip:
            validate.set_roundtrip(True)
    handler = {
        "list": cmd_list,
        "run": cmd_run,
        "trace": cmd_trace,
        "layout": cmd_layout,
        "gaps": cmd_gaps,
        "lint": cmd_lint,
        "dump": cmd_dump,
        "schedule": cmd_schedule,
        "faults": cmd_faults,
        "serve": cmd_serve,
        "fleet": cmd_fleet,
        "chaos": cmd_chaos,
    }[args.command]
    try:
        return handler(args)
    except KeyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())

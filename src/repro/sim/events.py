"""Discrete-event engine.

The datacenter-level experiments (Figures 12 and 13) and the kernel
messaging layer are discrete-event simulations.  Events are ordered by
(time, sequence-number) so simultaneous events fire in submission order,
which keeps runs deterministic.
"""

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.sim.clock import Clock


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events compare by ``(time, seq)``; the payload is excluded from the
    ordering so arbitrary callables can be scheduled.
    """

    time: float
    seq: int
    action: Callable[[], Any] = field(compare=False)
    name: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so the queue skips it when popped."""
        self.cancelled = True


class EventQueue:
    """A priority queue of :class:`Event` objects."""

    def __init__(self):
        self._heap: list[Event] = []
        self._seq = 0

    def __len__(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)

    def push(self, time: float, action: Callable[[], Any], name: str = "") -> Event:
        event = Event(time=time, seq=self._seq, action=action, name=name)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Optional[Event]:
        """Return the earliest live event, or None if the queue is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> Optional[float]:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time

    def peek(self) -> Optional[Event]:
        """Return (without removing) the earliest live event."""
        self.peek_time()  # drops cancelled events off the top
        return self._heap[0] if self._heap else None

    def pop_due(self, deadline: float) -> Optional[Event]:
        """Pop the earliest live event with ``time <= deadline``.

        Returns ``None`` when the queue is empty or the head event is
        still in the future — the caller's loop terminates without
        having to compare times itself.  This is the primitive the
        unified cluster loop uses to drain everything due "now".
        """
        head = self.peek()
        if head is None or head.time > deadline:
            return None
        return self.pop()

    def live(self) -> "list[Event]":
        """A snapshot of the pending (non-cancelled) events, unsorted.

        Exposed so schedulers built on the queue can ask questions like
        "is any non-heartbeat event still pending?" without reaching
        into the heap representation.
        """
        return [e for e in self._heap if not e.cancelled]


class Simulator:
    """Drives a :class:`Clock` through an :class:`EventQueue`.

    >>> sim = Simulator()
    >>> hits = []
    >>> _ = sim.at(1.5, lambda: hits.append(sim.now))
    >>> sim.run()
    >>> hits
    [1.5]
    """

    def __init__(self, clock: Optional[Clock] = None):
        self.clock = clock if clock is not None else Clock()
        self.queue = EventQueue()

    @property
    def now(self) -> float:
        return self.clock.now

    def at(self, time: float, action: Callable[[], Any], name: str = "") -> Event:
        """Schedule ``action`` at absolute time ``time``."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        return self.queue.push(time, action, name)

    def after(self, delay: float, action: Callable[[], Any], name: str = "") -> Event:
        """Schedule ``action`` ``delay`` seconds from now."""
        return self.at(self.now + delay, action, name)

    def step(self) -> bool:
        """Run the next event.  Returns False when the queue is empty."""
        event = self.queue.pop()
        if event is None:
            return False
        self.clock.advance_to(event.time)
        event.action()
        return True

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> None:
        """Run events until the queue drains or ``until`` is reached."""
        for _ in range(max_events):
            next_time = self.queue.peek_time()
            if next_time is None:
                return
            if until is not None and next_time > until:
                self.clock.advance_to(until)
                return
            self.step()
        raise RuntimeError(f"simulation exceeded {max_events} events")

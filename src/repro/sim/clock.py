"""Simulated wall-clock time.

Time is kept in seconds as a float.  A :class:`Clock` only moves forward;
attempts to move it backwards raise, which catches event-ordering bugs
early instead of silently corrupting power integrals.
"""


class Clock:
    """A monotonically non-decreasing simulated clock."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance_to(self, t: float) -> None:
        """Move the clock to absolute time ``t`` (seconds)."""
        if t < self._now:
            raise ValueError(
                f"clock cannot move backwards: now={self._now!r}, target={t!r}"
            )
        self._now = t

    def advance_by(self, dt: float) -> None:
        """Move the clock forward by ``dt`` seconds."""
        if dt < 0:
            raise ValueError(f"negative time delta: {dt!r}")
        self._now += dt

    def __repr__(self) -> str:
        return f"Clock(now={self._now:.9f})"

"""Time-series recording.

The paper samples power and CPU load at 100 Hz ("in order to have
readings at high resolution").  :class:`Sampler` replicates that: it is
driven from the simulation and records a value stream that can later be
integrated (energy) or rendered (Figure 11 traces).
"""

import bisect
from dataclasses import dataclass, field
from typing import Callable, List, Tuple


@dataclass
class TimeSeries:
    """A sequence of (time, value) samples, times non-decreasing."""

    name: str
    times: List[float] = field(default_factory=list)
    values: List[float] = field(default_factory=list)

    def append(self, t: float, v: float) -> None:
        if self.times and t < self.times[-1]:
            raise ValueError(f"non-monotonic sample at t={t} in {self.name}")
        self.times.append(t)
        self.values.append(v)

    def __len__(self) -> int:
        return len(self.times)

    def value_at(self, t: float) -> float:
        """Step-interpolated value at time ``t`` (0.0 before first sample)."""
        i = bisect.bisect_right(self.times, t) - 1
        if i < 0:
            return 0.0
        return self.values[i]

    def integrate(self, t0: float = None, t1: float = None) -> float:
        """Trapezoidal integral of the series over [t0, t1].

        With power samples in watts this yields energy in joules.
        """
        if not self.times:
            return 0.0
        t0 = self.times[0] if t0 is None else t0
        t1 = self.times[-1] if t1 is None else t1
        if t1 <= t0:
            return 0.0
        total = 0.0
        for i in range(len(self.times) - 1):
            a, b = self.times[i], self.times[i + 1]
            lo, hi = max(a, t0), min(b, t1)
            if hi <= lo:
                continue
            # Linear interpolation of values at the clipped edges.
            va, vb = self.values[i], self.values[i + 1]
            span = b - a
            v_lo = va if span == 0 else va + (vb - va) * (lo - a) / span
            v_hi = vb if span == 0 else va + (vb - va) * (hi - a) / span
            total += 0.5 * (v_lo + v_hi) * (hi - lo)
        return total

    def mean(self) -> float:
        if not self.values:
            return 0.0
        span = self.times[-1] - self.times[0]
        if span <= 0:
            return self.values[-1]
        return self.integrate() / span

    def max(self) -> float:
        return max(self.values) if self.values else 0.0


class Sampler:
    """Samples callables at a fixed rate into :class:`TimeSeries` objects.

    The experiment driver calls :meth:`sample_until` as simulated time
    advances; the sampler back-fills every 1/rate tick it has not yet
    recorded, reading each probe at the tick.
    """

    def __init__(self, rate_hz: float = 100.0):
        if rate_hz <= 0:
            raise ValueError("sample rate must be positive")
        self.period = 1.0 / rate_hz
        self._probes: List[Tuple[TimeSeries, Callable[[], float]]] = []
        self._next_tick = 0.0

    def add_probe(self, name: str, fn: Callable[[], float]) -> TimeSeries:
        series = TimeSeries(name)
        self._probes.append((series, fn))
        return series

    def sample_until(self, t: float) -> None:
        """Record all ticks in [next_tick, t]."""
        while self._next_tick <= t:
            for series, fn in self._probes:
                series.append(self._next_tick, float(fn()))
            self._next_tick += self.period

    @property
    def series(self) -> List[TimeSeries]:
        return [s for s, _ in self._probes]

"""Deterministic simulation core: clock, event queue, RNG, tracing.

Everything in :mod:`repro` that advances simulated time does so through
this package, so that experiments are fully reproducible run-to-run.
"""

from repro.sim.clock import Clock
from repro.sim.events import Event, EventQueue, Simulator
from repro.sim.rng import DeterministicRng
from repro.sim.trace import Sampler, TimeSeries

__all__ = [
    "Clock",
    "Event",
    "EventQueue",
    "Simulator",
    "DeterministicRng",
    "Sampler",
    "TimeSeries",
]

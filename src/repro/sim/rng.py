"""Deterministic random number generation.

Every stochastic element of an experiment (job mixes, arrival gaps,
cache-noise perturbations) draws from a named stream so that adding a new
consumer does not reshuffle the numbers seen by existing ones.
"""

import hashlib
import random
from typing import Sequence, TypeVar

T = TypeVar("T")


class DeterministicRng:
    """A seeded RNG with named, independent sub-streams.

    >>> rng = DeterministicRng(42)
    >>> a = rng.stream("arrivals").random()
    >>> b = DeterministicRng(42).stream("arrivals").random()
    >>> a == b
    True
    """

    def __init__(self, seed: int):
        self.seed = int(seed)
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the RNG dedicated to ``name``, creating it on first use."""
        if name not in self._streams:
            # Derive the sub-seed from the master seed and the stream
            # name with a content-stable hash (NOT the built-in hash(),
            # which is randomised per process) so streams are
            # independent of creation order AND reproducible run-to-run.
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            sub_seed = int.from_bytes(digest[:8], "big")
            self._streams[name] = random.Random(sub_seed)
        return self._streams[name]

    def choice(self, name: str, items: Sequence[T]) -> T:
        return self.stream(name).choice(items)

    def uniform(self, name: str, lo: float, hi: float) -> float:
        return self.stream(name).uniform(lo, hi)

    def randint(self, name: str, lo: int, hi: int) -> int:
        return self.stream(name).randint(lo, hi)

"""One shared plain-text rendering module for every report surface.

Tables, ASCII bar series, counter digests and timeline lines used to
be re-implemented ad hoc in ``analysis.report`` and each ``telemetry``
log; they live here now so every benchmark table, lint summary,
validation digest and fault timeline prints through one consistent,
diffable formatter.  ``repro.analysis.report`` re-exports the table and
series helpers for existing callers.
"""

import math
from typing import List, Mapping, Optional, Sequence


class Table:
    """A fixed-width text table."""

    def __init__(self, title: str, columns: Sequence[str]):
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    def add_row(self, *cells) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append([_fmt(c) for c in cells])

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "-+-".join("-" * w for w in widths)
        lines = [self.title, sep]
        lines.append(" | ".join(c.ljust(w) for c, w in zip(self.columns, widths)))
        lines.append(sep)
        for row in self.rows:
            lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
        lines.append(sep)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 0.01:
            return f"{cell:.3g}"
        return f"{cell:.3f}"
    return str(cell)


def bar(value: float, scale: float, width: int = 40, char: str = "#") -> str:
    """An ASCII bar of ``value`` against full-scale ``scale``."""
    if scale <= 0:
        return ""
    n = int(round(min(max(value / scale, 0.0), 1.0) * width))
    return char * n


def format_series(
    title: str,
    labels: Sequence[str],
    values: Sequence[float],
    unit: str = "",
    log: bool = False,
    width: int = 40,
) -> str:
    """Render one figure series as labelled ASCII bars."""
    if len(labels) != len(values):
        raise ValueError("labels/values length mismatch")
    lines = [title]
    if not values:
        return title
    if log:
        floor = 1.0
        shown = [math.log10(max(v, floor)) for v in values]
        scale = max(shown) or 1.0
    else:
        shown = list(values)
        scale = max(shown) or 1.0
    label_w = max(len(l) for l in labels)
    for label, value, s in zip(labels, values, shown):
        lines.append(
            f"  {label.ljust(label_w)} {value:12.4g}{unit} |{bar(s, scale, width)}"
        )
    return "\n".join(lines)


def counter_digest(counts: Mapping, empty: str = "none") -> str:
    """``{"a": 2, "b": 1}`` -> ``"a:2, b:1"`` — the one-line counter
    format shared by the lint, validation and run summaries."""
    body = ", ".join(
        f"{name}:{count}" for name, count in sorted(counts.items())
    )
    return body or empty


def timeline_line(
    time: float, kind: str, node: Optional[str] = None, detail: str = ""
) -> str:
    """One aligned, timestamped event line (fault traces et al.)."""
    where = f" {node}" if node else ""
    tail = f": {detail}" if detail else ""
    return f"t={time:10.3f}s  {kind:<17}{where}{tail}"

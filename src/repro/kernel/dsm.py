"""Heterogeneous distributed shared memory (hDSM, Section 5.1).

Page-granularity MSI-style coherence across kernels:

* every page has an owner kernel and a set of kernels holding a valid
  copy;
* a read from a kernel without a valid copy fetches the page (one RPC +
  one page payload) and joins the sharer set;
* a write from a non-owner fetches + invalidates the other copies and
  takes ownership ("migrates pages in order to make subsequent memory
  accesses local");
* pages of *aliased* regions (per-ISA ``.text``, vDSO) are always local
  everywhere and never transferred — that is the memory-region aliasing
  the paper added for heterogeneity.

Bulk first-touch after a migration is served by :meth:`ensure_range`
with pipelined bandwidth-limited timing — the multithreaded page-pull
burst visible in Figure 11.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.linker.layout import PAGE_SIZE, page_of
from repro.runtime.address_space import AddressSpace


class LostPageError(RuntimeError):
    """An access touched a page whose only valid copy died with a kernel.

    The directory scrub marks such pages *lost* instead of leaving a
    stale owner entry; faulting on one fails loudly (the alternative —
    silently serving zeros — would corrupt the computation invisibly).
    """

    def __init__(self, page: int, kernel: str, dead_kernel: str):
        super().__init__(
            f"page {page:#x} accessed from {kernel} was lost when its only "
            f"valid copy died with kernel {dead_kernel}"
        )
        self.page = page
        self.kernel = kernel
        self.dead_kernel = dead_kernel


@dataclass
class DsmStats:
    """Page-traffic counters, per process."""

    faults: int = 0
    page_transfers: int = 0
    invalidations: int = 0
    bytes_transferred: int = 0
    # Backup-home replication mode (opt-in ablation).
    backup_pushes: int = 0
    backup_bytes: int = 0

    def snapshot(self) -> "DsmStats":
        return DsmStats(
            self.faults,
            self.page_transfers,
            self.invalidations,
            self.bytes_transferred,
            self.backup_pushes,
            self.backup_bytes,
        )


@dataclass
class ScrubReport:
    """What a directory scrub did after one kernel's confirmed death."""

    dead_kernel: str
    dropped_copies: int = 0  # stale sharer entries removed
    reowned: int = 0  # ownership rebuilt from a surviving sharer
    reowned_from_backup: int = 0  # recovered via the backup-home copy
    refetchable: int = 0  # clean sole copies, refetchable from the image
    lost: int = 0  # dirty sole copies: marked lost, accesses fail loudly


class DsmService:
    """Per-process page coherence across the replicated kernels."""

    def __init__(
        self,
        space: AddressSpace,
        messaging,
        home_kernel: str,
        machines: Optional[List[str]] = None,
        backup: bool = False,
    ):
        self.space = space
        self.messaging = messaging
        self.home = home_kernel
        self._aliased = space.aliased_pages()
        # page -> owner kernel; absent means untouched (zero page),
        # owned by whoever touches it first.
        self._owner: Dict[int, str] = {}
        # page -> kernels with a valid (read) copy, owner included.
        self._valid: Dict[int, Set[str]] = {}
        self.stats = DsmStats()
        # Monotonic epoch: bumped on every residency change; lets the
        # engine cache "this whole range is local" checks.
        self.epoch = 0
        # Kernels party to the most recent charged coherence operation
        # (requester, owners that served a copy, invalidated sharers,
        # backup targets).  The engine scopes interconnect-busy (IO
        # power) accounting to exactly these machines.
        self.last_parties: Tuple[str, ...] = ()
        # ---- crash recovery (all empty/off on the fault-free path) ----
        # Machine ring: determines where backup copies go.
        self.machines = list(machines) if machines else []
        # Opt-in dirty-page backup-home replication (ablation): every
        # dirtying coherence event pushes the page to the owner's ring
        # successor, trading steady-state wire bandwidth for lost work.
        self.backup = bool(backup) and len(self.machines) > 1
        # page -> kernel holding an out-of-band backup copy.  Backup
        # copies are *not* coherence sharers: they never serve faults
        # and never appear in _valid, so MSI behaviour is unchanged.
        self._backup_of: Dict[int, str] = {}
        # Pages ever dirtied through a coherence event (write fault,
        # write first-touch, or bulk write pull).  Clean sole copies of
        # a dead kernel are refetchable from the binary image; dirty
        # ones are genuinely lost.
        self._dirtied: Set[int] = set()
        # page -> dead kernel whose crash lost the page.
        self.lost_pages: Dict[int, str] = {}
        self._dead: Set[str] = set()
        self.scrubs: List[ScrubReport] = []

    # ----------------------------------------------------------- faults

    def is_local(self, kernel: str, page: int, write: bool) -> bool:
        if page in self._aliased:
            return True
        owner = self._owner.get(page)
        if owner is None:
            return True  # first touch anywhere is local (zero page)
        if write:
            return owner == kernel and self._valid.get(page) == {kernel}
        return kernel in self._valid.get(page, set())

    def access(self, kernel: str, addr: int, write: bool) -> float:
        """Account one access; returns fault service time in seconds."""
        page = page_of(addr)
        if self.lost_pages and page in self.lost_pages:
            raise LostPageError(page, kernel, self.lost_pages[page])
        self.last_parties = (kernel,)
        if self.is_local(kernel, page, write):
            return self._note_first_touch(kernel, page, write)
        return self._fault(kernel, page, write)

    def _note_first_touch(self, kernel: str, page: int, write: bool = False) -> float:
        if page not in self._owner and page not in self._aliased:
            self._owner[page] = kernel
            self._valid[page] = {kernel}
            if write:
                self._dirtied.add(page)
                if self.backup:
                    return self._push_backup(kernel, page)
        elif write and page not in self._aliased:
            # First *write* to a page the kernel already owns from a
            # read first-touch: the engine's residency cache guarantees
            # the first write of a page reaches access(), so dirtiness
            # tracking at coherence granularity is complete.
            self._dirtied.add(page)
            if self.backup and page not in self._backup_of:
                return self._push_backup(kernel, page)
        return 0.0

    def _backup_target(self, owner: str) -> Optional[str]:
        machines = self.machines
        if len(machines) < 2 or owner not in machines:
            return None
        return machines[(machines.index(owner) + 1) % len(machines)]

    def _push_backup(self, owner: str, page: int) -> float:
        """Replicate a dirty page to the owner's ring successor."""
        target = self._backup_target(owner)
        if target is None or target in self._dead:
            return 0.0
        self._backup_of[page] = target
        self.stats.backup_pushes += 1
        self.stats.backup_bytes += PAGE_SIZE
        self.last_parties = tuple(
            sorted(set(self.last_parties) | {owner, target})
        )
        return self.messaging.send("dsm.backup", owner, target, PAGE_SIZE)

    def _fault(self, kernel: str, page: int, write: bool) -> float:
        if self.messaging.chaos is not None:
            if self.messaging.chaos_step(
                "dsm.page", faulter=kernel, owner=self._owner[page]
            ):
                # The step crashed a kernel; the directory has been
                # scrubbed under our feet.  Re-dispatch from scratch.
                from repro.kernel.kernel import KernelCrashed

                if kernel in self.messaging.fenced:
                    raise KernelCrashed(kernel)
                return self.access(kernel, page * PAGE_SIZE, write)
        self.stats.faults += 1
        if write:
            self._dirtied.add(page)
        owner = self._owner[page]
        sharers = self._valid.setdefault(page, {owner})
        cost = 0.0
        invalidated = 0
        # The page payload crosses the wire only when the faulting
        # kernel holds no valid copy.  A write to a page it already
        # shares (S->M upgrade, or the owner with stale sharers) costs
        # invalidation traffic only — no page transfer, no self-RPC.
        transferred = kernel not in sharers
        parties = {kernel}
        if transferred:
            parties.add(owner)
        if write:
            parties.update(k for k in sharers if k != kernel)
        self.last_parties = tuple(sorted(parties))
        if transferred:
            cost += self.messaging.rpc(
                "dsm.page", kernel, owner, request_bytes=32,
                reply_bytes=PAGE_SIZE,
            )
            self.stats.page_transfers += 1
            self.stats.bytes_transferred += PAGE_SIZE
        if write:
            # Invalidate all other copies and take ownership.
            others = [k for k in sharers if k != kernel]
            if others:
                cost += self.messaging.broadcast(
                    "dsm.inval", kernel, others, payload_bytes=32
                )
                self.stats.invalidations += len(others)
                invalidated = len(others)
            self._valid[page] = {kernel}
            self._owner[page] = kernel
            if self.backup:
                cost += self._push_backup(kernel, page)
        else:
            sharers.add(kernel)
        self.epoch += 1
        tracer = getattr(self.messaging, "tracer", None)
        if tracer is not None:
            tracer.complete(
                "dsm.page", "dsm", tracer.now(), cost, track=kernel,
                page=page, owner=owner, write=write,
                bytes=PAGE_SIZE if transferred else 0,
                invalidations=invalidated,
            )
            metrics = tracer.metrics
            metrics.counter("dsm.page_faults").inc()
            if transferred:
                metrics.counter("dsm.bytes").inc(PAGE_SIZE)
            if invalidated:
                metrics.counter("dsm.invalidations").inc(invalidated)
            metrics.histogram("dsm.fault_s").observe(cost)
        return cost

    # ------------------------------------------------------------- bulk

    def ensure_range(self, kernel: str, base: int, span: int, write: bool) -> Tuple[float, int]:
        """Make [base, base+span) locally accessible from ``kernel``.

        Returns (seconds, pages_transferred).  Transfers are pipelined:
        one round-trip of latency plus bandwidth-limited payload time,
        modelling the multithreaded hDSM pulling pages in bulk.
        """
        if span <= 0:
            return (0.0, 0)
        first = page_of(base)
        last = page_of(base + span - 1)
        if self.lost_pages:
            for lost_page, dead in self.lost_pages.items():
                if first <= lost_page <= last:
                    raise LostPageError(lost_page, kernel, dead)
        # Classify every page in one scan instead of calling
        # ``is_local``/``_note_first_touch`` per page — bulk pulls span
        # hundreds of thousands of pages and the two calls per page are
        # the hottest loop in the whole simulator.  The classification
        # reads exactly what ``is_local`` reads, so ``missing`` is the
        # same list the per-page path would produce.
        aliased = self._aliased
        valid = self._valid
        owner_get = self._owner.get
        missing = []
        fresh = []
        dirtied_local = []
        if write:
            own_copy = {kernel}
            for p in range(first, last + 1):
                if p in aliased:
                    continue
                o = owner_get(p)
                if o is None:
                    fresh.append(p)
                elif o == kernel and valid.get(p) == own_copy:
                    dirtied_local.append(p)
                else:
                    missing.append(p)
        else:
            dirtied_local = ()
            for p in range(first, last + 1):
                if p in aliased:
                    continue
                o = owner_get(p)
                if o is None:
                    fresh.append(p)
                elif kernel not in valid.get(p, ()):
                    missing.append(p)
        if self.messaging.chaos is not None:
            owners = sorted({self._owner[p] for p in missing})
            if self.messaging.chaos_step(
                "dsm.bulk", puller=kernel, *(), **{
                    f"owner{i}": o for i, o in enumerate(owners)
                }
            ):
                from repro.kernel.kernel import KernelCrashed

                if kernel in self.messaging.fenced:
                    raise KernelCrashed(kernel)
                return self.ensure_range(kernel, base, span, write)
        cost = 0.0
        self.last_parties = (kernel,)
        if self.backup:
            # Backup replication charges per-page costs; keep the
            # exact per-page path for this opt-in ablation mode.
            for p in range(first, last + 1):
                cost += self._note_first_touch(kernel, p, write)
        else:
            # Inlined ``_note_first_touch`` over the classified pages:
            # the same ownership/validity/dirtiness writes, batched.
            # Every skipped call returned exactly 0.0, so ``cost`` is
            # bit-identical.
            owner = self._owner
            for p in fresh:
                owner[p] = kernel
                valid[p] = {kernel}
            if write:
                dirtied = self._dirtied
                dirtied.update(fresh)
                dirtied.update(dirtied_local)
                dirtied.update(missing)
        if not missing:
            return (cost, 0)
        parties = set(self.last_parties)
        transfers = 0
        backups = 0
        inval_groups = set()
        backup_target = self._backup_target(kernel) if self.backup else None
        if backup_target in self._dead:
            backup_target = None
        inval_before = self.stats.invalidations
        for page in missing:
            owner = self._owner[page]
            parties.add(owner)
            sharers = self._valid.setdefault(page, {owner})
            # Same accounting as a sequence of single faults: a page the
            # kernel already shares (write upgrade) moves no payload.
            if kernel not in sharers:
                transfers += 1
            if write:
                others = [k for k in sharers if k != kernel]
                if others:
                    # Invalidation *counts* match the single-fault path
                    # (one per stale copy), but the messages are batched:
                    # a bulk pull invalidates a contiguous range with one
                    # range-invalidate broadcast per distinct sharer
                    # group, not one message per page.
                    inval_groups.add(frozenset(others))
                    parties.update(others)
                    self.stats.invalidations += len(others)
                self._valid[page] = {kernel}
                self._owner[page] = kernel
                self._dirtied.add(page)
                if backup_target is not None:
                    self._backup_of[page] = backup_target
                    parties.add(backup_target)
                    backups += 1
            else:
                sharers.add(kernel)
        for group in sorted(inval_groups, key=sorted):
            cost += self.messaging.broadcast(
                "dsm.inval", kernel, sorted(group), payload_bytes=32
            )
        self.last_parties = tuple(sorted(parties))
        # One logical fault per missing page — the bulk path is cheaper
        # than N single faults only in *time* (one round trip of latency
        # amortised over a pipelined burst), never in *accounting*.
        self.stats.faults += len(missing)
        self.stats.page_transfers += transfers
        self.stats.bytes_transferred += transfers * PAGE_SIZE
        if transfers:
            interconnect = self.messaging.interconnect
            cost += (
                interconnect.latency_s * 2
                + (transfers * (PAGE_SIZE + 64)) / interconnect.bandwidth_bytes_per_s
                + interconnect.per_message_cpu_s
            )
            self.messaging.record_bulk("dsm.bulk", transfers, PAGE_SIZE + 64)
        if backups:
            # Backup pushes ride the same pipelined burst: one extra
            # page payload per dirtied page to the ring successor.
            interconnect = self.messaging.interconnect
            cost += (
                (backups * (PAGE_SIZE + 64)) / interconnect.bandwidth_bytes_per_s
                + interconnect.per_message_cpu_s
            )
            self.messaging.record_bulk("dsm.backup", backups, PAGE_SIZE + 64)
            self.stats.backup_pushes += backups
            self.stats.backup_bytes += backups * PAGE_SIZE
        self.epoch += 1
        tracer = getattr(self.messaging, "tracer", None)
        if tracer is not None:
            invalidated = self.stats.invalidations - inval_before
            tracer.complete(
                "dsm.bulk", "dsm", tracer.now(), cost, track=kernel,
                pages=len(missing), transfers=transfers,
                bytes=transfers * PAGE_SIZE, write=write,
                invalidations=invalidated,
            )
            metrics = tracer.metrics
            metrics.counter("dsm.bulk_pulls").inc()
            metrics.counter("dsm.page_faults").inc(len(missing))
            metrics.counter("dsm.bytes").inc(transfers * PAGE_SIZE)
            if invalidated:
                metrics.counter("dsm.invalidations").inc(invalidated)
            metrics.histogram("dsm.bulk_s").observe(cost)
        return (cost, transfers)

    # ------------------------------------------------------- inspection

    def resident_pages(self, kernel: str) -> int:
        return sum(1 for sharers in self._valid.values() if kernel in sharers)

    def owner_of(self, addr: int) -> Optional[str]:
        return self._owner.get(page_of(addr))

    def all_threads_migrated_cleanup(self, kernel: str) -> int:
        """Drop residual copies once no thread runs on ``kernel``.

        "After migration, the process's data is kept on the source
        kernel until there are residual dependencies."  Returns the
        number of copies dropped.
        """
        dropped = 0
        for page, sharers in list(self._valid.items()):
            if kernel in sharers and self._owner.get(page) != kernel:
                sharers.discard(kernel)
                dropped += 1
        if dropped:
            self.epoch += 1
        return dropped

    # ---------------------------------------------------- crash recovery

    def scrub_dead_kernel(self, dead: str) -> ScrubReport:
        """Reconcile the directory after ``dead``'s confirmed death.

        Ownership is reconstructed from surviving sharers (smallest
        kernel name wins, deterministically).  Sole copies are recovered
        from their backup-home replica when one exists; otherwise clean
        pages revert to untouched (their content is refetchable from
        the binary image) and dirty pages are marked *lost* — any later
        access raises :class:`LostPageError` instead of reading zeros.
        """
        report = ScrubReport(dead)
        self._dead.add(dead)
        for page in sorted(self._valid):
            sharers = self._valid[page]
            owner = self._owner.get(page)
            if dead in sharers:
                sharers.discard(dead)
                if owner != dead:
                    report.dropped_copies += 1
            if owner != dead:
                continue
            if sharers:
                self._owner[page] = min(sharers)
                report.reowned += 1
                continue
            backup = self._backup_of.get(page)
            del self._owner[page]
            del self._valid[page]
            if backup is not None and backup not in self._dead:
                # The backup holder becomes the new owner; the copy it
                # holds is the page as of its last replication.
                self._owner[page] = backup
                self._valid[page] = {backup}
                report.reowned_from_backup += 1
            elif page in self._dirtied:
                self.lost_pages[page] = dead
                report.lost += 1
            else:
                # Never dirtied: content is still the loaded image, so
                # the next toucher re-materialises it like a first touch.
                report.refetchable += 1
        # Backup copies stored *on* the dead kernel died with it.
        for page, holder in list(self._backup_of.items()):
            if holder == dead:
                del self._backup_of[page]
        self.scrubs.append(report)
        # Residency caches across the system are stale now.
        self.epoch += 1
        tracer = getattr(self.messaging, "tracer", None)
        if tracer is not None:
            tracer.instant(
                "dsm.scrub", "fault", track=dead, dead=dead,
                dropped=report.dropped_copies, reowned=report.reowned,
                from_backup=report.reowned_from_backup,
                refetchable=report.refetchable, lost=report.lost,
            )
            tracer.metrics.counter("dsm.scrubs").inc()
            if report.lost:
                tracer.metrics.counter("dsm.lost_pages").inc(report.lost)
        return report

    def references_kernel(self, kernel: str) -> bool:
        """Does any directory entry still route at ``kernel``?"""
        if any(owner == kernel for owner in self._owner.values()):
            return True
        return any(kernel in sharers for sharers in self._valid.values())

"""Heterogeneous distributed shared memory (hDSM, Section 5.1).

Page-granularity MSI-style coherence across kernels:

* every page has an owner kernel and a set of kernels holding a valid
  copy;
* a read from a kernel without a valid copy fetches the page (one RPC +
  one page payload) and joins the sharer set;
* a write from a non-owner fetches + invalidates the other copies and
  takes ownership ("migrates pages in order to make subsequent memory
  accesses local");
* pages of *aliased* regions (per-ISA ``.text``, vDSO) are always local
  everywhere and never transferred — that is the memory-region aliasing
  the paper added for heterogeneity.

Bulk first-touch after a migration is served by :meth:`ensure_range`
with pipelined bandwidth-limited timing — the multithreaded page-pull
burst visible in Figure 11.
"""

from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple

from repro.linker.layout import PAGE_SIZE, page_of
from repro.runtime.address_space import AddressSpace


@dataclass
class DsmStats:
    """Page-traffic counters, per process."""

    faults: int = 0
    page_transfers: int = 0
    invalidations: int = 0
    bytes_transferred: int = 0

    def snapshot(self) -> "DsmStats":
        return DsmStats(
            self.faults,
            self.page_transfers,
            self.invalidations,
            self.bytes_transferred,
        )


class DsmService:
    """Per-process page coherence across the replicated kernels."""

    def __init__(self, space: AddressSpace, messaging, home_kernel: str):
        self.space = space
        self.messaging = messaging
        self.home = home_kernel
        self._aliased = space.aliased_pages()
        # page -> owner kernel; absent means untouched (zero page),
        # owned by whoever touches it first.
        self._owner: Dict[int, str] = {}
        # page -> kernels with a valid (read) copy, owner included.
        self._valid: Dict[int, Set[str]] = {}
        self.stats = DsmStats()
        # Monotonic epoch: bumped on every residency change; lets the
        # engine cache "this whole range is local" checks.
        self.epoch = 0

    # ----------------------------------------------------------- faults

    def is_local(self, kernel: str, page: int, write: bool) -> bool:
        if page in self._aliased:
            return True
        owner = self._owner.get(page)
        if owner is None:
            return True  # first touch anywhere is local (zero page)
        if write:
            return owner == kernel and self._valid.get(page) == {kernel}
        return kernel in self._valid.get(page, set())

    def access(self, kernel: str, addr: int, write: bool) -> float:
        """Account one access; returns fault service time in seconds."""
        page = page_of(addr)
        if self.is_local(kernel, page, write):
            self._note_first_touch(kernel, page)
            return 0.0
        return self._fault(kernel, page, write)

    def _note_first_touch(self, kernel: str, page: int) -> None:
        if page not in self._owner and page not in self._aliased:
            self._owner[page] = kernel
            self._valid[page] = {kernel}

    def _fault(self, kernel: str, page: int, write: bool) -> float:
        self.stats.faults += 1
        owner = self._owner[page]
        sharers = self._valid.setdefault(page, {owner})
        cost = 0.0
        # The page payload crosses the wire only when the faulting
        # kernel holds no valid copy.  A write to a page it already
        # shares (S->M upgrade, or the owner with stale sharers) costs
        # invalidation traffic only — no page transfer, no self-RPC.
        if kernel not in sharers:
            cost += self.messaging.rpc(
                "dsm.page", kernel, owner, request_bytes=32,
                reply_bytes=PAGE_SIZE,
            )
            self.stats.page_transfers += 1
            self.stats.bytes_transferred += PAGE_SIZE
        if write:
            # Invalidate all other copies and take ownership.
            others = [k for k in sharers if k != kernel]
            if others:
                cost += self.messaging.broadcast(
                    "dsm.inval", kernel, others, payload_bytes=32
                )
                self.stats.invalidations += len(others)
            self._valid[page] = {kernel}
            self._owner[page] = kernel
        else:
            sharers.add(kernel)
        self.epoch += 1
        return cost

    # ------------------------------------------------------------- bulk

    def ensure_range(self, kernel: str, base: int, span: int, write: bool) -> Tuple[float, int]:
        """Make [base, base+span) locally accessible from ``kernel``.

        Returns (seconds, pages_transferred).  Transfers are pipelined:
        one round-trip of latency plus bandwidth-limited payload time,
        modelling the multithreaded hDSM pulling pages in bulk.
        """
        if span <= 0:
            return (0.0, 0)
        first = page_of(base)
        last = page_of(base + span - 1)
        missing = [
            p
            for p in range(first, last + 1)
            if not self.is_local(kernel, p, write)
        ]
        for p in range(first, last + 1):
            self._note_first_touch(kernel, p)
        if not missing:
            return (0.0, 0)
        transfers = 0
        cost = 0.0
        inval_groups = set()
        for page in missing:
            owner = self._owner[page]
            sharers = self._valid.setdefault(page, {owner})
            # Same accounting as a sequence of single faults: a page the
            # kernel already shares (write upgrade) moves no payload.
            if kernel not in sharers:
                transfers += 1
            if write:
                others = [k for k in sharers if k != kernel]
                if others:
                    # Invalidation *counts* match the single-fault path
                    # (one per stale copy), but the messages are batched:
                    # a bulk pull invalidates a contiguous range with one
                    # range-invalidate broadcast per distinct sharer
                    # group, not one message per page.
                    inval_groups.add(frozenset(others))
                    self.stats.invalidations += len(others)
                self._valid[page] = {kernel}
                self._owner[page] = kernel
            else:
                sharers.add(kernel)
        for group in sorted(inval_groups, key=sorted):
            cost += self.messaging.broadcast(
                "dsm.inval", kernel, sorted(group), payload_bytes=32
            )
        # One logical fault per missing page — the bulk path is cheaper
        # than N single faults only in *time* (one round trip of latency
        # amortised over a pipelined burst), never in *accounting*.
        self.stats.faults += len(missing)
        self.stats.page_transfers += transfers
        self.stats.bytes_transferred += transfers * PAGE_SIZE
        if transfers:
            interconnect = self.messaging.interconnect
            cost += (
                interconnect.latency_s * 2
                + (transfers * (PAGE_SIZE + 64)) / interconnect.bandwidth_bytes_per_s
                + interconnect.per_message_cpu_s
            )
            self.messaging.record_bulk("dsm.bulk", transfers, PAGE_SIZE + 64)
        self.epoch += 1
        return (cost, transfers)

    # ------------------------------------------------------- inspection

    def resident_pages(self, kernel: str) -> int:
        return sum(1 for sharers in self._valid.values() if kernel in sharers)

    def owner_of(self, addr: int) -> Optional[str]:
        return self._owner.get(page_of(addr))

    def all_threads_migrated_cleanup(self, kernel: str) -> int:
        """Drop residual copies once no thread runs on ``kernel``.

        "After migration, the process's data is kept on the source
        kernel until there are residual dependencies."  Returns the
        number of copies dropped.
        """
        dropped = 0
        for page, sharers in list(self._valid.items()):
            if kernel in sharers and self._owner.get(page) != kernel:
                sharers.discard(kernel)
                dropped += 1
        if dropped:
            self.epoch += 1
        return dropped

"""Processes and threads.

Implements the paper's software-state model (Section 3): per-thread
state T_i = <L_i, S_i, R_i> (TLS block, user stack, register file) and
per-process state P (address space, heap, globals).  The kernel-side
per-thread state T^K_i (kernel stack, thread control block) is the
:class:`KernelThreadState` continuation, one per ISA the thread has
visited — the "heterogeneous continuations" of Section 5.1.
"""

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.compiler.toolchain import MultiIsaBinary
from repro.runtime.address_space import AddressSpace
from repro.runtime.heap import HeapAllocator
from repro.runtime.stack import Frame, UserStack


class ThreadState(enum.Enum):
    RUNNABLE = "runnable"
    BLOCKED = "blocked"
    MIGRATING = "migrating"
    DONE = "done"


@dataclass
class KernelThreadState:
    """T^K_i on one kernel: the kernel stack + TCB continuation.

    An application thread "has a per-ISA kernel-space stack"; we track
    its existence and creation cost rather than its contents.
    """

    kernel: str
    kernel_stack_bytes: int = 16 * 1024
    created_at: float = 0.0


@dataclass
class Barrier:
    """A pthread-style barrier, kernel-mediated."""

    barrier_id: int
    parties: int
    waiting: List[int] = field(default_factory=list)
    generation: int = 0


@dataclass
class CondVar:
    """A pthread-style condition variable bound to a mutex at wait time."""

    cond_id: int
    # (tid, mutex_id) pairs parked on this condition.
    waiters: List[Tuple[int, int]] = field(default_factory=list)
    signals: int = 0


@dataclass
class Mutex:
    """A pthread-style mutex, kernel-mediated (futex slow path).

    Ownership survives migration: the lock state lives in the
    replicated kernel service layer, not on either machine.
    """

    mutex_id: int
    owner: Optional[int] = None  # tid
    waiters: List[int] = field(default_factory=list)
    acquisitions: int = 0


class Thread:
    """One application thread."""

    def __init__(
        self,
        tid: int,
        process: "Process",
        machine_name: str,
        stack: UserStack,
        thread_pointer: int,
    ):
        self.tid = tid
        self.process = process
        self.machine_name = machine_name
        self.stack = stack
        self.thread_pointer = thread_pointer  # TLS base (R_i's tp register)
        self.state = ThreadState.RUNNABLE
        # R_i: the user-visible register file on the current ISA.
        self.regs: Dict[str, float] = {}
        # Activation frames, outermost first; engine-managed.
        self.frames: List[Frame] = []
        # Program counter: (block label, instruction index) in frames[-1].
        self.pc: Tuple[str, int] = ("", 0)
        # vDSO migration flag: target machine name, or None.
        self.migrate_target: Optional[str] = None
        # Why we are blocked: ('join', tid) or ('barrier', id).
        self.blocked_on: Optional[Tuple[str, int]] = None
        # Heterogeneous continuations, one per kernel visited.
        self.kernel_state: Dict[str, KernelThreadState] = {
            machine_name: KernelThreadState(machine_name)
        }
        # Accounting.
        self.vtime = 0.0  # per-thread virtual time (seconds)
        self.instructions = 0.0
        self.migrations = 0
        self.exit_value: Optional[float] = None
        self.start_function: str = ""
        self.start_args: List[float] = []

    @property
    def current_frame(self) -> Frame:
        return self.frames[-1]

    def block(self, reason: str, token: int) -> None:
        self.state = ThreadState.BLOCKED
        self.blocked_on = (reason, token)

    def wake(self, at_time: float) -> None:
        self.state = ThreadState.RUNNABLE
        self.blocked_on = None
        self.vtime = max(self.vtime, at_time)

    def __repr__(self) -> str:
        return (
            f"Thread(tid={self.tid}, on={self.machine_name}, "
            f"{self.state.value}, f={len(self.frames)})"
        )


class Process:
    """One application instance inside a heterogeneous OS-container."""

    def __init__(
        self,
        pid: int,
        binary: MultiIsaBinary,
        space: AddressSpace,
        heap: HeapAllocator,
        home_kernel: str,
    ):
        self.pid = pid
        self.binary = binary
        self.space = space
        self.heap = heap
        self.home_kernel = home_kernel
        self.threads: Dict[int, Thread] = {}
        self.barriers: Dict[int, Barrier] = {}
        self.mutexes: Dict[int, Mutex] = {}
        self.condvars: Dict[int, "CondVar"] = {}
        self.output: List[float] = []
        self.exit_code: Optional[int] = None
        self.container = None  # set by the kernel when placed
        self.dsm = None  # set by the loader
        # tid -> reason, for threads killed by crash recovery.  A
        # process with failed threads finished *loudly*: its output and
        # exit code are not trustworthy and callers must check
        # ``failure`` before believing either.
        self.failed_threads: Dict[int, str] = {}
        self._next_stack_index = 0

    @property
    def alive_threads(self) -> List[Thread]:
        return [t for t in self.threads.values() if t.state != ThreadState.DONE]

    @property
    def failure(self) -> Optional[str]:
        """First recorded failure reason, or None if the run was clean."""
        if not self.failed_threads:
            return None
        tid = min(self.failed_threads)
        return f"tid {tid}: {self.failed_threads[tid]}"

    def next_stack_index(self) -> int:
        index = self._next_stack_index
        self._next_stack_index += 1
        return index

    def thread_count_on(self, machine_name: str) -> int:
        return sum(
            1
            for t in self.alive_threads
            if t.machine_name == machine_name
        )

    def __repr__(self) -> str:
        return f"Process(pid={self.pid}, {self.binary.module.name}, threads={len(self.threads)})"

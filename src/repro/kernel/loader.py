"""The heterogeneous binary loader (Section 5.1).

Loads a multi-ISA binary into a fresh address space: every data symbol
at its common address, the per-ISA ``.text`` *aliased* into the same
virtual range (each kernel executes its own ISA's machine code behind
identical addresses), the vDSO page, the heap, and the TLS template.
"When execution migrates between kernels, the machine code mappings are
switched to those of the destination ISA" — with aliased text this is a
page-table flip, not a copy, so the loader marks text pages as
never-transferred for the DSM.
"""

from typing import Optional

from repro import validate
from repro.compiler.toolchain import MultiIsaBinary
from repro.isa.types import type_size
from repro.kernel.process import Process
from repro.kernel.vdso import VdsoPage
from repro.linker.layout import align_up
from repro.runtime.address_space import AddressSpace
from repro.runtime.heap import HeapAllocator

TLS_AREA_GAP = 0x10000  # thread TLS blocks live above the template


def load_binary(
    binary: MultiIsaBinary,
    pid: int,
    home_kernel: str,
    messaging,
    machine_order,
    dsm_backup: bool = False,
) -> Process:
    """Create a process image for ``binary`` homed on ``home_kernel``."""
    space = AddressSpace(binary.vm_map)

    _map_sections(space, binary)
    _init_globals(space, binary)

    heap = HeapAllocator(space)
    process = Process(pid, binary, space, heap, home_kernel)
    process.vdso = VdsoPage(space, machine_order)
    # Validated DSM when REPRO_VALIDATE is on, plain service otherwise.
    process.dsm = validate.make_dsm_service(
        space,
        messaging,
        home_kernel,
        machines=list(machine_order),
        backup=dsm_backup,
    )
    space.page_hook = None  # engine wires DSM access charging itself
    return process


def _map_sections(space: AddressSpace, binary: MultiIsaBinary) -> None:
    layout = binary.layout
    vm = binary.vm_map
    for section, aliased, writable in (
        (".text", True, False),
        (".rodata", False, False),
        (".data", False, True),
        (".bss", False, True),
    ):
        placed = layout.in_section(section)
        if not placed:
            continue
        start = vm.section_base(section)
        end = max(s.end for s in placed)
        space.map_region(
            start, align_up(end - start, 4096), section, aliased=aliased,
            writable=writable,
        )
    # TLS template + per-thread TLS blocks share one region.
    tls_region_size = TLS_AREA_GAP + vm.max_threads * max(
        binary.tls.block_size, 64
    )
    space.map_region(
        vm.tls_template_base,
        align_up(tls_region_size, 4096),
        "tls",
    )
    # Stacks: one region covering all thread stacks.
    stack_low = vm.stack_top - vm.max_threads * vm.stack_size
    space.map_region(stack_low, vm.stack_top - stack_low, "stack")


def _init_globals(space: AddressSpace, binary: MultiIsaBinary) -> None:
    for name, gv in binary.module.globals.items():
        if gv.thread_local:
            continue
        base = binary.global_addresses[name]
        if gv.init:
            space.write_words(base, gv.init, stride=type_size(gv.vt))


def thread_pointer_for(binary: MultiIsaBinary, stack_index: int) -> int:
    """TLS thread pointer for the thread using ``stack_index``.

    Identical on every ISA (deterministic function of the thread slot),
    so L_i's address — like everything else — survives migration.
    """
    vm = binary.vm_map
    block = max(binary.tls.block_size, 64)
    return (
        vm.tls_template_base
        + TLS_AREA_GAP
        + stack_index * block
        + binary.tls.block_size
    )


def init_thread_tls(space: AddressSpace, binary: MultiIsaBinary, tp: int) -> None:
    """Copy the .tdata template into a new thread's TLS block."""
    tls = binary.tls
    for name, values in tls.initial.items():
        base = tp + tls.offsets[name]
        space.write_words(base, values, stride=tls.element_size[name])

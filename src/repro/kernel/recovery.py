"""Crash handling for a replicated-kernel system.

One of the three components the old ``PopcornSystem`` god object was
split into (see also :mod:`repro.kernel.testbed` for boot and
:mod:`repro.kernel.lifecycle` for process lifecycle).
:class:`CrashRecovery` owns the fault plane: fencing a dead kernel off
the messaging layer, killing its resident threads (minus those saved
by an in-flight migration's resume token), scrubbing hDSM directories
and replicated-service replicas, and failing over the VFS home.
"""

from typing import Dict, List

from repro.kernel.process import Thread, ThreadState


class CrashRecovery:
    """Fences crashed kernels and fails threads loudly."""

    def __init__(self, system):
        self.system = system
        # Migration services consulted during crash recovery: a thread
        # whose context already shipped to a live destination survives
        # its source kernel's death via the resume token.
        self.migration_services: List = []

    def register_migration_service(self, service) -> None:
        """Let ``service`` veto thread death during crash recovery."""
        self.migration_services.append(service)

    def crash_kernel(self, name: str) -> Dict[int, object]:
        """Kill kernel ``name``: fence it, kill its threads, scrub state.

        Mirrors what a confirmed failure-detector verdict triggers: the
        dead kernel is fenced off the messaging layer (it neither sends
        nor receives), resident threads die — except those whose
        migration transaction already shipped their context to a live
        destination (the two-phase hand-off's resume token keeps exactly
        one live copy) — every process's hDSM directory is scrubbed,
        and the replicated services drop the dead replica so no later
        RPC routes at it.  Returns the per-pid scrub reports.
        """
        system = self.system
        kernel = system.kernels.get(name)
        if kernel is None:
            raise KeyError(f"unknown machine {name}")
        if not kernel.alive:
            return {}
        kernel.alive = False
        system.messaging.fenced.add(name)
        if system.tracer is not None:
            system.tracer.instant(
                "kernel.crash", "fault", track=name, kernel=name
            )
            system.tracer.metrics.counter("fault.kernel_crashes").inc()
        saved: set = set()
        for service in self.migration_services:
            saved |= service.threads_with_surviving_copy(name)
        for thread in list(kernel.threads.values()):
            if thread.tid in saved or thread.state == ThreadState.DONE:
                continue
            self.fail_thread(thread, f"kernel {name} crashed")
        scrubs: Dict[int, object] = {}
        for pid in sorted(system.processes):
            process = system.processes[pid]
            if process.dsm is not None:
                scrubs[pid] = process.dsm.scrub_dead_kernel(name)
        system.services.scrub_kernel(name)
        if system.vfs.home == name:
            # The replicated VFS fails over to the next live kernel.
            survivors = [
                m for m in system.machine_order if system.kernels[m].alive
            ]
            if survivors:
                system.vfs.home = survivors[0]
        return scrubs

    def fail_thread(self, thread: Thread, reason: str) -> None:
        """Kill one thread loudly: record the failure, wake joiners."""
        system = self.system
        if thread.state == ThreadState.DONE:
            return
        system.kernels[thread.machine_name].release_thread(thread)
        thread.state = ThreadState.DONE
        thread.blocked_on = None
        if thread.exit_value is None:
            thread.exit_value = 0.0
        process = thread.process
        process.failed_threads[thread.tid] = reason
        # Joiners observe the death (join returns) instead of hanging.
        for other in process.threads.values():
            if other.blocked_on == ("join", thread.tid):
                other.wake(max(other.vtime, thread.vtime))
                if system.kernels[other.machine_name].alive:
                    system.machines[other.machine_name].thread_started()

"""The vDSO migration-flag page (Section 5.2.1).

"The kernel scheduler interacts with the application through a shared
memory page between user- and kernel-space (vDSO).  When the scheduler
wants threads to migrate, it sets a flag on the page."  One word per
thread slot holds 0 (stay) or 1 + machine-index (migrate there); the
migration-point check is a single memory read.
"""

from typing import Optional

from repro.runtime.address_space import AddressSpace

VDSO_PAGE_BYTES = 4096
MAX_SLOTS = VDSO_PAGE_BYTES // 8


class VdsoPage:
    """Per-process scheduler/application mailbox."""

    def __init__(self, space: AddressSpace, machine_order):
        self.space = space
        self.base = space.vm_map.vdso_base
        self.machine_order = list(machine_order)
        space.map_region(self.base, VDSO_PAGE_BYTES, "[vdso]", aliased=True)

    def _slot(self, tid: int) -> int:
        return self.base + (tid % MAX_SLOTS) * 8

    def request_migration(self, tid: int, machine_name: str) -> None:
        index = self.machine_order.index(machine_name)
        self.space.write(self._slot(tid), 1 + index)

    def clear(self, tid: int) -> None:
        self.space.write(self._slot(tid), 0)

    def read_target(self, tid: int) -> Optional[str]:
        """The migration-point flag check (one memory read)."""
        raw = int(self.space.read(self._slot(tid)))
        if raw == 0:
            return None
        return self.machine_order[raw - 1]

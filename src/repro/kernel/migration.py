"""The thread migration service.

Migration sequence at a migration point (Sections 5.1 and 5.3):

1. the user-space runtime transforms the stack into the inactive half
   (:class:`repro.runtime.transform.StackTransformer`) and maps the
   register state (r_AB) — charged to the thread at the *source*
   machine's speed;
2. the thread "makes a system call to the thread migration service":
   the source kernel ships the thread context (registers + metadata) to
   the destination kernel over the messaging layer;
3. the destination kernel materialises a heterogeneous continuation
   (fresh per-ISA kernel stack + TCB) and the container's namespaces
   span to it if they had not already;
4. execution resumes immediately; memory follows on demand through the
   hDSM (no stop-the-world) — visible as the post-migration page-pull
   spike of Figure 11.

Homogeneous-ISA migration (the dynamic policies may also move work
between identical x86 boxes) skips the transformation but pays the
kernel-level hand-off.

Crash consistency.  The hand-off is a two-phase protocol:

    PREPARE   stack transformed + claimed at the source; nothing has
              left the source yet — a crash of either side aborts
              (destination death) or kills the thread (source death).
    TRANSFER  the thread context (the *resume token*) now exists at the
              destination; from here a source crash is survivable — the
              destination promotes its copy (idempotent: the token is
              applied at most once).
    PUBLISH   the replicated process table names the destination; an
              abort must revert it.
    COMMIT    the thread is rebound to the destination kernel; the
              source copy is dead.

Every step announces itself through ``MessagingLayer.chaos_step`` so
the chaos harness can enumerate and trigger crashes at each one.  After
each step the service re-checks both endpoints and either proceeds,
aborts back to the source, or promotes the destination copy — so a
crash at any step leaves exactly one live copy of the thread.
"""

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Set

from repro import validate
from repro.kernel.process import KernelThreadState, Thread, ThreadState
from repro.runtime.transform import TransformStats

THREAD_CONTEXT_BYTES = 2048  # register file + unwound-metadata summary
CONTINUATION_SETUP_S = 12e-6  # kernel stack + TCB creation on the target
NAMESPACE_REPLICA_BYTES = 512


class TxnPhase(enum.Enum):
    PREPARING = "preparing"
    PREPARED = "prepared"
    TRANSFERRED = "transferred"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass
class MigrationTxn:
    """One in-flight migration hand-off (the resume token's record)."""

    token: str
    pid: int
    tid: int
    src: str
    dst: str
    site: int
    phase: TxnPhase = TxnPhase.PREPARING
    # Whether the process table already names the destination.
    published: bool = False
    thread: Optional[Thread] = None
    # Span bookkeeping for this hand-off; None when tracing is off.
    trace: Optional["_HandoffTrace"] = None


class _HandoffTrace:
    """Span bookkeeping for one traced migration hand-off.

    The root ``migrate`` span is opened when the protocol starts (at
    the thread's virtual time) and decomposed into phase children —
    ``migrate.transform`` / ``migrate.dsm`` / ``migrate.transfer`` /
    ``migrate.publish`` / ``migrate.commit`` (or ``migrate.abort`` /
    ``migrate.promote`` on the crash paths) — whose intervals tile the
    root exactly, so the critical-path analyzer can re-derive the
    paper's transform / DSM / hand-off latency decomposition from the
    trace alone.
    """

    def __init__(self, tracer, t0: float, track: str, **attrs):
        self.tracer = tracer
        self.t0 = t0
        self.cursor = t0
        self.root = tracer.begin(
            "migrate", "migrate", start_s=t0, track=track, **attrs
        )

    def child(self, name: str, end_s: float, **attrs):
        """Emit a phase child covering [cursor, end_s], advance cursor."""
        end_s = max(end_s, self.cursor)
        self.tracer.complete(
            name, "migrate", self.cursor, end_s - self.cursor,
            track=self.root.track, parent=self.root, **attrs
        )
        self.cursor = end_s

    def close(self, total_seconds: float, **attrs) -> None:
        """Close the root span ``total_seconds`` after its start."""
        self.tracer.end(self.root, end_s=self.t0 + total_seconds, **attrs)

    def abandon(self, **attrs) -> None:
        """Close a root left open by a mid-protocol KernelCrashed."""
        if self.root.end_s is None:
            self.tracer.end(self.root, end_s=self.cursor, **attrs)


@dataclass
class MigrationOutcome:
    """What one migration cost and produced."""

    src_machine: str
    dst_machine: str
    cross_isa: bool
    transform: Optional[TransformStats]
    transform_seconds: float
    handoff_seconds: float
    #: True if the hand-off rolled back and the thread stayed at the source.
    aborted: bool = False
    #: True if the destination promoted its resume token after the
    #: source died mid-hand-off.
    resumed_from_token: bool = False
    #: The root ``migrate`` span when tracing is on (else None); the
    #: engine uses its id to flow-link the post-migration page pulls.
    span: Optional[object] = None

    @property
    def total_seconds(self) -> float:
        return self.transform_seconds + self.handoff_seconds


class MigrationService:
    """Kernel-level half of execution migration."""

    def __init__(self, system):
        self.system = system
        self.migrations = 0
        self.cross_isa_migrations = 0
        self.aborted_migrations = 0
        self.resumed_migrations = 0
        self._active: Dict[str, MigrationTxn] = {}
        self._next_token = 1
        register = getattr(system, "register_migration_service", None)
        if register is not None:
            register(self)

    # ------------------------------------------------- crash-recovery API

    def threads_with_surviving_copy(self, dead_kernel: str) -> Set[int]:
        """Tids whose context already reached a live destination.

        Consulted by ``PopcornSystem.crash_kernel``: these threads are
        *not* killed with their source kernel — the in-flight hand-off
        promotes the destination copy instead (the resume token).
        """
        saved: Set[int] = set()
        for txn in self._active.values():
            if (
                txn.phase is TxnPhase.TRANSFERRED
                and txn.src == dead_kernel
                and self.system.kernels[txn.dst].alive
            ):
                saved.add(txn.tid)
        return saved

    # ---------------------------------------------------------- migrate

    def migrate_thread(
        self, thread: Thread, dst_machine: str, migpoint_site: int
    ) -> MigrationOutcome:
        """Move ``thread`` to ``dst_machine``; returns the outcome.

        The caller (execution engine) is responsible for charging
        ``outcome.total_seconds`` to the thread's virtual time.  If the
        outcome is ``aborted`` the thread is still at the source.
        """
        system = self.system
        src_machine = thread.machine_name
        if dst_machine == src_machine:
            raise ValueError("migration to the current machine")
        src_isa = system.isa_of(src_machine)
        dst_isa = system.isa_of(dst_machine)
        process = thread.process
        cross = src_isa != dst_isa

        tracer = system.messaging.tracer
        if not system.kernels[dst_machine].alive:
            # Destination already confirmed dead: refuse before doing
            # any work — the thread keeps running at the source.
            self.aborted_migrations += 1
            process.vdso.clear(thread.tid)
            if tracer is not None:
                tracer.instant(
                    "migrate.refused", "migrate", ts=thread.vtime,
                    track=src_machine, tid=thread.tid, dst=dst_machine,
                )
                tracer.metrics.counter("migrate.refused").inc()
            return MigrationOutcome(
                src_machine, dst_machine, cross, None, 0.0, 0.0, aborted=True
            )

        txn = MigrationTxn(
            token=f"mig-{self._next_token}",
            pid=process.pid,
            tid=thread.tid,
            src=src_machine,
            dst=dst_machine,
            site=migpoint_site,
            thread=thread,
        )
        self._next_token += 1
        self._active[txn.token] = txn
        if tracer is not None:
            txn.trace = _HandoffTrace(
                tracer, thread.vtime, src_machine,
                token=txn.token, pid=process.pid, tid=thread.tid,
                src=src_machine, dst=dst_machine, cross_isa=cross,
                site=migpoint_site,
            )
        try:
            outcome = self._run_protocol(
                txn, thread, process, src_isa, dst_isa, migpoint_site
            )
        finally:
            if txn.trace is not None:
                txn.trace.abandon(crashed=True)
            del self._active[txn.token]
        if tracer is not None:
            outcome.span = txn.trace.root
            metrics = tracer.metrics
            metrics.counter("migrate.count").inc()
            if cross:
                metrics.counter("migrate.cross_isa").inc()
            if outcome.aborted:
                metrics.counter("migrate.aborted").inc()
            if outcome.resumed_from_token:
                metrics.counter("migrate.resumed").inc()
            metrics.histogram("migrate.transform_s").observe(
                outcome.transform_seconds
            )
            metrics.histogram("migrate.handoff_s").observe(
                outcome.handoff_seconds
            )
            metrics.histogram("migrate.total_s").observe(
                outcome.total_seconds
            )
        return outcome

    def _run_protocol(
        self, txn, thread, process, src_isa, dst_isa, migpoint_site
    ) -> MigrationOutcome:
        system = self.system
        src_machine, dst_machine = txn.src, txn.dst
        cross = src_isa != dst_isa

        # ---- PREPARE: user-space state transformation (cross-ISA only).
        transform_stats = None
        transform_seconds = 0.0
        claim_pages = 0
        if cross:
            transformer = validate.make_stack_transformer(
                process.binary, process.space
            )
            transform_stats = transformer.transform(
                thread, dst_isa, migpoint_site
            )
            transform_seconds = transform_stats.latency_seconds(src_isa)
            # The rewritten stack was produced on the *source* machine:
            # claim its pages for the source kernel so the destination
            # faults them over on demand (no stop-the-world, Fig. 11).
            innermost = thread.frames[-1]
            low = innermost.cfa - innermost.mf.frame.frame_size
            _, claim_pages = process.dsm.ensure_range(
                src_machine, low, thread.stack.top - low, write=True
            )
        txn.phase = TxnPhase.PREPARED
        trace = txn.trace
        if trace is not None:
            trace.child(
                "migrate.transform", trace.t0 + transform_seconds,
                cross_isa=cross,
            )
            # The stack claim costs no hand-off latency (served locally
            # at the source), so its child is an instant in the tiling.
            trace.child(
                "migrate.dsm", trace.t0 + transform_seconds,
                claim_pages=claim_pages,
            )
        if system.messaging.chaos_step(
            "migrate.prepare", src=src_machine, dst=dst_machine
        ):
            outcome = self._after_crash(
                txn, thread, process, transform_stats, transform_seconds, 0.0,
                src_isa, dst_isa, migpoint_site,
            )
            if outcome is not None:
                return outcome

        # ---- TRANSFER: the context (resume token) ships to the target.
        handoff = system.messaging.rpc(
            "migrate.thread",
            src_machine,
            dst_machine,
            request_bytes=THREAD_CONTEXT_BYTES,
            reply_bytes=64,
        )
        txn.phase = TxnPhase.TRANSFERRED
        if trace is not None:
            trace.child(
                "migrate.transfer",
                trace.t0 + transform_seconds + handoff,
                context_bytes=THREAD_CONTEXT_BYTES,
            )
        if system.messaging.chaos_step(
            "migrate.transfer", src=src_machine, dst=dst_machine
        ):
            outcome = self._after_crash(
                txn, thread, process, transform_stats, transform_seconds,
                handoff, src_isa, dst_isa, migpoint_site,
            )
            if outcome is not None:
                return outcome

        # Container namespaces span to the destination kernel.
        created = process.container.span_to(dst_machine)
        if created:
            handoff += system.messaging.rpc(
                "ns.replicate",
                src_machine,
                dst_machine,
                request_bytes=created * NAMESPACE_REPLICA_BYTES,
                reply_bytes=64,
            )

        # ---- PUBLISH: the replicated process table observes the move,
        # so every kernel can still route signals/joins to the thread.
        handoff += system.services.proctable.note_migration(
            src_machine, process.pid, thread.tid, dst_machine
        )
        txn.published = True
        if trace is not None:
            trace.child(
                "migrate.publish",
                trace.t0 + transform_seconds + handoff,
                namespaces=created,
            )
        if system.messaging.chaos_step(
            "migrate.publish", src=src_machine, dst=dst_machine
        ):
            outcome = self._after_crash(
                txn, thread, process, transform_stats, transform_seconds,
                handoff, src_isa, dst_isa, migpoint_site,
            )
            if outcome is not None:
                return outcome

        # Heterogeneous continuation on the destination kernel.
        if dst_machine not in thread.kernel_state:
            thread.kernel_state[dst_machine] = KernelThreadState(
                dst_machine, created_at=system.clock.now
            )
            handoff += CONTINUATION_SETUP_S

        # ---- COMMIT: rebind the thread.
        src_kernel = system.kernels[src_machine]
        dst_kernel = system.kernels[dst_machine]
        src_kernel.release_thread(thread)
        thread.machine_name = dst_machine
        dst_kernel.adopt_thread(thread)

        process.vdso.clear(thread.tid)
        thread.migrations += 1
        self.migrations += 1
        if cross:
            self.cross_isa_migrations += 1
        txn.phase = TxnPhase.COMMITTED
        if system.messaging.chaos_step(
            "migrate.commit", src=src_machine, dst=dst_machine
        ):
            outcome = self._after_crash(
                txn, thread, process, transform_stats, transform_seconds,
                handoff, src_isa, dst_isa, migpoint_site,
            )
            if outcome is not None:
                return outcome

        # The transfer shows up on both machines' I/O power rails.
        duration = transform_seconds + handoff
        if trace is not None:
            trace.child("migrate.commit", trace.t0 + duration)
            trace.close(duration)
        system.machines[src_machine].note_io_activity(duration)
        system.machines[dst_machine].note_io_activity(duration)

        # Source pages become residual state, pulled over on demand.
        return MigrationOutcome(
            src_machine=src_machine,
            dst_machine=dst_machine,
            cross_isa=cross,
            transform=transform_stats,
            transform_seconds=transform_seconds,
            handoff_seconds=handoff,
        )

    # -------------------------------------------------- crash handling

    def _after_crash(
        self,
        txn,
        thread,
        process,
        transform_stats,
        transform_seconds,
        handoff,
        src_isa,
        dst_isa,
        migpoint_site,
    ) -> Optional[MigrationOutcome]:
        """Decide the fate of the hand-off after a crash fired.

        Returns an outcome (abort / promote) or None to proceed —
        raises ``KernelCrashed`` when the thread itself died with its
        kernel (crash recovery already marked it DONE).
        """
        from repro.kernel.kernel import KernelCrashed

        system = self.system
        if thread.state is ThreadState.DONE:
            # The thread's only copy died with its kernel: before
            # TRANSFER nothing left the source; after COMMIT the source
            # copy was already gone.  Exactly zero-survivor cases are
            # real deaths, recorded loudly by crash_kernel.
            raise KernelCrashed(thread.machine_name)

        dst_alive = system.kernels[txn.dst].alive
        src_alive = system.kernels[txn.src].alive
        if txn.phase is TxnPhase.COMMITTED:
            # Already committed; the source's death is irrelevant now.
            return None
        if not dst_alive:
            return self._abort(
                txn, thread, process, transform_stats, transform_seconds,
                handoff, src_isa, dst_isa, migpoint_site,
            )
        if not src_alive:
            return self._promote(
                txn, thread, process, transform_stats, transform_seconds,
                handoff, src_isa,
            )
        # Some third kernel died; the hand-off itself is unaffected.
        return None

    def _abort(
        self,
        txn,
        thread,
        process,
        transform_stats,
        transform_seconds,
        handoff,
        src_isa,
        dst_isa,
        migpoint_site,
    ) -> MigrationOutcome:
        """Destination died mid-hand-off: roll back to the source."""
        system = self.system
        cross = src_isa != dst_isa
        if cross and transform_stats is not None:
            # The stack was rewritten for the destination ISA; rewrite
            # it back so the thread can resume at the source.
            transformer = validate.make_stack_transformer(
                process.binary, process.space
            )
            back = transformer.transform(thread, src_isa, migpoint_site)
            transform_seconds += back.latency_seconds(src_isa)
        if txn.published:
            # Revert the process table to name the source again.  The
            # dead destination was already scrubbed from the broadcast
            # set by crash recovery.
            handoff += system.services.proctable.note_migration(
                txn.src, process.pid, thread.tid, txn.src
            )
        process.vdso.clear(thread.tid)
        txn.phase = TxnPhase.ABORTED
        self.aborted_migrations += 1
        duration = transform_seconds + handoff
        if txn.trace is not None:
            txn.trace.child(
                "migrate.abort", txn.trace.t0 + duration, dst_dead=True
            )
            txn.trace.close(duration, aborted=True)
        system.machines[txn.src].note_io_activity(duration)
        return MigrationOutcome(
            src_machine=txn.src,
            dst_machine=txn.dst,
            cross_isa=cross,
            transform=transform_stats,
            transform_seconds=transform_seconds,
            handoff_seconds=handoff,
            aborted=True,
        )

    def _promote(
        self,
        txn,
        thread,
        process,
        transform_stats,
        transform_seconds,
        handoff,
        src_isa,
    ) -> MigrationOutcome:
        """Source died after TRANSFER: the destination applies its token.

        Idempotent by construction — the token is consumed here and the
        transaction retires, so it can never be applied twice; the
        source copy is fenced and can never run again.
        """
        system = self.system
        dst_isa = system.isa_of(txn.dst)
        cross = src_isa != dst_isa
        # Namespaces span locally (their config is re-derivable from the
        # replicated services; the dead source cannot ship a replica).
        process.container.span_to(txn.dst)
        if not txn.published:
            # The destination publishes the move itself, as origin.
            handoff += system.services.proctable.note_migration(
                txn.dst, process.pid, thread.tid, txn.dst
            )
            txn.published = True
        if txn.dst not in thread.kernel_state:
            thread.kernel_state[txn.dst] = KernelThreadState(
                txn.dst, created_at=system.clock.now
            )
            handoff += CONTINUATION_SETUP_S
        system.kernels[txn.src].release_thread(thread)
        thread.machine_name = txn.dst
        system.kernels[txn.dst].adopt_thread(thread)
        process.vdso.clear(thread.tid)
        thread.migrations += 1
        self.migrations += 1
        if cross:
            self.cross_isa_migrations += 1
        self.resumed_migrations += 1
        txn.phase = TxnPhase.COMMITTED
        duration = transform_seconds + handoff
        if txn.trace is not None:
            txn.trace.child(
                "migrate.promote", txn.trace.t0 + duration, src_dead=True
            )
            txn.trace.close(duration, resumed=True)
        system.machines[txn.dst].note_io_activity(duration)
        return MigrationOutcome(
            src_machine=txn.src,
            dst_machine=txn.dst,
            cross_isa=cross,
            transform=transform_stats,
            transform_seconds=transform_seconds,
            handoff_seconds=handoff,
            resumed_from_token=True,
        )

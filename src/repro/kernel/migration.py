"""The thread migration service.

Migration sequence at a migration point (Sections 5.1 and 5.3):

1. the user-space runtime transforms the stack into the inactive half
   (:class:`repro.runtime.transform.StackTransformer`) and maps the
   register state (r_AB) — charged to the thread at the *source*
   machine's speed;
2. the thread "makes a system call to the thread migration service":
   the source kernel ships the thread context (registers + metadata) to
   the destination kernel over the messaging layer;
3. the destination kernel materialises a heterogeneous continuation
   (fresh per-ISA kernel stack + TCB) and the container's namespaces
   span to it if they had not already;
4. execution resumes immediately; memory follows on demand through the
   hDSM (no stop-the-world) — visible as the post-migration page-pull
   spike of Figure 11.

Homogeneous-ISA migration (the dynamic policies may also move work
between identical x86 boxes) skips the transformation but pays the
kernel-level hand-off.
"""

from dataclasses import dataclass
from typing import Optional

from repro import validate
from repro.kernel.process import KernelThreadState, Thread, ThreadState
from repro.runtime.transform import TransformStats

THREAD_CONTEXT_BYTES = 2048  # register file + unwound-metadata summary
CONTINUATION_SETUP_S = 12e-6  # kernel stack + TCB creation on the target
NAMESPACE_REPLICA_BYTES = 512


@dataclass
class MigrationOutcome:
    """What one migration cost and produced."""

    src_machine: str
    dst_machine: str
    cross_isa: bool
    transform: Optional[TransformStats]
    transform_seconds: float
    handoff_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.transform_seconds + self.handoff_seconds


class MigrationService:
    """Kernel-level half of execution migration."""

    def __init__(self, system):
        self.system = system
        self.migrations = 0
        self.cross_isa_migrations = 0

    def migrate_thread(
        self, thread: Thread, dst_machine: str, migpoint_site: int
    ) -> MigrationOutcome:
        """Move ``thread`` to ``dst_machine``; returns the outcome.

        The caller (execution engine) is responsible for charging
        ``outcome.total_seconds`` to the thread's virtual time.
        """
        system = self.system
        src_machine = thread.machine_name
        if dst_machine == src_machine:
            raise ValueError("migration to the current machine")
        src_isa = system.isa_of(src_machine)
        dst_isa = system.isa_of(dst_machine)
        process = thread.process

        # 1. User-space state transformation (cross-ISA only).
        transform_stats = None
        transform_seconds = 0.0
        if src_isa != dst_isa:
            transformer = validate.make_stack_transformer(
                process.binary, process.space
            )
            transform_stats = transformer.transform(
                thread, dst_isa, migpoint_site
            )
            transform_seconds = transform_stats.latency_seconds(src_isa)
            # The rewritten stack was produced on the *source* machine:
            # claim its pages for the source kernel so the destination
            # faults them over on demand (no stop-the-world, Fig. 11).
            innermost = thread.frames[-1]
            low = innermost.cfa - innermost.mf.frame.frame_size
            process.dsm.ensure_range(
                src_machine, low, thread.stack.top - low, write=True
            )

        # 2. Kernel hand-off over the messaging layer.
        handoff = system.messaging.rpc(
            "migrate.thread",
            src_machine,
            dst_machine,
            request_bytes=THREAD_CONTEXT_BYTES,
            reply_bytes=64,
        )

        # 3. Container namespaces span to the destination kernel.
        created = process.container.span_to(dst_machine)
        if created:
            handoff += system.messaging.rpc(
                "ns.replicate",
                src_machine,
                dst_machine,
                request_bytes=created * NAMESPACE_REPLICA_BYTES,
                reply_bytes=64,
            )

        # 4. The replicated process table observes the move, so every
        # kernel can still route signals/joins to the thread.
        handoff += system.services.proctable.note_migration(
            src_machine, process.pid, thread.tid, dst_machine
        )

        # 5. Heterogeneous continuation on the destination kernel.
        if dst_machine not in thread.kernel_state:
            thread.kernel_state[dst_machine] = KernelThreadState(
                dst_machine, created_at=system.clock.now
            )
            handoff += CONTINUATION_SETUP_S

        # Rebind the thread.
        src_kernel = system.kernels[src_machine]
        dst_kernel = system.kernels[dst_machine]
        src_kernel.release_thread(thread)
        thread.machine_name = dst_machine
        dst_kernel.adopt_thread(thread)

        process.vdso.clear(thread.tid)
        thread.migrations += 1
        self.migrations += 1
        cross = src_isa != dst_isa
        if cross:
            self.cross_isa_migrations += 1

        # The transfer shows up on both machines' I/O power rails.
        duration = transform_seconds + handoff
        system.machines[src_machine].note_io_activity(duration)
        system.machines[dst_machine].note_io_activity(duration)

        # Source pages become residual state, pulled over on demand.
        return MigrationOutcome(
            src_machine=src_machine,
            dst_machine=dst_machine,
            cross_isa=cross,
            transform=transform_stats,
            transform_seconds=transform_seconds,
            handoff_seconds=handoff,
        )

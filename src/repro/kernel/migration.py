"""The thread migration service.

Migration sequence at a migration point (Sections 5.1 and 5.3):

1. the user-space runtime transforms the stack into the inactive half
   (:class:`repro.runtime.transform.StackTransformer`) and maps the
   register state (r_AB) — charged to the thread at the *source*
   machine's speed;
2. the thread "makes a system call to the thread migration service":
   the source kernel ships the thread context (registers + metadata) to
   the destination kernel over the messaging layer;
3. the destination kernel materialises a heterogeneous continuation
   (fresh per-ISA kernel stack + TCB) and the container's namespaces
   span to it if they had not already;
4. execution resumes immediately; memory follows on demand through the
   hDSM (no stop-the-world) — visible as the post-migration page-pull
   spike of Figure 11.

Homogeneous-ISA migration (the dynamic policies may also move work
between identical x86 boxes) skips the transformation but pays the
kernel-level hand-off.

Crash consistency.  The hand-off is a two-phase protocol:

    PREPARE   stack transformed + claimed at the source; nothing has
              left the source yet — a crash of either side aborts
              (destination death) or kills the thread (source death).
    TRANSFER  the thread context (the *resume token*) now exists at the
              destination; from here a source crash is survivable — the
              destination promotes its copy (idempotent: the token is
              applied at most once).
    PUBLISH   the replicated process table names the destination; an
              abort must revert it.
    COMMIT    the thread is rebound to the destination kernel; the
              source copy is dead.

Every step announces itself through ``MessagingLayer.chaos_step`` so
the chaos harness can enumerate and trigger crashes at each one.  After
each step the service re-checks both endpoints and either proceeds,
aborts back to the source, or promotes the destination copy — so a
crash at any step leaves exactly one live copy of the thread.
"""

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Set

from repro import validate
from repro.kernel.process import KernelThreadState, Thread, ThreadState
from repro.runtime.transform import TransformStats

THREAD_CONTEXT_BYTES = 2048  # register file + unwound-metadata summary
CONTINUATION_SETUP_S = 12e-6  # kernel stack + TCB creation on the target
NAMESPACE_REPLICA_BYTES = 512


class TxnPhase(enum.Enum):
    PREPARING = "preparing"
    PREPARED = "prepared"
    TRANSFERRED = "transferred"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass
class MigrationTxn:
    """One in-flight migration hand-off (the resume token's record)."""

    token: str
    pid: int
    tid: int
    src: str
    dst: str
    site: int
    phase: TxnPhase = TxnPhase.PREPARING
    # Whether the process table already names the destination.
    published: bool = False
    thread: Optional[Thread] = None


@dataclass
class MigrationOutcome:
    """What one migration cost and produced."""

    src_machine: str
    dst_machine: str
    cross_isa: bool
    transform: Optional[TransformStats]
    transform_seconds: float
    handoff_seconds: float
    #: True if the hand-off rolled back and the thread stayed at the source.
    aborted: bool = False
    #: True if the destination promoted its resume token after the
    #: source died mid-hand-off.
    resumed_from_token: bool = False

    @property
    def total_seconds(self) -> float:
        return self.transform_seconds + self.handoff_seconds


class MigrationService:
    """Kernel-level half of execution migration."""

    def __init__(self, system):
        self.system = system
        self.migrations = 0
        self.cross_isa_migrations = 0
        self.aborted_migrations = 0
        self.resumed_migrations = 0
        self._active: Dict[str, MigrationTxn] = {}
        self._next_token = 1
        register = getattr(system, "register_migration_service", None)
        if register is not None:
            register(self)

    # ------------------------------------------------- crash-recovery API

    def threads_with_surviving_copy(self, dead_kernel: str) -> Set[int]:
        """Tids whose context already reached a live destination.

        Consulted by ``PopcornSystem.crash_kernel``: these threads are
        *not* killed with their source kernel — the in-flight hand-off
        promotes the destination copy instead (the resume token).
        """
        saved: Set[int] = set()
        for txn in self._active.values():
            if (
                txn.phase is TxnPhase.TRANSFERRED
                and txn.src == dead_kernel
                and self.system.kernels[txn.dst].alive
            ):
                saved.add(txn.tid)
        return saved

    # ---------------------------------------------------------- migrate

    def migrate_thread(
        self, thread: Thread, dst_machine: str, migpoint_site: int
    ) -> MigrationOutcome:
        """Move ``thread`` to ``dst_machine``; returns the outcome.

        The caller (execution engine) is responsible for charging
        ``outcome.total_seconds`` to the thread's virtual time.  If the
        outcome is ``aborted`` the thread is still at the source.
        """
        system = self.system
        src_machine = thread.machine_name
        if dst_machine == src_machine:
            raise ValueError("migration to the current machine")
        src_isa = system.isa_of(src_machine)
        dst_isa = system.isa_of(dst_machine)
        process = thread.process
        cross = src_isa != dst_isa

        if not system.kernels[dst_machine].alive:
            # Destination already confirmed dead: refuse before doing
            # any work — the thread keeps running at the source.
            self.aborted_migrations += 1
            process.vdso.clear(thread.tid)
            return MigrationOutcome(
                src_machine, dst_machine, cross, None, 0.0, 0.0, aborted=True
            )

        txn = MigrationTxn(
            token=f"mig-{self._next_token}",
            pid=process.pid,
            tid=thread.tid,
            src=src_machine,
            dst=dst_machine,
            site=migpoint_site,
            thread=thread,
        )
        self._next_token += 1
        self._active[txn.token] = txn
        try:
            return self._run_protocol(
                txn, thread, process, src_isa, dst_isa, migpoint_site
            )
        finally:
            del self._active[txn.token]

    def _run_protocol(
        self, txn, thread, process, src_isa, dst_isa, migpoint_site
    ) -> MigrationOutcome:
        system = self.system
        src_machine, dst_machine = txn.src, txn.dst
        cross = src_isa != dst_isa

        # ---- PREPARE: user-space state transformation (cross-ISA only).
        transform_stats = None
        transform_seconds = 0.0
        if cross:
            transformer = validate.make_stack_transformer(
                process.binary, process.space
            )
            transform_stats = transformer.transform(
                thread, dst_isa, migpoint_site
            )
            transform_seconds = transform_stats.latency_seconds(src_isa)
            # The rewritten stack was produced on the *source* machine:
            # claim its pages for the source kernel so the destination
            # faults them over on demand (no stop-the-world, Fig. 11).
            innermost = thread.frames[-1]
            low = innermost.cfa - innermost.mf.frame.frame_size
            process.dsm.ensure_range(
                src_machine, low, thread.stack.top - low, write=True
            )
        txn.phase = TxnPhase.PREPARED
        if system.messaging.chaos_step(
            "migrate.prepare", src=src_machine, dst=dst_machine
        ):
            outcome = self._after_crash(
                txn, thread, process, transform_stats, transform_seconds, 0.0,
                src_isa, dst_isa, migpoint_site,
            )
            if outcome is not None:
                return outcome

        # ---- TRANSFER: the context (resume token) ships to the target.
        handoff = system.messaging.rpc(
            "migrate.thread",
            src_machine,
            dst_machine,
            request_bytes=THREAD_CONTEXT_BYTES,
            reply_bytes=64,
        )
        txn.phase = TxnPhase.TRANSFERRED
        if system.messaging.chaos_step(
            "migrate.transfer", src=src_machine, dst=dst_machine
        ):
            outcome = self._after_crash(
                txn, thread, process, transform_stats, transform_seconds,
                handoff, src_isa, dst_isa, migpoint_site,
            )
            if outcome is not None:
                return outcome

        # Container namespaces span to the destination kernel.
        created = process.container.span_to(dst_machine)
        if created:
            handoff += system.messaging.rpc(
                "ns.replicate",
                src_machine,
                dst_machine,
                request_bytes=created * NAMESPACE_REPLICA_BYTES,
                reply_bytes=64,
            )

        # ---- PUBLISH: the replicated process table observes the move,
        # so every kernel can still route signals/joins to the thread.
        handoff += system.services.proctable.note_migration(
            src_machine, process.pid, thread.tid, dst_machine
        )
        txn.published = True
        if system.messaging.chaos_step(
            "migrate.publish", src=src_machine, dst=dst_machine
        ):
            outcome = self._after_crash(
                txn, thread, process, transform_stats, transform_seconds,
                handoff, src_isa, dst_isa, migpoint_site,
            )
            if outcome is not None:
                return outcome

        # Heterogeneous continuation on the destination kernel.
        if dst_machine not in thread.kernel_state:
            thread.kernel_state[dst_machine] = KernelThreadState(
                dst_machine, created_at=system.clock.now
            )
            handoff += CONTINUATION_SETUP_S

        # ---- COMMIT: rebind the thread.
        src_kernel = system.kernels[src_machine]
        dst_kernel = system.kernels[dst_machine]
        src_kernel.release_thread(thread)
        thread.machine_name = dst_machine
        dst_kernel.adopt_thread(thread)

        process.vdso.clear(thread.tid)
        thread.migrations += 1
        self.migrations += 1
        if cross:
            self.cross_isa_migrations += 1
        txn.phase = TxnPhase.COMMITTED
        if system.messaging.chaos_step(
            "migrate.commit", src=src_machine, dst=dst_machine
        ):
            outcome = self._after_crash(
                txn, thread, process, transform_stats, transform_seconds,
                handoff, src_isa, dst_isa, migpoint_site,
            )
            if outcome is not None:
                return outcome

        # The transfer shows up on both machines' I/O power rails.
        duration = transform_seconds + handoff
        system.machines[src_machine].note_io_activity(duration)
        system.machines[dst_machine].note_io_activity(duration)

        # Source pages become residual state, pulled over on demand.
        return MigrationOutcome(
            src_machine=src_machine,
            dst_machine=dst_machine,
            cross_isa=cross,
            transform=transform_stats,
            transform_seconds=transform_seconds,
            handoff_seconds=handoff,
        )

    # -------------------------------------------------- crash handling

    def _after_crash(
        self,
        txn,
        thread,
        process,
        transform_stats,
        transform_seconds,
        handoff,
        src_isa,
        dst_isa,
        migpoint_site,
    ) -> Optional[MigrationOutcome]:
        """Decide the fate of the hand-off after a crash fired.

        Returns an outcome (abort / promote) or None to proceed —
        raises ``KernelCrashed`` when the thread itself died with its
        kernel (crash recovery already marked it DONE).
        """
        from repro.kernel.kernel import KernelCrashed

        system = self.system
        if thread.state is ThreadState.DONE:
            # The thread's only copy died with its kernel: before
            # TRANSFER nothing left the source; after COMMIT the source
            # copy was already gone.  Exactly zero-survivor cases are
            # real deaths, recorded loudly by crash_kernel.
            raise KernelCrashed(thread.machine_name)

        dst_alive = system.kernels[txn.dst].alive
        src_alive = system.kernels[txn.src].alive
        if txn.phase is TxnPhase.COMMITTED:
            # Already committed; the source's death is irrelevant now.
            return None
        if not dst_alive:
            return self._abort(
                txn, thread, process, transform_stats, transform_seconds,
                handoff, src_isa, dst_isa, migpoint_site,
            )
        if not src_alive:
            return self._promote(
                txn, thread, process, transform_stats, transform_seconds,
                handoff, src_isa,
            )
        # Some third kernel died; the hand-off itself is unaffected.
        return None

    def _abort(
        self,
        txn,
        thread,
        process,
        transform_stats,
        transform_seconds,
        handoff,
        src_isa,
        dst_isa,
        migpoint_site,
    ) -> MigrationOutcome:
        """Destination died mid-hand-off: roll back to the source."""
        system = self.system
        cross = src_isa != dst_isa
        if cross and transform_stats is not None:
            # The stack was rewritten for the destination ISA; rewrite
            # it back so the thread can resume at the source.
            transformer = validate.make_stack_transformer(
                process.binary, process.space
            )
            back = transformer.transform(thread, src_isa, migpoint_site)
            transform_seconds += back.latency_seconds(src_isa)
        if txn.published:
            # Revert the process table to name the source again.  The
            # dead destination was already scrubbed from the broadcast
            # set by crash recovery.
            handoff += system.services.proctable.note_migration(
                txn.src, process.pid, thread.tid, txn.src
            )
        process.vdso.clear(thread.tid)
        txn.phase = TxnPhase.ABORTED
        self.aborted_migrations += 1
        duration = transform_seconds + handoff
        system.machines[txn.src].note_io_activity(duration)
        return MigrationOutcome(
            src_machine=txn.src,
            dst_machine=txn.dst,
            cross_isa=cross,
            transform=transform_stats,
            transform_seconds=transform_seconds,
            handoff_seconds=handoff,
            aborted=True,
        )

    def _promote(
        self,
        txn,
        thread,
        process,
        transform_stats,
        transform_seconds,
        handoff,
        src_isa,
    ) -> MigrationOutcome:
        """Source died after TRANSFER: the destination applies its token.

        Idempotent by construction — the token is consumed here and the
        transaction retires, so it can never be applied twice; the
        source copy is fenced and can never run again.
        """
        system = self.system
        dst_isa = system.isa_of(txn.dst)
        cross = src_isa != dst_isa
        # Namespaces span locally (their config is re-derivable from the
        # replicated services; the dead source cannot ship a replica).
        process.container.span_to(txn.dst)
        if not txn.published:
            # The destination publishes the move itself, as origin.
            handoff += system.services.proctable.note_migration(
                txn.dst, process.pid, thread.tid, txn.dst
            )
            txn.published = True
        if txn.dst not in thread.kernel_state:
            thread.kernel_state[txn.dst] = KernelThreadState(
                txn.dst, created_at=system.clock.now
            )
            handoff += CONTINUATION_SETUP_S
        system.kernels[txn.src].release_thread(thread)
        thread.machine_name = txn.dst
        system.kernels[txn.dst].adopt_thread(thread)
        process.vdso.clear(thread.tid)
        thread.migrations += 1
        self.migrations += 1
        if cross:
            self.cross_isa_migrations += 1
        self.resumed_migrations += 1
        txn.phase = TxnPhase.COMMITTED
        duration = transform_seconds + handoff
        system.machines[txn.dst].note_io_activity(duration)
        return MigrationOutcome(
            src_machine=txn.src,
            dst_machine=txn.dst,
            cross_isa=cross,
            transform=transform_stats,
            transform_seconds=transform_seconds,
            handoff_seconds=handoff,
            resumed_from_token=True,
        )

"""Testbed construction for replicated-kernel systems.

One of the three components the old ``PopcornSystem`` god object was
split into (see also :mod:`repro.kernel.lifecycle` and
:mod:`repro.kernel.recovery`).  This module owns *boot*: assembling
machines, interconnect and clock into a runnable system.

:func:`boot_testbed` builds the paper's dual-server setup;
:func:`boot_single` boots a one-machine system for a given ISA, used by
the fleet simulator's nested-node sampler to measure real workload
durations without paying for a full testbed per fleet node.
"""

from typing import Optional

from repro.machine.interconnect import make_dolphin_pxh810
from repro.machine.machine import Machine, make_xeon_e5_1650v2, make_xgene1
from repro.sim.clock import Clock


def boot_testbed(clock: Optional[Clock] = None, tracer=None):
    """The paper's dual-server setup: X-Gene 1 + Xeon over Dolphin PCIe.

    ``tracer`` opts into span tracing; when omitted, ``REPRO_TRACE=1``
    in the environment attaches a fresh tracer (else tracing is off and
    the run is bit-identical to an untraced one).
    """
    from repro.kernel.kernel import PopcornSystem

    if tracer is None:
        from repro.telemetry.spans import maybe_tracer

        tracer = maybe_tracer()
    clock = clock if clock is not None else Clock()
    arm = make_xgene1("arm-server", clock)
    x86 = make_xeon_e5_1650v2("x86-server", clock)
    return PopcornSystem([arm, x86], make_dolphin_pxh810(), clock, tracer=tracer)


def machine_for_isa(isa: str, name: str, clock: Optional[Clock] = None) -> Machine:
    """Build the reference machine model for an ISA name.

    ``x86`` (or ``x86-64``) maps to the Xeon E5-1650 v2; ``arm`` (or
    ``arm64``) to the X-Gene 1 — the two servers of the paper's testbed.
    """
    key = isa.lower()
    if key in ("x86", "x86-64", "x86_64"):
        return make_xeon_e5_1650v2(name, clock)
    if key in ("arm", "arm64", "aarch64"):
        return make_xgene1(name, clock)
    raise ValueError(f"no reference machine for ISA {isa!r}")


def boot_single(isa: str, clock: Optional[Clock] = None, tracer=None):
    """Boot a one-machine system of the given ISA.

    No tracer is attached by default (unlike :func:`boot_testbed`):
    callers boot these by the dozen for duration sampling, and tracing
    every one would change neither results nor determinism, only cost.
    """
    from repro.kernel.kernel import PopcornSystem

    clock = clock if clock is not None else Clock()
    machine = machine_for_isa(isa, f"{isa}-node", clock)
    return PopcornSystem([machine], make_dolphin_pxh810(), clock, tracer=tracer)

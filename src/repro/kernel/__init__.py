"""The replicated-kernel operating system (Popcorn Linux model).

One kernel per machine, no shared state, everything over messages
(:mod:`repro.kernel.messages`).  Distributed services present the
single-environment illusion to heterogeneous OS-containers:

* :mod:`repro.kernel.dsm` — heterogeneous distributed shared memory;
* :mod:`repro.kernel.loader` — the heterogeneous binary loader
  (per-ISA ``.text`` aliased at the same virtual addresses);
* :mod:`repro.kernel.migration` — the thread migration service and
  heterogeneous continuations;
* :mod:`repro.kernel.namespaces` — heterogeneous OS-containers;
* :mod:`repro.kernel.filesystem` — the replicated VFS namespace;
* :mod:`repro.kernel.syscall` — the narrow syscall interface;
* :mod:`repro.kernel.kernel` — the per-machine kernel and the
  :class:`~repro.kernel.kernel.PopcornSystem` testbed facade, which
  delegates to :mod:`repro.kernel.lifecycle` (process/thread
  lifecycle), :mod:`repro.kernel.recovery` (crash handling), and
  :mod:`repro.kernel.testbed` (boot helpers).
"""

from repro.kernel.messages import Message, MessagingLayer
from repro.kernel.process import Process, Thread, ThreadState
from repro.kernel.namespaces import HeterogeneousContainer, Namespace
from repro.kernel.filesystem import VirtualFileSystem
from repro.kernel.dsm import DsmService, DsmStats
from repro.kernel.loader import load_binary
from repro.kernel.kernel import Kernel, PopcornSystem
from repro.kernel.lifecycle import ProcessLifecycle
from repro.kernel.recovery import CrashRecovery
from repro.kernel.testbed import boot_single, boot_testbed

__all__ = [
    "Message",
    "MessagingLayer",
    "Process",
    "Thread",
    "ThreadState",
    "Namespace",
    "HeterogeneousContainer",
    "VirtualFileSystem",
    "DsmService",
    "DsmStats",
    "load_binary",
    "Kernel",
    "PopcornSystem",
    "ProcessLifecycle",
    "CrashRecovery",
    "boot_single",
    "boot_testbed",
]

"""The replicated-kernel operating system (Popcorn Linux model).

One kernel per machine, no shared state, everything over messages
(:mod:`repro.kernel.messages`).  Distributed services present the
single-environment illusion to heterogeneous OS-containers:

* :mod:`repro.kernel.dsm` — heterogeneous distributed shared memory;
* :mod:`repro.kernel.loader` — the heterogeneous binary loader
  (per-ISA ``.text`` aliased at the same virtual addresses);
* :mod:`repro.kernel.migration` — the thread migration service and
  heterogeneous continuations;
* :mod:`repro.kernel.namespaces` — heterogeneous OS-containers;
* :mod:`repro.kernel.filesystem` — the replicated VFS namespace;
* :mod:`repro.kernel.syscall` — the narrow syscall interface;
* :mod:`repro.kernel.kernel` — the per-machine kernel and the
  :class:`~repro.kernel.kernel.PopcornSystem` testbed driver.
"""

from repro.kernel.messages import Message, MessagingLayer
from repro.kernel.process import Process, Thread, ThreadState
from repro.kernel.namespaces import HeterogeneousContainer, Namespace
from repro.kernel.filesystem import VirtualFileSystem
from repro.kernel.dsm import DsmService, DsmStats
from repro.kernel.loader import load_binary
from repro.kernel.kernel import Kernel, PopcornSystem, boot_testbed

__all__ = [
    "Message",
    "MessagingLayer",
    "Process",
    "Thread",
    "ThreadState",
    "Namespace",
    "HeterogeneousContainer",
    "VirtualFileSystem",
    "DsmService",
    "DsmStats",
    "load_binary",
    "Kernel",
    "PopcornSystem",
    "boot_testbed",
]

"""Replicated operating-system services (Sections 3-4).

The paper's model splits each OS service O_x into a kernel-wide state
K_x, hardware state W_x, and per-process states P^K_{j,x} which must be
"kept consistent among kernels: every time the state of a service is
updated on one kernel, it must be updated on all other kernels
(different services require different consistency levels)".

:class:`ReplicatedService` implements that contract: updates to
per-process state are applied locally and propagated to every other
kernel through the messaging layer under one of three consistency
levels, with full message/byte accounting.  Concrete services:

* :class:`ProcessTableService` — the distributed pid/tid table that
  lets any kernel resolve any thread (eager consistency);
* :class:`CredentialsService` — uid/gid per process (lazy: shipped
  with the first use on a kernel);
* :class:`SysInfoService` — hostname/uptime per container (eventual).
"""

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple


class Consistency(enum.Enum):
    """How quickly a replica must observe an update."""

    EAGER = "eager"  # synchronous broadcast before the update returns
    LAZY = "lazy"  # shipped on first remote use
    EVENTUAL = "eventual"  # piggybacked, modelled as deferred batches


@dataclass
class ServiceStats:
    updates: int = 0
    broadcasts: int = 0
    lazy_pulls: int = 0
    bytes_replicated: int = 0


class ReplicatedService:
    """Base class: named per-process state replicated across kernels."""

    #: service name (the paper's x in O_x)
    name = "service"
    consistency = Consistency.EAGER
    #: bytes a single state record costs on the wire
    record_bytes = 128

    def __init__(self, messaging, kernel_names: List[str]):
        self.messaging = messaging
        self.kernels = list(kernel_names)
        # P^K_{j,x}: (process id, key) -> value, the authoritative copy.
        self._state: Dict[Tuple[int, Any], Any] = {}
        # Which kernels hold a current replica of each record.
        self._replicated_to: Dict[Tuple[int, Any], Set[str]] = {}
        self.stats = ServiceStats()

    # ----------------------------------------------------------- update

    def update(self, origin_kernel: str, pid: int, key, value) -> float:
        """Apply an update at ``origin_kernel``; returns service time."""
        record = (pid, key)
        self._state[record] = value
        self.stats.updates += 1
        cost = 0.0
        if self.consistency is Consistency.EAGER:
            others = [k for k in self.kernels if k != origin_kernel]
            if others:
                cost = self.messaging.broadcast(
                    f"svc.{self.name}", origin_kernel, others, self.record_bytes
                )
                self.stats.broadcasts += 1
                self.stats.bytes_replicated += self.record_bytes * len(others)
            self._replicated_to[record] = set(self.kernels)
        else:
            self._replicated_to[record] = {origin_kernel}
        return cost

    def read(self, kernel: str, pid: int, key, default=None) -> Tuple[Any, float]:
        """Read a record from ``kernel``; lazy replicas fault it over."""
        record = (pid, key)
        if record not in self._state:
            return default, 0.0
        cost = 0.0
        holders = self._replicated_to.setdefault(record, set(self.kernels))
        if kernel not in holders:
            if not holders:
                # Every replica died with its kernel; the record is
                # unrecoverable — behave as if it never existed.
                del self._state[record]
                del self._replicated_to[record]
                return default, 0.0
            source = min(holders)
            cost = self.messaging.rpc(
                f"svc.{self.name}.pull", kernel, source, 64, self.record_bytes
            )
            holders.add(kernel)
            self.stats.lazy_pulls += 1
            self.stats.bytes_replicated += self.record_bytes
        return self._state[record], cost

    def forget_process(self, pid: int) -> int:
        """Drop all of one process's records (at exit); returns count."""
        doomed = [record for record in self._state if record[0] == pid]
        for record in doomed:
            del self._state[record]
            self._replicated_to.pop(record, None)
        return len(doomed)

    def scrub_kernel(self, dead: str) -> int:
        """Drop a dead kernel as replica holder and broadcast target.

        Returns the number of records whose last replica died (those
        records are dropped — the state is unrecoverable).
        """
        if dead in self.kernels:
            self.kernels.remove(dead)
        lost = 0
        for record in list(self._replicated_to):
            holders = self._replicated_to[record]
            holders.discard(dead)
            if not holders:
                del self._replicated_to[record]
                self._state.pop(record, None)
                lost += 1
        return lost

    def records_for(self, pid: int) -> Dict[Any, Any]:
        return {key: v for (p, key), v in self._state.items() if p == pid}


class ProcessTableService(ReplicatedService):
    """The distributed process/thread table.

    Keeps (tid -> home kernel, state) replicated eagerly so that any
    kernel can route signals, joins and migration requests without a
    directory lookup — the service behind "thread and process migration
    and resource sharing among kernels".
    """

    name = "proctable"
    consistency = Consistency.EAGER
    record_bytes = 96

    def register_thread(
        self, origin_kernel: str, pid: int, tid: int, machine: str
    ) -> float:
        return self.update(origin_kernel, pid, ("thread", tid), machine)

    def thread_home(self, kernel: str, pid: int, tid: int) -> Tuple[Optional[str], float]:
        return self.read(kernel, pid, ("thread", tid))

    def note_migration(
        self, origin_kernel: str, pid: int, tid: int, new_machine: str
    ) -> float:
        return self.update(origin_kernel, pid, ("thread", tid), new_machine)

    def threads_of(self, pid: int) -> Dict[int, str]:
        return {
            key[1]: machine
            for key, machine in self.records_for(pid).items()
            if isinstance(key, tuple) and key[0] == "thread"
        }


class CredentialsService(ReplicatedService):
    """uid/gid/capabilities — immutable after exec, so lazily shipped."""

    name = "creds"
    consistency = Consistency.LAZY
    record_bytes = 64

    def set_identity(self, origin_kernel: str, pid: int, uid: int, gid: int) -> float:
        return self.update(origin_kernel, pid, "identity", (uid, gid))

    def identity(self, kernel: str, pid: int) -> Tuple[Tuple[int, int], float]:
        return self.read(kernel, pid, "identity", default=(0, 0))


class SysInfoService(ReplicatedService):
    """Container-visible uname/uptime — eventual consistency suffices."""

    name = "sysinfo"
    consistency = Consistency.EVENTUAL
    record_bytes = 256

    def set_hostname(self, origin_kernel: str, pid: int, hostname: str) -> float:
        return self.update(origin_kernel, pid, "hostname", hostname)

    def hostname(self, kernel: str, pid: int) -> Tuple[str, float]:
        return self.read(kernel, pid, "hostname", default="localhost")


class ServiceRegistry:
    """All replicated services of one PopcornSystem."""

    def __init__(self, messaging, kernel_names: List[str]):
        self.proctable = ProcessTableService(messaging, kernel_names)
        self.creds = CredentialsService(messaging, kernel_names)
        self.sysinfo = SysInfoService(messaging, kernel_names)

    def all(self) -> List[ReplicatedService]:
        return [self.proctable, self.creds, self.sysinfo]

    def forget_process(self, pid: int) -> int:
        return sum(svc.forget_process(pid) for svc in self.all())

    def scrub_kernel(self, dead: str) -> int:
        """Drop a dead kernel from every replicated service."""
        return sum(svc.scrub_kernel(dead) for svc in self.all())

"""A replicated in-memory VFS namespace.

"Even if the kernel is running on another ISA, the application accesses
the same file system."  The file store is the replicated state of the
filesystem service; operations issued from a kernel other than the
file's current home charge messaging time, after which the file's pages
are considered local (migrated with the reader, like the DSM).
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class VfsFile:
    path: str
    data: List[int] = field(default_factory=list)
    home_kernel: str = ""


class VirtualFileSystem:
    """One mount namespace's file tree, shared by all kernels."""

    def __init__(self, messaging, home_kernel: str):
        self.messaging = messaging
        self.home = home_kernel
        self._files: Dict[str, VfsFile] = {}
        self._fds: Dict[int, Tuple[str, int]] = {}  # fd -> (path, offset)
        self._next_fd = 3  # 0..2 are stdio

    # ------------------------------------------------------------ paths

    def create(self, path: str, data: Optional[List[int]] = None) -> None:
        self._files[path] = VfsFile(path, list(data or []), self.home)

    def exists(self, path: str) -> bool:
        return path in self._files

    def listdir(self, prefix: str = "/") -> List[str]:
        return sorted(p for p in self._files if p.startswith(prefix))

    # -------------------------------------------------------------- fds

    def open(self, path: str, kernel: str, create: bool = False) -> Tuple[int, float]:
        """Returns (fd, service_time)."""
        cost = 0.0
        if path not in self._files:
            if not create:
                raise FileNotFoundError(path)
            self.create(path)
        f = self._files[path]
        if f.home_kernel != kernel:
            cost = self.messaging.rpc("vfs.open", kernel, f.home_kernel, 256, 64)
        fd = self._next_fd
        self._next_fd += 1
        self._fds[fd] = (path, 0)
        return fd, cost

    def close(self, fd: int) -> float:
        self._fds.pop(fd, None)
        return 0.0

    def read(self, fd: int, count: int, kernel: str) -> Tuple[List[int], float]:
        path, offset = self._require(fd)
        f = self._files[path]
        cost = 0.0
        if f.home_kernel != kernel:
            cost = self.messaging.rpc("vfs.read", kernel, f.home_kernel, 64, count)
            f.home_kernel = kernel  # data now cached locally
        data = f.data[offset : offset + count]
        self._fds[fd] = (path, offset + len(data))
        return data, cost

    def write(self, fd: int, values: List[int], kernel: str) -> Tuple[int, float]:
        path, offset = self._require(fd)
        f = self._files[path]
        cost = 0.0
        if f.home_kernel != kernel:
            cost = self.messaging.rpc(
                "vfs.write", kernel, f.home_kernel, 64 + len(values), 64
            )
        end = offset + len(values)
        if len(f.data) < end:
            f.data.extend([0] * (end - len(f.data)))
        f.data[offset:end] = values
        self._fds[fd] = (path, end)
        return len(values), cost

    def _require(self, fd: int) -> Tuple[str, int]:
        try:
            return self._fds[fd]
        except KeyError:
            raise ValueError(f"bad file descriptor {fd}") from None

"""The syscall interface — the narrow boundary between application and
replicated kernel ("applications interact with the operating system via
a narrow interface: the syscall, and in *NIX operating systems, the
filesystem").

Every handler returns a :class:`SyscallResult`; the execution engine
charges the base syscall cost (mode switch) plus the handler's service
time, then acts on the result's action.
"""

from dataclasses import dataclass, field
from typing import List, Optional

from repro.kernel.process import Barrier, CondVar, Mutex, Process, Thread


@dataclass
class SyscallResult:
    value: float = 0
    seconds: float = 0.0
    # 'continue' | 'block' | 'exit_process'
    action: str = "continue"
    # Threads to wake (barrier release / join completion).
    wake: List[int] = field(default_factory=list)


class SyscallError(Exception):
    pass


class SyscallHandler:
    """Dispatches syscalls for one system."""

    def __init__(self, system):
        self.system = system

    def handle(self, thread: Thread, name: str, args: List[float]) -> SyscallResult:
        method = getattr(self, f"_sys_{name}", None)
        if method is None:
            raise SyscallError(f"unimplemented syscall {name}")
        result = method(thread, args)
        tracer = self.system.messaging.tracer
        if tracer is not None:
            tracer.complete(
                f"sys.{name}", "sys", thread.vtime, result.seconds,
                track=thread.machine_name, tid=thread.tid,
                action=result.action,
            )
            tracer.metrics.counter("sys.calls").inc()
            tracer.metrics.histogram("sys.service_s").observe(result.seconds)
        return result

    # ------------------------------------------------------------ basic

    def _sys_exit(self, thread: Thread, args) -> SyscallResult:
        code = int(args[0]) if args else 0
        thread.process.exit_code = code
        return SyscallResult(value=0, action="exit_process")

    def _sys_print(self, thread: Thread, args) -> SyscallResult:
        thread.process.output.append(args[0] if args else 0)
        return SyscallResult()

    def _sys_gettid(self, thread: Thread, args) -> SyscallResult:
        return SyscallResult(value=thread.tid)

    def _sys_getcpu(self, thread: Thread, args) -> SyscallResult:
        index = self.system.machine_order.index(thread.machine_name)
        return SyscallResult(value=index)

    def _sys_time_ns(self, thread: Thread, args) -> SyscallResult:
        return SyscallResult(value=int(thread.vtime * 1e9))

    def _sys_migrate_hint(self, thread: Thread, args) -> SyscallResult:
        """Application-directed migration (used to place one function on
        the other machine, as in the Figure 11 experiment)."""
        index = int(args[0])
        target = self.system.machine_order[index]
        if target != thread.machine_name:
            thread.process.vdso.request_migration(thread.tid, target)
        return SyscallResult()

    # ----------------------------------------------------------- memory

    def _sys_sbrk(self, thread: Thread, args) -> SyscallResult:
        size = int(args[0])
        addr = thread.process.heap.alloc(size)
        return SyscallResult(value=addr, seconds=1e-6)

    def _sys_free(self, thread: Thread, args) -> SyscallResult:
        thread.process.heap.free(int(args[0]))
        return SyscallResult(seconds=0.5e-6)

    # ---------------------------------------------------------- threads

    def _sys_spawn(self, thread: Thread, args) -> SyscallResult:
        fn_addr = int(args[0])
        arg = args[1] if len(args) > 1 else 0
        isa = self.system.isa_of(thread.machine_name)
        mf = thread.process.binary.function_containing(isa, fn_addr)
        child = self.system.spawn_thread(
            thread.process, thread.machine_name, mf.name, [arg]
        )
        child.vtime = thread.vtime  # starts now
        service_cost = getattr(child, "spawn_service_cost", 0.0)
        return SyscallResult(value=child.tid, seconds=15e-6 + service_cost)

    def _sys_join(self, thread: Thread, args) -> SyscallResult:
        tid = int(args[0])
        target = thread.process.threads.get(tid)
        if target is None:
            raise SyscallError(f"join on unknown tid {tid}")
        if target.exit_value is not None or target.state.value == "done":
            return SyscallResult(value=target.exit_value or 0)
        thread.block("join", tid)
        return SyscallResult(action="block")

    def _sys_barrier_init(self, thread: Thread, args) -> SyscallResult:
        barrier_id, parties = int(args[0]), int(args[1])
        thread.process.barriers[barrier_id] = Barrier(barrier_id, parties)
        return SyscallResult()

    def _sys_barrier_wait(self, thread: Thread, args) -> SyscallResult:
        barrier_id = int(args[0])
        barrier = thread.process.barriers.get(barrier_id)
        if barrier is None:
            raise SyscallError(f"wait on uninitialised barrier {barrier_id}")
        barrier.waiting.append(thread.tid)
        if len(barrier.waiting) >= barrier.parties:
            woken = [t for t in barrier.waiting if t != thread.tid]
            barrier.waiting = []
            barrier.generation += 1
            return SyscallResult(value=1, wake=woken)  # serial thread
        thread.block("barrier", barrier_id)
        return SyscallResult(action="block")

    def _sys_mutex_init(self, thread: Thread, args) -> SyscallResult:
        mutex_id = int(args[0])
        thread.process.mutexes[mutex_id] = Mutex(mutex_id)
        return SyscallResult()

    def _sys_mutex_lock(self, thread: Thread, args) -> SyscallResult:
        mutex_id = int(args[0])
        mutex = thread.process.mutexes.get(mutex_id)
        if mutex is None:
            raise SyscallError(f"lock on uninitialised mutex {mutex_id}")
        if mutex.owner is None:
            mutex.owner = thread.tid
            mutex.acquisitions += 1
            return SyscallResult(value=0)
        if mutex.owner == thread.tid:
            raise SyscallError(f"recursive lock of mutex {mutex_id}")
        mutex.waiters.append(thread.tid)
        thread.block("mutex", mutex_id)
        return SyscallResult(action="block")

    def _sys_mutex_unlock(self, thread: Thread, args) -> SyscallResult:
        mutex_id = int(args[0])
        mutex = thread.process.mutexes.get(mutex_id)
        if mutex is None:
            raise SyscallError(f"unlock of uninitialised mutex {mutex_id}")
        if mutex.owner != thread.tid:
            raise SyscallError(
                f"unlock of mutex {mutex_id} by non-owner tid {thread.tid}"
            )
        if mutex.waiters:
            # Direct hand-off: ownership passes to the first waiter.
            next_tid = mutex.waiters.pop(0)
            mutex.owner = next_tid
            mutex.acquisitions += 1
            return SyscallResult(value=0, wake=[next_tid])
        mutex.owner = None
        return SyscallResult(value=0)

    # ------------------------------------------------- condition variables

    def _cond(self, thread: Thread, cond_id: int) -> CondVar:
        cond = thread.process.condvars.get(cond_id)
        if cond is None:
            raise SyscallError(f"use of uninitialised condvar {cond_id}")
        return cond

    def _grant_or_queue(self, process: Process, mutex: Mutex, tid: int) -> List[int]:
        """Hand ``mutex`` to ``tid`` if free, else queue them; returns
        the tids to wake now."""
        if mutex.owner is None:
            mutex.owner = tid
            mutex.acquisitions += 1
            return [tid]
        mutex.waiters.append(tid)
        # Stays blocked, now on the mutex rather than the condvar.
        process.threads[tid].blocked_on = ("mutex", mutex.mutex_id)
        return []

    def _sys_cond_init(self, thread: Thread, args) -> SyscallResult:
        cond_id = int(args[0])
        thread.process.condvars[cond_id] = CondVar(cond_id)
        return SyscallResult()

    def _sys_cond_wait(self, thread: Thread, args) -> SyscallResult:
        """Atomically release the mutex and sleep on the condition; the
        woken thread returns only once it holds the mutex again."""
        cond_id, mutex_id = int(args[0]), int(args[1])
        cond = self._cond(thread, cond_id)
        mutex = thread.process.mutexes.get(mutex_id)
        if mutex is None:
            raise SyscallError(f"cond_wait with uninitialised mutex {mutex_id}")
        if mutex.owner != thread.tid:
            raise SyscallError(
                f"cond_wait on mutex {mutex_id} not held by tid {thread.tid}"
            )
        wake: List[int] = []
        if mutex.waiters:
            next_tid = mutex.waiters.pop(0)
            mutex.owner = next_tid
            mutex.acquisitions += 1
            wake.append(next_tid)
        else:
            mutex.owner = None
        cond.waiters.append((thread.tid, mutex_id))
        thread.block("cond", cond_id)
        return SyscallResult(action="block", wake=wake)

    def _sys_cond_signal(self, thread: Thread, args) -> SyscallResult:
        cond = self._cond(thread, int(args[0]))
        cond.signals += 1
        if not cond.waiters:
            return SyscallResult(value=0)
        tid, mutex_id = cond.waiters.pop(0)
        mutex = thread.process.mutexes[mutex_id]
        wake = self._grant_or_queue(thread.process, mutex, tid)
        return SyscallResult(value=1, wake=wake)

    def _sys_cond_broadcast(self, thread: Thread, args) -> SyscallResult:
        cond = self._cond(thread, int(args[0]))
        cond.signals += 1
        wake: List[int] = []
        woken = 0
        while cond.waiters:
            tid, mutex_id = cond.waiters.pop(0)
            mutex = thread.process.mutexes[mutex_id]
            wake.extend(self._grant_or_queue(thread.process, mutex, tid))
            woken += 1
        return SyscallResult(value=woken, wake=wake)

    # -------------------------------------------------------------- vfs

    def _sys_open(self, thread: Thread, args) -> SyscallResult:
        path = f"/data/{int(args[0])}"
        fd, cost = self.system.vfs.open(
            path, thread.machine_name, create=True
        )
        return SyscallResult(value=fd, seconds=cost + 2e-6)

    def _sys_close(self, thread: Thread, args) -> SyscallResult:
        cost = self.system.vfs.close(int(args[0]))
        return SyscallResult(seconds=cost + 0.5e-6)

    def _sys_read(self, thread: Thread, args) -> SyscallResult:
        fd, buf, count = int(args[0]), int(args[1]), int(args[2])
        data, cost = self.system.vfs.read(fd, count, thread.machine_name)
        space = thread.process.space
        for i, value in enumerate(data):
            space.write(buf + i * 8, value)
        return SyscallResult(value=len(data), seconds=cost + 2e-6)

    def _sys_write(self, thread: Thread, args) -> SyscallResult:
        fd, buf, count = int(args[0]), int(args[1]), int(args[2])
        space = thread.process.space
        values = [space.read(buf + i * 8) for i in range(count)]
        written, cost = self.system.vfs.write(fd, values, thread.machine_name)
        return SyscallResult(value=written, seconds=cost + 2e-6)

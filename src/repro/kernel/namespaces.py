"""Namespaces and heterogeneous OS-containers (Section 4.1).

A container is a bundle of namespaces — "operating-system based
virtual machines on different ISA machines, and migration amongst
them".  Built on the replicated kernel's distributed services, the
container's view (hostname, PID space, mounts, resource limits) is
identical on every kernel, so an application observes the same
operating environment before and after crossing ISAs.
"""

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

NAMESPACE_KINDS = ("pid", "mnt", "uts", "ipc", "net", "user")


@dataclass
class Namespace:
    """One namespace of one kind, replicated across kernels."""

    kind: str
    ns_id: int
    # Which kernels have instantiated the replica.
    present_on: Set[str] = field(default_factory=set)

    def __post_init__(self):
        if self.kind not in NAMESPACE_KINDS:
            raise ValueError(f"unknown namespace kind {self.kind!r}")


class HeterogeneousContainer:
    """A migratable container: namespaces + member processes.

    The container "elastically spans across ISAs during execution
    migration": replicas of its namespaces are created on a kernel the
    first time one of its threads lands there.
    """

    _ids = itertools.count(1)

    def __init__(self, name: str, hostname: str = ""):
        self.container_id = next(self._ids)
        self.name = name
        self.hostname = hostname or name
        self.namespaces: Dict[str, Namespace] = {
            kind: Namespace(kind, ns_id=self.container_id * 10 + i)
            for i, kind in enumerate(NAMESPACE_KINDS)
        }
        self.pids: List[int] = []
        # Container-local PID mapping (PID namespace semantics).
        self._pid_map: Dict[int, int] = {}
        self._next_local_pid = 1

    def span_to(self, kernel_name: str) -> int:
        """Instantiate namespace replicas on a kernel; returns how many
        replicas were newly created (each costs one service message)."""
        created = 0
        for ns in self.namespaces.values():
            if kernel_name not in ns.present_on:
                ns.present_on.add(kernel_name)
                created += 1
        return created

    def spans(self, kernel_name: str) -> bool:
        return all(kernel_name in ns.present_on for ns in self.namespaces.values())

    def kernels(self) -> Set[str]:
        spanned = None
        for ns in self.namespaces.values():
            spanned = ns.present_on if spanned is None else spanned & ns.present_on
        return set(spanned or set())

    def adopt(self, pid: int) -> int:
        """Add a process; returns its container-local PID."""
        self.pids.append(pid)
        local = self._next_local_pid
        self._next_local_pid += 1
        self._pid_map[pid] = local
        return local

    def local_pid(self, pid: int) -> Optional[int]:
        return self._pid_map.get(pid)

    def __repr__(self) -> str:
        return (
            f"HeterogeneousContainer({self.name}, kernels={sorted(self.kernels())}, "
            f"pids={self.pids})"
        )

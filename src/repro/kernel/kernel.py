"""Per-machine kernels and the replicated-kernel system facade.

A :class:`Kernel` is one natively-compiled OS instance on one machine.
:class:`PopcornSystem` is the testbed driver experiments interact with:
the set of kernels, the interconnect between them, the shared simulated
clock, and the process/migration services that span kernels.

``PopcornSystem`` used to implement everything inline; it is now a thin
facade over three components so per-node state stays a small struct
when fleet simulations instantiate systems by the thousand:

* :class:`repro.kernel.lifecycle.ProcessLifecycle` — pid/tid
  allocation, exec, thread spawn, migration requests, reaping;
* :class:`repro.kernel.recovery.CrashRecovery` — kernel crashes,
  thread failure, migration-service resume tokens;
* :mod:`repro.kernel.testbed` — boot helpers (:func:`boot_testbed`,
  re-exported here for compatibility, and ``boot_single``).

Every pre-split method and attribute (``exec_process``, ``processes``,
``crash_kernel``, …) keeps working through delegation.
"""

from typing import Dict, List, Optional

from repro.compiler.toolchain import MultiIsaBinary
from repro.kernel.filesystem import VirtualFileSystem
from repro.kernel.lifecycle import ProcessLifecycle
from repro.kernel.messages import MessagingLayer
from repro.kernel.namespaces import HeterogeneousContainer
from repro.kernel.process import Process, Thread, ThreadState
from repro.kernel.recovery import CrashRecovery
from repro.kernel.services import ServiceRegistry
from repro.kernel.testbed import boot_testbed  # noqa: F401  (compat re-export)
from repro.machine.interconnect import Interconnect, make_dolphin_pxh810
from repro.machine.machine import Machine
from repro.sim.clock import Clock


class KernelCrashed(RuntimeError):
    """A thread's kernel died under it (or mid-operation).

    Raised on the execution path of a thread whose kernel crashed while
    it ran; the engine turns it into a loud, recorded thread failure.
    """

    def __init__(self, kernel: str):
        super().__init__(f"kernel {kernel} crashed")
        self.kernel = kernel


class Kernel:
    """One OS instance, natively compiled for its machine's ISA."""

    def __init__(self, machine: Machine, system: "PopcornSystem"):
        self.machine = machine
        self.system = system
        self.name = machine.name
        # False once crash_kernel has fenced this kernel off.
        self.alive = True
        # Threads currently homed on this kernel.
        self.threads: Dict[int, Thread] = {}

    @property
    def isa_name(self) -> str:
        return self.machine.isa.name

    def adopt_thread(self, thread: Thread) -> None:
        self.threads[thread.tid] = thread
        if thread.state == ThreadState.RUNNABLE:
            self.machine.thread_started()

    def release_thread(self, thread: Thread) -> None:
        self.threads.pop(thread.tid, None)
        if thread.state == ThreadState.RUNNABLE:
            self.machine.thread_stopped()

    def __repr__(self) -> str:
        return f"Kernel({self.name}/{self.isa_name}, threads={len(self.threads)})"


class PopcornSystem:
    """The multi-machine testbed: kernels + interconnect + clock."""

    def __init__(
        self,
        machines: List[Machine],
        interconnect: Optional[Interconnect] = None,
        clock: Optional[Clock] = None,
        tracer=None,
    ):
        if not machines:
            raise ValueError("a system needs at least one machine")
        self.clock = clock if clock is not None else Clock()
        for machine in machines:
            machine.clock = self.clock
        self.machines: Dict[str, Machine] = {m.name: m for m in machines}
        self.machine_order = [m.name for m in machines]
        self.interconnect = (
            interconnect if interconnect is not None else make_dolphin_pxh810()
        )
        self.messaging = MessagingLayer(self.interconnect)
        # Opt-in span tracer (repro.telemetry.spans.Tracer); every
        # protocol site reaches it through the messaging layer.
        self.tracer = tracer
        if tracer is not None:
            self.messaging.tracer = tracer
            tracer.bind_clock(self.clock)
        self.kernels: Dict[str, Kernel] = {
            m.name: Kernel(m, self) for m in machines
        }
        self.vfs = VirtualFileSystem(self.messaging, self.machine_order[0])
        self.services = ServiceRegistry(self.messaging, self.machine_order)
        self.lifecycle = ProcessLifecycle(self)
        self.recovery = CrashRecovery(self)
        # Opt-in dirty-page backup replication for new processes.
        self.dsm_backup = False

    # --------------------------------------------- component delegation
    #
    # Pre-split attribute names, preserved so existing callers (and
    # pickled checkpoints) keep working without knowing about the split.

    @property
    def processes(self) -> Dict[int, Process]:
        """The live process table (owned by the lifecycle component)."""
        return self.lifecycle.processes

    @property
    def _next_pid(self) -> int:
        return self.lifecycle._next_pid

    @_next_pid.setter
    def _next_pid(self, value: int) -> None:
        self.lifecycle._next_pid = value

    @property
    def _next_tid(self) -> int:
        return self.lifecycle._next_tid

    @_next_tid.setter
    def _next_tid(self, value: int) -> None:
        self.lifecycle._next_tid = value

    @property
    def _migration_services(self) -> List:
        return self.recovery.migration_services

    def register_migration_service(self, service) -> None:
        self.recovery.register_migration_service(service)

    # ----------------------------------------------------------- lookup

    def kernel_of(self, thread: Thread) -> Kernel:
        return self.kernels[thread.machine_name]

    def machine_of(self, thread: Thread) -> Machine:
        return self.machines[thread.machine_name]

    def isa_of(self, machine_name: str) -> str:
        return self.machines[machine_name].isa.name

    # ------------------------------------------------------------- exec

    def exec_process(
        self,
        binary: MultiIsaBinary,
        machine_name: str,
        container: Optional[HeterogeneousContainer] = None,
        argv: Optional[List[float]] = None,
    ) -> Process:
        """Load a multi-ISA binary and create its main thread."""
        return self.lifecycle.exec_process(binary, machine_name, container, argv)

    def spawn_thread(
        self,
        process: Process,
        machine_name: str,
        function: str,
        args: List[float],
    ) -> Thread:
        """Create a thread parked at ``function``'s entry."""
        return self.lifecycle.spawn_thread(process, machine_name, function, args)

    # -------------------------------------------------------- migration

    def request_migration(self, process: Process, machine_name: str) -> None:
        """Set the vDSO flag for every thread of ``process``.

        Threads notice at their next migration point and migrate
        themselves — there is no stop-the-world.
        """
        self.lifecycle.request_migration(process, machine_name)

    def request_thread_migration(self, thread: Thread, machine_name: str) -> None:
        self.lifecycle.request_thread_migration(thread, machine_name)

    # ----------------------------------------------------- crash recovery

    def crash_kernel(self, name: str) -> Dict[int, object]:
        """Kill kernel ``name``: fence it, kill its threads, scrub state.

        See :meth:`repro.kernel.recovery.CrashRecovery.crash_kernel`.
        """
        return self.recovery.crash_kernel(name)

    def fail_thread(self, thread: Thread, reason: str) -> None:
        """Kill one thread loudly: record the failure, wake joiners."""
        self.recovery.fail_thread(thread, reason)

    # ---------------------------------------------------------- teardown

    def reap_process(self, process: Process) -> None:
        self.lifecycle.reap_process(process)

"""Per-machine kernels and the replicated-kernel system driver.

A :class:`Kernel` is one natively-compiled OS instance on one machine.
:class:`PopcornSystem` is the testbed: the set of kernels, the
interconnect between them, the shared simulated clock, and the
process/migration services that span kernels.  It is the object
experiments interact with.
"""

from typing import Dict, List, Optional

from repro.compiler.toolchain import MultiIsaBinary
from repro.kernel.filesystem import VirtualFileSystem
from repro.kernel.loader import init_thread_tls, load_binary, thread_pointer_for
from repro.kernel.messages import MessagingLayer
from repro.kernel.namespaces import HeterogeneousContainer
from repro.kernel.process import KernelThreadState, Process, Thread, ThreadState
from repro.kernel.services import ServiceRegistry
from repro.machine.interconnect import Interconnect, make_dolphin_pxh810
from repro.machine.machine import Machine, make_xeon_e5_1650v2, make_xgene1
from repro.runtime.stack import Frame, UserStack
from repro.sim.clock import Clock


class KernelCrashed(RuntimeError):
    """A thread's kernel died under it (or mid-operation).

    Raised on the execution path of a thread whose kernel crashed while
    it ran; the engine turns it into a loud, recorded thread failure.
    """

    def __init__(self, kernel: str):
        super().__init__(f"kernel {kernel} crashed")
        self.kernel = kernel


class Kernel:
    """One OS instance, natively compiled for its machine's ISA."""

    def __init__(self, machine: Machine, system: "PopcornSystem"):
        self.machine = machine
        self.system = system
        self.name = machine.name
        # False once crash_kernel has fenced this kernel off.
        self.alive = True
        # Threads currently homed on this kernel.
        self.threads: Dict[int, Thread] = {}

    @property
    def isa_name(self) -> str:
        return self.machine.isa.name

    def adopt_thread(self, thread: Thread) -> None:
        self.threads[thread.tid] = thread
        if thread.state == ThreadState.RUNNABLE:
            self.machine.thread_started()

    def release_thread(self, thread: Thread) -> None:
        self.threads.pop(thread.tid, None)
        if thread.state == ThreadState.RUNNABLE:
            self.machine.thread_stopped()

    def __repr__(self) -> str:
        return f"Kernel({self.name}/{self.isa_name}, threads={len(self.threads)})"


class PopcornSystem:
    """The multi-machine testbed: kernels + interconnect + clock."""

    def __init__(
        self,
        machines: List[Machine],
        interconnect: Optional[Interconnect] = None,
        clock: Optional[Clock] = None,
        tracer=None,
    ):
        if not machines:
            raise ValueError("a system needs at least one machine")
        self.clock = clock if clock is not None else Clock()
        for machine in machines:
            machine.clock = self.clock
        self.machines: Dict[str, Machine] = {m.name: m for m in machines}
        self.machine_order = [m.name for m in machines]
        self.interconnect = (
            interconnect if interconnect is not None else make_dolphin_pxh810()
        )
        self.messaging = MessagingLayer(self.interconnect)
        # Opt-in span tracer (repro.telemetry.spans.Tracer); every
        # protocol site reaches it through the messaging layer.
        self.tracer = tracer
        if tracer is not None:
            self.messaging.tracer = tracer
            tracer.bind_clock(self.clock)
        self.kernels: Dict[str, Kernel] = {
            m.name: Kernel(m, self) for m in machines
        }
        self.vfs = VirtualFileSystem(self.messaging, self.machine_order[0])
        self.services = ServiceRegistry(self.messaging, self.machine_order)
        self.processes: Dict[int, Process] = {}
        self._next_pid = 1
        self._next_tid = 1
        # Migration services consulted during crash recovery: a thread
        # whose context already shipped to a live destination survives
        # its source kernel's death via the resume token.
        self._migration_services: List = []
        # Opt-in dirty-page backup replication for new processes.
        self.dsm_backup = False

    def register_migration_service(self, service) -> None:
        self._migration_services.append(service)

    # ----------------------------------------------------------- lookup

    def kernel_of(self, thread: Thread) -> Kernel:
        return self.kernels[thread.machine_name]

    def machine_of(self, thread: Thread) -> Machine:
        return self.machines[thread.machine_name]

    def isa_of(self, machine_name: str) -> str:
        return self.machines[machine_name].isa.name

    # ------------------------------------------------------------- exec

    def exec_process(
        self,
        binary: MultiIsaBinary,
        machine_name: str,
        container: Optional[HeterogeneousContainer] = None,
        argv: Optional[List[float]] = None,
    ) -> Process:
        """Load a multi-ISA binary and create its main thread."""
        if machine_name not in self.machines:
            raise KeyError(f"unknown machine {machine_name}")
        if self.isa_of(machine_name) not in binary.binaries:
            raise ValueError(
                f"binary lacks code for {self.isa_of(machine_name)}"
            )
        pid = self._next_pid
        self._next_pid += 1
        process = load_binary(
            binary,
            pid,
            machine_name,
            self.messaging,
            self.machine_order,
            dsm_backup=self.dsm_backup,
        )
        process.container = container or HeterogeneousContainer(
            f"ctr-{binary.module.name}-{pid}"
        )
        process.container.span_to(machine_name)
        process.container.adopt(pid)
        self.processes[pid] = process
        self.spawn_thread(
            process,
            machine_name,
            function=binary.module.entry,
            args=list(argv or []),
        )
        return process

    def spawn_thread(
        self,
        process: Process,
        machine_name: str,
        function: str,
        args: List[float],
    ) -> Thread:
        """Create a thread parked at ``function``'s entry."""
        binary = process.binary
        if function not in binary.module.functions:
            raise KeyError(f"no function {function} in {binary.module.name}")
        tid = self._next_tid
        self._next_tid += 1
        stack_index = process.next_stack_index()
        low, high = binary.vm_map.stack_region(stack_index)
        stack = UserStack(low, high)
        tp = thread_pointer_for(binary, stack_index)
        init_thread_tls(process.space, binary, tp)

        thread = Thread(tid, process, machine_name, stack, tp)
        thread.start_function = function
        thread.start_args = list(args)
        isa_name = self.isa_of(machine_name)
        mf = binary.machine_function(isa_name, function)
        cfa = stack.top
        thread.frames = [Frame(mf=mf, cfa=cfa)]
        thread.pc = (mf.fn.entry, 0)
        # Seed the register file for the current ISA.
        thread.regs = {r.name: 0 for r in mf.isa.regfile.all()}
        thread.regs[mf.isa.regfile.sp] = cfa - mf.frame.frame_size
        thread.regs[mf.isa.regfile.fp] = cfa
        # Bind start arguments into the entry function's parameter
        # locations (register or frame slot), as the clone trampoline
        # would.
        for (pname, _vt), value in zip(mf.fn.params, args):
            reg = mf.alloc.reg_assignment.get(pname)
            if reg is not None:
                thread.regs[reg] = value
            else:
                process.space.write(
                    cfa - mf.frame.slot_depths[pname], value
                )

        process.threads[tid] = thread
        self.kernels[machine_name].adopt_thread(thread)
        # Publish the thread in the replicated process table so every
        # kernel can resolve it; the registration cost is charged to
        # the spawn syscall by the caller.
        thread.spawn_service_cost = self.services.proctable.register_thread(
            machine_name, process.pid, tid, machine_name
        )
        return thread

    # -------------------------------------------------------- migration

    def request_migration(self, process: Process, machine_name: str) -> None:
        """Set the vDSO flag for every thread of ``process``.

        Threads notice at their next migration point and migrate
        themselves — there is no stop-the-world.
        """
        if machine_name not in self.machines:
            raise KeyError(f"unknown machine {machine_name}")
        for thread in process.alive_threads:
            process.vdso.request_migration(thread.tid, machine_name)

    def request_thread_migration(self, thread: Thread, machine_name: str) -> None:
        thread.process.vdso.request_migration(thread.tid, machine_name)

    # ----------------------------------------------------- crash recovery

    def crash_kernel(self, name: str) -> Dict[int, object]:
        """Kill kernel ``name``: fence it, kill its threads, scrub state.

        Mirrors what a confirmed failure-detector verdict triggers: the
        dead kernel is fenced off the messaging layer (it neither sends
        nor receives), resident threads die — except those whose
        migration transaction already shipped their context to a live
        destination (the two-phase hand-off's resume token keeps exactly
        one live copy) — every process's hDSM directory is scrubbed,
        and the replicated services drop the dead replica so no later
        RPC routes at it.  Returns the per-pid scrub reports.
        """
        kernel = self.kernels.get(name)
        if kernel is None:
            raise KeyError(f"unknown machine {name}")
        if not kernel.alive:
            return {}
        kernel.alive = False
        self.messaging.fenced.add(name)
        if self.tracer is not None:
            self.tracer.instant(
                "kernel.crash", "fault", track=name, kernel=name
            )
            self.tracer.metrics.counter("fault.kernel_crashes").inc()
        saved: set = set()
        for service in self._migration_services:
            saved |= service.threads_with_surviving_copy(name)
        for thread in list(kernel.threads.values()):
            if thread.tid in saved or thread.state == ThreadState.DONE:
                continue
            self.fail_thread(thread, f"kernel {name} crashed")
        scrubs: Dict[int, object] = {}
        for pid in sorted(self.processes):
            process = self.processes[pid]
            if process.dsm is not None:
                scrubs[pid] = process.dsm.scrub_dead_kernel(name)
        self.services.scrub_kernel(name)
        if self.vfs.home == name:
            # The replicated VFS fails over to the next live kernel.
            survivors = [
                m for m in self.machine_order if self.kernels[m].alive
            ]
            if survivors:
                self.vfs.home = survivors[0]
        return scrubs

    def fail_thread(self, thread: Thread, reason: str) -> None:
        """Kill one thread loudly: record the failure, wake joiners."""
        if thread.state == ThreadState.DONE:
            return
        self.kernels[thread.machine_name].release_thread(thread)
        thread.state = ThreadState.DONE
        thread.blocked_on = None
        if thread.exit_value is None:
            thread.exit_value = 0.0
        process = thread.process
        process.failed_threads[thread.tid] = reason
        # Joiners observe the death (join returns) instead of hanging.
        for other in process.threads.values():
            if other.blocked_on == ("join", thread.tid):
                other.wake(max(other.vtime, thread.vtime))
                if self.kernels[other.machine_name].alive:
                    self.machines[other.machine_name].thread_started()

    # ---------------------------------------------------------- teardown

    def reap_process(self, process: Process) -> None:
        for thread in process.threads.values():
            if thread.state != ThreadState.DONE:
                self.kernels[thread.machine_name].release_thread(thread)
                thread.state = ThreadState.DONE
        self.services.forget_process(process.pid)
        self.processes.pop(process.pid, None)


def boot_testbed(
    clock: Optional[Clock] = None, tracer=None
) -> PopcornSystem:
    """The paper's dual-server setup: X-Gene 1 + Xeon over Dolphin PCIe.

    ``tracer`` opts into span tracing; when omitted, ``REPRO_TRACE=1``
    in the environment attaches a fresh tracer (else tracing is off and
    the run is bit-identical to an untraced one).
    """
    if tracer is None:
        from repro.telemetry.spans import maybe_tracer

        tracer = maybe_tracer()
    clock = clock if clock is not None else Clock()
    arm = make_xgene1("arm-server", clock)
    x86 = make_xeon_e5_1650v2("x86-server", clock)
    return PopcornSystem([arm, x86], make_dolphin_pxh810(), clock, tracer=tracer)

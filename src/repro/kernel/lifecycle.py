"""Process and thread lifecycle services of a replicated-kernel system.

One of the three components the old ``PopcornSystem`` god object was
split into (the others being :mod:`repro.kernel.testbed` for boot and
:mod:`repro.kernel.recovery` for crash handling).
:class:`ProcessLifecycle` owns everything about *creating and ending
work*: pid/tid allocation, loading multi-ISA binaries, spawning
threads parked at a function entry, posting migration requests through
the vDSO, and reaping finished processes.

The component operates through the system facade it is handed (for the
machine table, kernels, messaging and replicated services) and keeps
only the lifecycle state itself, so per-node state stays a small
struct when systems are instantiated by the thousand.
"""

from typing import Dict, List, Optional

from repro.compiler.toolchain import MultiIsaBinary
from repro.kernel.loader import init_thread_tls, load_binary, thread_pointer_for
from repro.kernel.namespaces import HeterogeneousContainer
from repro.kernel.process import Process, Thread, ThreadState
from repro.runtime.stack import Frame, UserStack


class ProcessLifecycle:
    """Creates, migrates and reaps the processes of one system."""

    def __init__(self, system):
        self.system = system
        self.processes: Dict[int, Process] = {}
        self._next_pid = 1
        self._next_tid = 1

    def reserve_ids(self, next_pid: int, next_tid: int) -> None:
        """Bump the id allocators to at least the given values.

        Used by checkpoint restore: a restored process carries pids and
        tids minted by an earlier system, and later allocations must
        not collide with them.
        """
        self._next_pid = max(self._next_pid, next_pid)
        self._next_tid = max(self._next_tid, next_tid)

    # ------------------------------------------------------------- exec

    def exec_process(
        self,
        binary: MultiIsaBinary,
        machine_name: str,
        container: Optional[HeterogeneousContainer] = None,
        argv: Optional[List[float]] = None,
    ) -> Process:
        """Load a multi-ISA binary and create its main thread."""
        system = self.system
        if machine_name not in system.machines:
            raise KeyError(f"unknown machine {machine_name}")
        if system.isa_of(machine_name) not in binary.binaries:
            raise ValueError(
                f"binary lacks code for {system.isa_of(machine_name)}"
            )
        pid = self._next_pid
        self._next_pid += 1
        process = load_binary(
            binary,
            pid,
            machine_name,
            system.messaging,
            system.machine_order,
            dsm_backup=system.dsm_backup,
        )
        process.container = container or HeterogeneousContainer(
            f"ctr-{binary.module.name}-{pid}"
        )
        process.container.span_to(machine_name)
        process.container.adopt(pid)
        self.processes[pid] = process
        self.spawn_thread(
            process,
            machine_name,
            function=binary.module.entry,
            args=list(argv or []),
        )
        return process

    def spawn_thread(
        self,
        process: Process,
        machine_name: str,
        function: str,
        args: List[float],
    ) -> Thread:
        """Create a thread parked at ``function``'s entry."""
        system = self.system
        binary = process.binary
        if function not in binary.module.functions:
            raise KeyError(f"no function {function} in {binary.module.name}")
        tid = self._next_tid
        self._next_tid += 1
        stack_index = process.next_stack_index()
        low, high = binary.vm_map.stack_region(stack_index)
        stack = UserStack(low, high)
        tp = thread_pointer_for(binary, stack_index)
        init_thread_tls(process.space, binary, tp)

        thread = Thread(tid, process, machine_name, stack, tp)
        thread.start_function = function
        thread.start_args = list(args)
        isa_name = system.isa_of(machine_name)
        mf = binary.machine_function(isa_name, function)
        cfa = stack.top
        thread.frames = [Frame(mf=mf, cfa=cfa)]
        thread.pc = (mf.fn.entry, 0)
        # Seed the register file for the current ISA.
        thread.regs = {r.name: 0 for r in mf.isa.regfile.all()}
        thread.regs[mf.isa.regfile.sp] = cfa - mf.frame.frame_size
        thread.regs[mf.isa.regfile.fp] = cfa
        # Bind start arguments into the entry function's parameter
        # locations (register or frame slot), as the clone trampoline
        # would.
        for (pname, _vt), value in zip(mf.fn.params, args):
            reg = mf.alloc.reg_assignment.get(pname)
            if reg is not None:
                thread.regs[reg] = value
            else:
                process.space.write(
                    cfa - mf.frame.slot_depths[pname], value
                )

        process.threads[tid] = thread
        system.kernels[machine_name].adopt_thread(thread)
        # Publish the thread in the replicated process table so every
        # kernel can resolve it; the registration cost is charged to
        # the spawn syscall by the caller.
        thread.spawn_service_cost = system.services.proctable.register_thread(
            machine_name, process.pid, tid, machine_name
        )
        return thread

    # -------------------------------------------------------- migration

    def request_migration(self, process: Process, machine_name: str) -> None:
        """Set the vDSO migration flag for every thread of ``process``.

        Threads notice at their next migration point and migrate
        themselves — there is no stop-the-world.
        """
        if machine_name not in self.system.machines:
            raise KeyError(f"unknown machine {machine_name}")
        for thread in process.alive_threads:
            process.vdso.request_migration(thread.tid, machine_name)

    def request_thread_migration(
        self, thread: Thread, machine_name: str
    ) -> None:
        """Set the vDSO migration flag for one thread."""
        thread.process.vdso.request_migration(thread.tid, machine_name)

    # ---------------------------------------------------------- teardown

    def reap_process(self, process: Process) -> None:
        """Release a finished process's threads and replicated state."""
        system = self.system
        for thread in process.threads.values():
            if thread.state != ThreadState.DONE:
                system.kernels[thread.machine_name].release_thread(thread)
                thread.state = ThreadState.DONE
        system.services.forget_process(process.pid)
        self.processes.pop(process.pid, None)

"""The inter-kernel messaging layer.

"Kernels do not share any data structures, but interact via messages."
Every cross-kernel interaction — DSM page requests, thread migration,
replicated service updates — charges time through this layer, which in
turn charges the interconnect model.
"""

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Set

from repro.machine.interconnect import Interconnect

HEADER_BYTES = 64


class KernelFencedError(RuntimeError):
    """A message named a fenced (crashed/ostracised) kernel.

    Raised by :meth:`MessagingLayer.send` when either endpoint has been
    fenced by :meth:`~repro.kernel.kernel.PopcornSystem.crash_kernel`.
    Reaching this error means some service kept a stale route to a dead
    kernel — the crash-recovery scrub should have removed it — so tests
    and the chaos harness treat it as a protocol bug, not a fault.
    """

    def __init__(self, kind: str, src: str, dst: str, fenced: str):
        super().__init__(
            f"message {kind!r} {src}->{dst} routed at fenced kernel {fenced!r}"
        )
        self.kind = kind
        self.src = src
        self.dst = dst
        self.fenced_kernel = fenced


@dataclass(frozen=True)
class Message:
    """One inter-kernel message (for accounting and tests)."""

    kind: str
    src: str
    dst: str
    payload_bytes: int

    @property
    def wire_bytes(self) -> int:
        return HEADER_BYTES + self.payload_bytes


class MessagingLayer:
    """Synchronous RPC between kernels over the interconnect."""

    def __init__(self, interconnect: Interconnect):
        self.interconnect = interconnect
        self.counts: Counter = Counter()
        self.bytes_by_kind: Counter = Counter()
        # Kernels fenced off by crash recovery: any message naming one
        # raises KernelFencedError (a dead kernel neither sends nor
        # receives — lease-based fencing made that a hard guarantee).
        self.fenced: Set[str] = set()
        # Optional chaos injector (repro.faults.chaos); None in normal
        # runs so the hook costs one attribute read per protocol step.
        self.chaos = None
        # Optional span tracer (repro.telemetry.spans); None in normal
        # runs so tracing costs one attribute read per message.
        self.tracer = None

    def chaos_step(self, step: str, **roles: str) -> bool:
        """Announce a crashable protocol step; True if a crash fired.

        ``roles`` names the kernels participating in the step (e.g.
        ``src=.../dst=...`` for a migration hand-off).  The chaos
        injector uses the announcement stream both to enumerate crash
        points and to trigger the scheduled crash.
        """
        chaos = self.chaos
        if chaos is None:
            return False
        fired = chaos.at_step(step, roles)
        if fired and self.tracer is not None:
            # Annotate whichever protocol span is open (the migration
            # hand-off, a DSM pull) and drop a marker on the timeline.
            self.tracer.annotate_current(chaos_crash=step)
            self.tracer.instant(
                "chaos.crash", "fault", track="net", step=step, **roles
            )
        return fired

    def send(self, kind: str, src: str, dst: str, payload_bytes: int) -> float:
        """One-way message; returns the transfer time in seconds."""
        if src == dst:
            return 0.0  # local service invocation, no wire crossing
        if self.fenced:
            if src in self.fenced:
                raise KernelFencedError(kind, src, dst, src)
            if dst in self.fenced:
                raise KernelFencedError(kind, src, dst, dst)
        msg = Message(kind, src, dst, payload_bytes)
        self.counts[kind] += 1
        self.bytes_by_kind[kind] += msg.wire_bytes
        self.interconnect.record(msg.wire_bytes)
        seconds = (
            self.interconnect.transfer_time(msg.wire_bytes)
            + self.interconnect.per_message_cpu_s
        )
        tracer = self.tracer
        if tracer is not None:
            tracer.complete(
                f"msg.{kind}", "msg", tracer.now(), seconds, track="net",
                src=src, dst=dst, wire_bytes=msg.wire_bytes,
            )
            tracer.metrics.counter("msg.sends").inc()
            tracer.metrics.counter("msg.wire_bytes").inc(msg.wire_bytes)
        return seconds

    def rpc(
        self,
        kind: str,
        src: str,
        dst: str,
        request_bytes: int,
        reply_bytes: int = 0,
    ) -> float:
        """Request/reply round trip; returns total time in seconds."""
        if src == dst:
            return 0.0
        out = self.send(kind + ".req", src, dst, request_bytes)
        back = self.send(kind + ".rep", dst, src, reply_bytes)
        return out + back

    def broadcast(
        self, kind: str, src: str, others, payload_bytes: int
    ) -> float:
        """Send to every other kernel; returns completion time.

        The copies fly concurrently, but the sender marshals each one
        serially, so completion is the slowest arrival plus the
        aggregate per-message sender CPU beyond the first copy (each
        ``send`` already charges one).
        """
        worst = 0.0
        fanout = 0
        for dst in others:
            t = self.send(kind, src, dst, payload_bytes)
            if t > 0.0:
                fanout += 1
            worst = max(worst, t)
        if fanout > 1:
            worst += (fanout - 1) * self.interconnect.per_message_cpu_s
        return worst

    def record_bulk(self, kind: str, count: int, bytes_each: int) -> float:
        """Account a pipelined bulk transfer of ``count`` messages.

        The hDSM bulk page-pull path computes its own (bandwidth-limited,
        pipelined) timing, so this only keeps the byte/message counters
        coherent: everything the interconnect records is attributable to
        a message kind.  Returns 0.0 — no latency is charged here.
        """
        if count <= 0:
            return 0.0
        self.counts[kind] += count
        self.bytes_by_kind[kind] += count * bytes_each
        self.interconnect.record(count * bytes_each)
        if self.tracer is not None:
            self.tracer.metrics.counter("msg.sends").inc(count)
            self.tracer.metrics.counter("msg.wire_bytes").inc(
                count * bytes_each
            )
        return 0.0

    def stats(self) -> Dict[str, int]:
        return dict(self.counts)

"""Checkpoint/restore — the homogeneous-ISA migration baseline.

The paper positions itself against CRIU-style migration: "Linux
applications can be migrated among homogeneous machines using
checkpoint/restore functionality [5] ... Our work contributes seamless
thread migration among heterogeneous-ISA machines without the
overheads of checkpoint/restore mechanisms."

This module implements that baseline faithfully enough to compare:

* :func:`checkpoint_process` freezes a process and captures its full
  image — memory words, heap allocator state, every thread's registers,
  activation frames, program counter and synchronisation state;
* :func:`restore_process` rebuilds the process on another kernel of the
  **same ISA** (restoring onto a different ISA raises
  :class:`CrossIsaRestoreError` — precisely the limitation that
  motivates multi-ISA binaries);
* :func:`checkpoint_transfer_seconds` models the downtime: the entire
  image crosses the wire up front, unlike the hDSM's on-demand pull.
"""

import copy
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.kernel.process import Barrier, CondVar, KernelThreadState, Mutex, Process, Thread, ThreadState
from repro.runtime.stack import Frame, UserStack

PER_PAGE_OVERHEAD_S = 0.4e-6  # freeze/dump bookkeeping per page
THREAD_CONTEXT_BYTES = 4096


class CheckpointError(Exception):
    pass


class CrossIsaRestoreError(CheckpointError):
    """A checkpoint image is ISA-specific; it cannot cross the boundary."""


@dataclass
class ThreadImage:
    tid: int
    thread_pointer: int
    stack_low: int
    stack_high: int
    stack_half: int
    regs: Dict[str, float]
    # (function name, cfa, resume position, pending call site id)
    frames: List[Tuple[str, int, Optional[Tuple[str, int]], int]]
    pc: Tuple[str, int]
    state: str
    blocked_on: Optional[Tuple[str, int]]
    vtime: float
    instructions: float
    exit_value: Optional[float]


@dataclass
class Checkpoint:
    """A frozen process image."""

    module_name: str
    isa_name: str
    pid: int
    memory: Dict[int, float]
    heap_brk: int
    heap_free: List[Tuple[int, int]]
    heap_allocated: Dict[int, int]
    threads: List[ThreadImage]
    barriers: Dict[int, Tuple[int, List[int], int]]
    mutexes: Dict[int, Tuple[Optional[int], List[int], int]]
    condvars: Dict[int, Tuple[List[Tuple[int, int]], int]]
    output: List[float]
    next_stack_index: int

    @property
    def image_bytes(self) -> int:
        """Dump size: every allocated heap byte (a real C/R tool ships
        resident pages whether or not they hold interesting values),
        plus touched non-heap words and per-thread contexts."""
        return (
            sum(self.heap_allocated.values())
            + 8 * len(self.memory)
            + THREAD_CONTEXT_BYTES * len(self.threads)
        )

    @property
    def pages(self) -> int:
        heap_pages = sum(size for size in self.heap_allocated.values()) // 4096
        return heap_pages + len({addr >> 12 for addr in self.memory})


def checkpoint_process(process: Process, system) -> Checkpoint:
    """Capture a quiescent process (no thread mid-kernel-operation)."""
    for thread in process.alive_threads:
        if thread.state == ThreadState.MIGRATING:
            raise CheckpointError(f"thread {thread.tid} is mid-migration")
    isa_name = system.isa_of(process.alive_threads[0].machine_name)
    images = []
    for thread in process.threads.values():
        images.append(
            ThreadImage(
                tid=thread.tid,
                thread_pointer=thread.thread_pointer,
                stack_low=thread.stack.low,
                stack_high=thread.stack.high,
                stack_half=thread.stack.half,
                regs=dict(thread.regs),
                frames=[
                    (f.mf.name, f.cfa, f.resume, f.call_site_id)
                    for f in thread.frames
                ],
                pc=thread.pc,
                state=thread.state.value,
                blocked_on=thread.blocked_on,
                vtime=thread.vtime,
                instructions=thread.instructions,
                exit_value=thread.exit_value,
            )
        )
    return Checkpoint(
        module_name=process.binary.module.name,
        isa_name=isa_name,
        pid=process.pid,
        memory=dict(process.space._mem),
        heap_brk=process.heap._brk,
        heap_free=list(process.heap._free),
        heap_allocated=dict(process.heap._allocated),
        threads=images,
        barriers={
            bid: (b.parties, list(b.waiting), b.generation)
            for bid, b in process.barriers.items()
        },
        mutexes={
            mid: (m.owner, list(m.waiters), m.acquisitions)
            for mid, m in process.mutexes.items()
        },
        condvars={
            cid: (list(c.waiters), c.signals)
            for cid, c in process.condvars.items()
        },
        output=list(process.output),
        next_stack_index=process._next_stack_index,
    )


def checkpoint_transfer_seconds(ckpt: Checkpoint, interconnect) -> float:
    """Downtime to ship the whole image before the restore can begin."""
    return (
        interconnect.transfer_time(ckpt.image_bytes)
        + ckpt.pages * PER_PAGE_OVERHEAD_S
    )


def restore_process(system, binary, ckpt: Checkpoint, machine_name: str) -> Process:
    """Materialise a checkpoint on ``machine_name`` (same ISA only)."""
    target_isa = system.isa_of(machine_name)
    if target_isa != ckpt.isa_name:
        raise CrossIsaRestoreError(
            f"checkpoint is {ckpt.isa_name} machine state; cannot restore "
            f"on {machine_name} ({target_isa}) — register files, stack "
            f"frames and code addresses do not translate. Use multi-ISA "
            f"binaries and live migration instead."
        )
    if binary.module.name != ckpt.module_name:
        raise CheckpointError(
            f"checkpoint of {ckpt.module_name!r} cannot restore binary "
            f"{binary.module.name!r}"
        )

    from repro.kernel.loader import load_binary

    process = load_binary(
        binary, ckpt.pid, machine_name, system.messaging, system.machine_order
    )
    process.container = None
    from repro.kernel.namespaces import HeterogeneousContainer

    process.container = HeterogeneousContainer(f"restored-{ckpt.pid}")
    process.container.span_to(machine_name)
    process.container.adopt(ckpt.pid)

    # Memory image and heap allocator state.
    process.space._mem = dict(ckpt.memory)
    process.heap._brk = ckpt.heap_brk
    process.heap._free = list(ckpt.heap_free)
    process.heap._allocated = dict(ckpt.heap_allocated)
    process._next_stack_index = ckpt.next_stack_index

    # Threads.
    kernel = system.kernels[machine_name]
    mfs = binary.binary_for(target_isa).machine_functions
    for image in ckpt.threads:
        stack = UserStack(image.stack_low, image.stack_high)
        stack.half = image.stack_half
        thread = Thread(image.tid, process, machine_name, stack, image.thread_pointer)
        thread.regs = dict(image.regs)
        thread.frames = [
            Frame(mf=mfs[name], cfa=cfa, resume=resume, call_site_id=site)
            for name, cfa, resume, site in image.frames
        ]
        thread.pc = image.pc
        thread.state = ThreadState(image.state)
        thread.blocked_on = image.blocked_on
        thread.vtime = image.vtime
        thread.instructions = image.instructions
        thread.exit_value = image.exit_value
        thread.kernel_state = {machine_name: KernelThreadState(machine_name)}
        process.threads[image.tid] = thread
        kernel.adopt_thread(thread)
        system.services.proctable.register_thread(
            machine_name, ckpt.pid, image.tid, machine_name
        )

    for bid, (parties, waiting, generation) in ckpt.barriers.items():
        barrier = Barrier(bid, parties)
        barrier.waiting = list(waiting)
        barrier.generation = generation
        process.barriers[bid] = barrier
    for mid, (owner, waiters, acquisitions) in ckpt.mutexes.items():
        mutex = Mutex(mid, owner=owner)
        mutex.waiters = list(waiters)
        mutex.acquisitions = acquisitions
        process.mutexes[mid] = mutex
    for cid, (cwaiters, signals) in ckpt.condvars.items():
        cond = CondVar(cid)
        cond.waiters = [tuple(w) for w in cwaiters]
        cond.signals = signals
        process.condvars[cid] = cond
    process.output = list(ckpt.output)

    system.processes[ckpt.pid] = process
    system._next_tid = max(
        [system._next_tid] + [t.tid + 1 for t in process.threads.values()]
    )
    system._next_pid = max(system._next_pid, ckpt.pid + 1)
    return process

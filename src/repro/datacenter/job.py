"""Jobs and the analytic duration model.

A job is one benchmark run (name, class, thread count).  Its duration
on a machine follows from the benchmark's instruction-class profile,
the target ISA's lowering expansion, the machine's per-class CPIs, and
Amdahl scaling over the thread count — the same quantities the
instruction-level execution engine charges, so the two models agree.
"""

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.machine.machine import Machine
from repro.workloads import profile_for
from repro.workloads.base import BenchProfile


@dataclass(frozen=True)
class JobSpec:
    """What to run."""

    bench: str
    cls: str
    threads: int

    def profile(self) -> BenchProfile:
        return profile_for(self.bench)

    def __str__(self) -> str:
        return f"{self.bench}.{self.cls}x{self.threads}"


def job_duration(spec: JobSpec, machine: Machine, threads_granted: Optional[int] = None) -> float:
    """Seconds to run ``spec`` on ``machine`` with no co-runners."""
    profile = spec.profile()
    by_class = profile.instructions_by_class(spec.cls)
    isa = machine.isa
    cycles = 0.0
    for cls, count in by_class.items():
        cycles += count * isa.expansion(cls) * machine.cpu.cpi.get(cls, 1.0)
    serial = cycles / machine.cpu.freq_hz
    threads = threads_granted if threads_granted is not None else spec.threads
    threads = max(1, min(threads, machine.cpu.cores))
    p = profile.parallel_fraction
    speedup = 1.0 / ((1.0 - p) + p / threads)
    return serial / speedup


class JobState(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"  # lost to a crash with no recovery path


class Job:
    """One job instance inside a cluster simulation."""

    _ids = itertools.count(1)

    def __init__(self, spec: JobSpec, arrival: float):
        self.job_id = next(Job._ids)
        self.spec = spec
        self.arrival = arrival
        self.state = JobState.PENDING
        self.machine: Optional[str] = None
        # Fraction of total demand still to execute (1 -> 0).
        self.remaining_fraction = 1.0
        # Extra seconds owed (migration penalties), machine-agnostic.
        self.penalty_seconds = 0.0
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.migrations = 0
        # Fault-recovery accounting (repro.faults).
        self.evacuations = 0  # live-migration drains off a dying node
        self.restarts = 0  # checkpoint/restart recoveries
        self.lost_seconds = 0.0  # progress discarded by C/R rollbacks

    @property
    def threads(self) -> int:
        return self.spec.threads

    def response_time(self) -> float:
        if self.finished_at is None:
            raise ValueError(f"job {self} not finished")
        return self.finished_at - self.arrival

    def __repr__(self) -> str:
        return f"Job#{self.job_id}({self.spec}, {self.state.value})"


def migration_penalty(spec: JobSpec, interconnect_bw: float) -> float:
    """Seconds a migration costs a job.

    Migration response (reaching the next migration point, one
    scheduling quantum at worst — take half), stack transformation for
    every thread, the kernel hand-off, and the post-migration DSM
    working-set pull at interconnect bandwidth.
    """
    response = 0.010  # ~half a 50M-instruction quantum
    transform = 0.0006 * spec.threads
    handoff = 0.0002 * spec.threads
    footprint = spec.profile().params(spec.cls).footprint_bytes
    dsm_pull = footprint / interconnect_bw
    return response + transform + handoff + dsm_pull

"""Nested-node sampling: real PopcornSystems inside the cluster DES.

The cluster and fleet simulators normally price a job with the analytic
:func:`repro.datacenter.job.job_duration` model.  For a *sampled*
subset of nodes they can instead nest a real single-machine
:class:`~repro.kernel.kernel.PopcornSystem`: build the workload binary
with the toolchain at a reduced scale, run it to completion on the
fast-forward engine, and extrapolate the measured simulated time back
to full size.  The measurement exercises the whole kernel stack —
loader, TLS, DSM, syscalls — so drift between the analytic model and
the executable model surfaces as a divergence on the sampled nodes.

Measurements are memoized per ``(bench, class, threads, isa)``, so a
fleet with thousands of nested job completions pays for each distinct
workload/ISA pair once.
"""

from typing import Dict, Tuple

from repro.datacenter.job import JobSpec


class NestedNodeSampler:
    """Measures job durations by running real workloads on one machine.

    ``scale`` shrinks both the migration-point target gap and the
    workload's dynamic instruction count; the full-size duration is the
    measured simulated time divided by ``scale`` (the workload builders
    scale the timed region linearly).  The default 0.01 keeps one
    measurement around a tenth of a wall-clock second.
    """

    def __init__(self, scale: float = 0.01, engine: str = "fast"):
        if not 0.0 < scale <= 1.0:
            raise ValueError(f"scale must be in (0, 1], got {scale}")
        self.scale = scale
        self.engine = engine
        self._memo: Dict[Tuple[str, str, int, str], float] = {}

    def duration(self, spec: JobSpec, isa: str) -> float:
        """Full-size duration of ``spec`` on a machine of ``isa``."""
        key = (spec.bench, spec.cls, spec.threads, isa)
        try:
            return self._memo[key]
        except KeyError:
            measured = self._measure(spec, isa)
            self._memo[key] = measured
            return measured

    def _measure(self, spec: JobSpec, isa: str) -> float:
        from repro.compiler import Toolchain
        from repro.compiler.migration_points import DEFAULT_TARGET_GAP
        from repro.kernel.testbed import boot_single
        from repro.runtime.execution import make_engine
        from repro.workloads import build_workload

        toolchain = Toolchain(
            target_gap=max(int(DEFAULT_TARGET_GAP * self.scale), 1000)
        )
        binary = toolchain.build(
            build_workload(spec.bench, spec.cls, spec.threads, self.scale)
        )
        system = boot_single(isa)
        process = system.exec_process(binary, system.machine_order[0])
        engine = make_engine(system, process, engine=self.engine)
        engine.run()
        if process.exit_code != 0:
            raise RuntimeError(
                f"nested run of {spec} on {isa} failed "
                f"(exit {process.exit_code})"
            )
        return system.clock.now / self.scale

"""Workload generators for the scheduling experiments.

Two arrival patterns, as evaluated in the paper:

* **sustained** (Figure 12): 40 jobs drawn uniformly from the benchmark
  mix; a fixed number run concurrently and "once a job finishes,
  another job is immediately scheduled in its place" (closed system);
* **periodic** (Figure 13): 5 waves of up to 14 jobs each, waves spaced
  uniformly between 60 and 240 seconds (open system with idle gaps).
"""

from typing import List, Optional, Sequence, Tuple

from repro.datacenter.job import JobSpec
from repro.sim.rng import DeterministicRng

# The paper's mix: short- and long-running, memory-, compute- and
# branch-intensive (NPB + Verus + bzip2smp).
DEFAULT_MIX: Tuple[JobSpec, ...] = (
    JobSpec("is", "A", 2),
    JobSpec("is", "B", 4),
    JobSpec("cg", "A", 2),
    JobSpec("cg", "B", 4),
    JobSpec("ft", "A", 4),
    JobSpec("ft", "B", 4),
    JobSpec("ep", "A", 4),
    JobSpec("ep", "B", 8),
    JobSpec("mg", "A", 2),
    JobSpec("mg", "B", 4),
    JobSpec("sp", "A", 4),
    JobSpec("bt", "A", 4),
    JobSpec("bzip2smp", "A", 2),
    JobSpec("bzip2smp", "B", 4),
    JobSpec("verus", "A", 1),
    JobSpec("verus", "B", 2),
)


def uniform_job_mix(
    rng: DeterministicRng,
    count: int,
    mix: Sequence[JobSpec] = DEFAULT_MIX,
    stream: str = "jobmix",
) -> List[JobSpec]:
    """Draw ``count`` specs uniformly from ``mix``."""
    return [rng.choice(stream, list(mix)) for _ in range(count)]


def sustained_backfill(
    rng: DeterministicRng,
    total_jobs: int = 40,
    concurrency: int = 4,
    mix: Sequence[JobSpec] = DEFAULT_MIX,
) -> Tuple[List[JobSpec], int]:
    """The Figure 12 workload: job list + target concurrency.

    The cluster simulator starts ``concurrency`` jobs at t=0 and
    back-fills from the remaining list on each completion, "without
    overloading any of the machines".
    """
    return uniform_job_mix(rng, total_jobs, mix), concurrency


def heavy_tailed_trace(
    rng: DeterministicRng,
    jobs: int = 60,
    horizon_s: float = 600.0,
    mix: Sequence[JobSpec] = DEFAULT_MIX,
) -> List[Tuple[float, JobSpec]]:
    """A Google-trace-style open arrival pattern.

    The paper cites the Google cluster analysis ([57]) for its duration
    spread ("execution times ranging from milliseconds to hundreds of
    seconds"): arrivals are Poisson-like over the horizon and the class
    draw is skewed so most jobs are small with a heavy tail of large
    ones (A:B:C ≈ 70:25:5).
    """
    arrivals: List[Tuple[float, JobSpec]] = []
    stream = rng.stream("trace")
    classes = ["A"] * 70 + ["B"] * 25 + ["C"] * 5
    t = 0.0
    for _ in range(jobs):
        t += stream.expovariate(jobs / horizon_s)
        base = rng.choice("jobmix", list(mix))
        cls = stream.choice(classes)
        if cls not in base.profile().classes:
            cls = "A"
        arrivals.append((t, JobSpec(base.bench, cls, base.threads)))
    return arrivals


def periodic_waves(
    rng: DeterministicRng,
    waves: int = 5,
    max_jobs_per_wave: int = 14,
    gap_range: Tuple[float, float] = (60.0, 240.0),
    mix: Sequence[JobSpec] = DEFAULT_MIX,
) -> List[Tuple[float, JobSpec]]:
    """The Figure 13 workload: (arrival_time, spec) pairs."""
    arrivals: List[Tuple[float, JobSpec]] = []
    t = 0.0
    for _ in range(waves):
        jobs_in_wave = rng.randint("wavesize", max_jobs_per_wave // 2, max_jobs_per_wave)
        for _ in range(jobs_in_wave):
            arrivals.append((t, rng.choice("jobmix", list(mix))))
        t += rng.uniform("wavegap", *gap_range)
    return arrivals

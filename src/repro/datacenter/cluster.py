"""The cluster simulator: processor-sharing DES with migration and
fault injection.

Between events every machine runs its resident jobs under processor
sharing (oversubscription stretches everyone equally); events are job
arrivals, completions, policy-driven migrations — and, when a
:class:`~repro.faults.inject.FaultSchedule` is attached, node crashes,
repairs, interconnect degradation windows and network partitions.
Recovery from a crash is delegated to a
:class:`~repro.faults.recovery.RecoveryPolicy` (evacuate via live
migration, checkpoint/restart, or fail-stop).  With no schedule the
fault machinery is inert and every number is bit-identical to the
fault-free simulator.

Energy integrates each machine's *internal* (on-package) power between
events, as the paper reports ("we only report internal power
readings"), with the McPAT FinFET projection optionally applied to the
ARM board.  A crashed node draws no power until repaired.

Since the DES unification the simulator runs on the shared
:mod:`repro.sim` substrate — a :class:`~repro.sim.clock.Clock` plus a
:class:`~repro.sim.events.EventQueue` — the same primitives the kernel
testbed charges time to.  A cluster run can therefore share its clock
with nested :class:`~repro.kernel.kernel.PopcornSystem` instances
(see :mod:`repro.datacenter.nested`): sampled nodes measure job
durations by actually executing the workload's binary on a real
replicated-kernel testbed while the remaining nodes run on the
analytic cost summaries.
"""

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from repro import validate
from repro.datacenter.energy import RunResult
from repro.datacenter.job import Job, JobSpec, JobState, job_duration, migration_penalty
from repro.datacenter.policies import SchedulingPolicy
from repro.linker.layout import PAGE_SIZE
from repro.machine.machine import Machine
from repro.machine.mcpat import project_finfet
from repro.sim.clock import Clock
from repro.sim.events import Simulator
from repro.telemetry.faultlog import FaultLog

if TYPE_CHECKING:  # pragma: no cover
    from repro.datacenter.nested import NestedNodeSampler
    from repro.faults.detector import FailureDetector
    from repro.faults.inject import FaultSchedule
    from repro.faults.recovery import RecoveryPolicy

DEFAULT_INTERCONNECT_BW = 64e9 / 8  # Dolphin PXH810


@dataclass
class Handoff:
    """One in-flight two-phase job hand-off (cluster-level PREPARE
    happened at ``prepared_at``; COMMIT is earliest at ``due_at``)."""

    job: Job
    src: str
    dst: str
    kind: str  # "evacuate" | "rebalance"
    prepared_at: float
    due_at: float
    penalty: float


class MachineNode:
    """One machine's scheduling state."""

    def __init__(self, machine: Machine, project_arm_finfet: bool = True):
        self.machine = machine
        power = machine.power
        if project_arm_finfet and machine.isa.name == "arm64":
            power = project_finfet(power)
        self.power = power
        self.jobs: List[Job] = []
        self.energy_joules = 0.0
        self.up = True  # flipped by NodeCrash/repair events

    @property
    def name(self) -> str:
        return self.machine.name

    @property
    def isa_name(self) -> str:
        return self.machine.isa.name

    @property
    def threads_in_use(self) -> int:
        return sum(j.threads for j in self.jobs)

    @property
    def busy_cores(self) -> float:
        return float(min(self.threads_in_use, self.machine.cpu.cores))

    @property
    def contention(self) -> float:
        cores = self.machine.cpu.cores
        return max(1.0, self.threads_in_use / cores)

    def cpu_power_now(self) -> float:
        return self.power.cpu_power(self.busy_cores)

    def accrue_energy(self, dt: float) -> None:
        self.energy_joules += self.cpu_power_now() * dt


class ClusterSimulator:
    """Runs one job set under one policy on a set of machines."""

    def __init__(
        self,
        machines: List[Machine],
        policy: SchedulingPolicy,
        interconnect_bw: float = DEFAULT_INTERCONNECT_BW,
        project_arm_finfet: bool = True,
        faults: Optional["FaultSchedule"] = None,
        recovery: Optional["RecoveryPolicy"] = None,
        detector: Optional["FailureDetector"] = None,
        two_phase: Optional[bool] = None,
        tracer=None,
        clock: Optional[Clock] = None,
        nested: Optional["NestedNodeSampler"] = None,
        nested_nodes: Tuple[str, ...] = (),
    ):
        if not machines:
            raise ValueError("cluster needs at least one machine")
        if tracer is None:
            from repro.telemetry.spans import maybe_tracer

            tracer = maybe_tracer()
        # Opt-in span tracer; the cluster itself is the "clock" (its
        # ``now`` attribute is the simulated time).
        self.tracer = tracer
        if tracer is not None:
            tracer.bind_clock(self)
        self.nodes = [MachineNode(m, project_arm_finfet) for m in machines]
        # Name -> node index: placement and migration lookups are O(1)
        # instead of a linear scan per migration.
        self._node_index: Dict[str, MachineNode] = {
            n.name: n for n in self.nodes
        }
        if len(self._node_index) != len(self.nodes):
            raise ValueError("machine names must be unique")
        # Live-node list, rebuilt only on up/down transitions so the
        # per-event admission/rebalance path allocates nothing.
        self._live_cache: Optional[List[MachineNode]] = None
        self.policy = policy
        self.interconnect_bw = interconnect_bw
        # The unified DES substrate: simulated time lives in a shared
        # repro.sim Clock and fault/protocol events in its EventQueue,
        # so cluster runs and nested kernel testbeds tick on the same
        # primitives.  ``now`` is a read-only view of the clock.
        self._sim = Simulator(clock)
        self.migrations = 0
        self._durations: Dict[Tuple[JobSpec, str], float] = {}
        self.finished: List[Job] = []
        # Nested-node sampling: jobs landing on these nodes take their
        # duration from a real PopcornSystem execution instead of the
        # analytic summary (repro.datacenter.nested).
        self.nested = nested
        self._nested_nodes = frozenset(nested_nodes)
        if self._nested_nodes and self.nested is None:
            from repro.datacenter.nested import NestedNodeSampler

            self.nested = NestedNodeSampler()
        unknown = self._nested_nodes - set(self._node_index)
        if unknown:
            raise ValueError(f"nested_nodes name unknown nodes {sorted(unknown)}")

        # ---- fault machinery (inert when no schedule is attached) ----
        self.recovery = recovery
        if self.recovery is None and faults is not None:
            from repro.faults.recovery import EvacuateLive

            self.recovery = EvacuateLive()
        if self.recovery is not None:
            self.recovery.reset()
        self.fault_log = FaultLog()
        if faults is not None:
            for event in faults:
                self._push_event(event.time, event.kind, event)
        self.parked: List[Tuple[Job, Optional[str]]] = []
        self._crash_since: Dict[str, float] = {}
        self._mttr_samples: List[float] = []
        self._degradations: List[object] = []
        self._partitions: List[Tuple[str, ...]] = []
        self.fault_events = 0
        self.jobs_evacuated = 0
        self.jobs_restarted = 0
        self.jobs_lost = 0
        self.lost_work_seconds = 0.0
        self.overhead_seconds = 0.0
        self.busy_seconds = 0.0

        # ---- failure detection & two-phase hand-off (inert when off) ----
        # With a detector, crashes are *detected* (heartbeats + lease)
        # instead of known omnisciently: a crashed node's jobs sit in
        # _undetected until the detector confirms the death.
        self.detector = detector
        self.two_phase = (
            bool(two_phase) if two_phase is not None else detector is not None
        )
        self._undetected: Dict[str, List[Job]] = {}
        self._fenced_alive: set = set()  # live nodes ostracised by a
        # false confirm; they rejoin when heard again
        self._in_flight: List[Handoff] = []
        self._mttd_samples: List[float] = []
        self.handoffs = 0
        self.handoffs_aborted = 0
        self.handoff_seconds = 0.0
        self.lost_page_count = 0
        if self.detector is not None:
            self.detector.reset([n.name for n in self.nodes], now=0.0)
            self._push_event(self.detector.period, "hb", None)
            if tracer is not None:
                self.detector.tracer = tracer
        # Opt-in conservation audit (REPRO_VALIDATE): None when off.
        self._checker = validate.make_cluster_checker()

    # --------------------------------------------------------- plumbing

    @property
    def now(self) -> float:
        """Current simulated time (the shared ``sim`` clock's view)."""
        return self._sim.now

    @property
    def clock(self) -> Clock:
        """The run's :class:`~repro.sim.clock.Clock` (shareable with
        nested kernel testbeds and fleet-level simulators)."""
        return self._sim.clock

    def _duration(self, spec: JobSpec, node: MachineNode) -> float:
        key = (spec, node.name)
        if key not in self._durations:
            if node.name in self._nested_nodes:
                self._durations[key] = self.nested.duration(
                    spec, node.machine.isa.name
                )
            else:
                self._durations[key] = job_duration(spec, node.machine)
        return self._durations[key]

    # Public alias for the recovery policies.
    duration_on = _duration

    def _node_of(self, job: Job) -> MachineNode:
        node = self._node_index.get(job.machine)
        if node is None:
            raise KeyError(f"job {job} has no node")
        return node

    def live_nodes(self) -> List[MachineNode]:
        """The up nodes, in declaration order (cached between
        up/down transitions; callers must not mutate the list)."""
        if self._live_cache is None:
            self._live_cache = [n for n in self.nodes if n.up]
        return self._live_cache

    def _node_up_changed(self) -> None:
        """Invalidate the live-node cache (a node came up / went down)."""
        self._live_cache = None

    def reachable(self, a: str, b: str) -> bool:
        """Can kernels on ``a`` and ``b`` exchange messages right now?"""
        for island in self._partitions:
            if (a in island) != (b in island):
                return False
        return True

    def effective_bandwidth(self) -> float:
        bw = self.interconnect_bw
        for degradation in self._degradations:
            bw *= degradation.bandwidth_factor
        return bw

    def _start(self, job: Job, node: MachineNode) -> None:
        job.state = JobState.RUNNING
        job.machine = node.name
        job.started_at = self.now
        node.jobs.append(job)
        if self.tracer is not None:
            self.tracer.instant(
                "sched.place", "sched", ts=self.now, track=node.name,
                job=str(job.spec),
            )
            self.tracer.metrics.counter("sched.placements").inc()

    # Public alias for the recovery policies.
    start_job = _start

    def _admit(self, job: Job) -> None:
        """Place an arriving job, parking it if no node is up."""
        live = self.live_nodes()
        if not live:
            self.park(job, None, reason="no node up at arrival")
            return
        self._start(job, self.policy.place(job, live))

    def _finish_time_of(self, job: Job, node: MachineNode) -> float:
        rate_seconds = self._duration(job.spec, node) * node.contention
        return job.remaining_fraction * rate_seconds

    def _advance(self, dt: float) -> None:
        """Progress all jobs and accrue energy for ``dt`` seconds."""
        if dt <= 0:
            return
        for node in self.nodes:
            if not node.up:
                continue  # powered off: no energy, no progress
            node.accrue_energy(dt)
            denom_base = node.contention
            for job in node.jobs:
                demand = self._duration(job.spec, node) * denom_base
                job.remaining_fraction -= dt / demand
            self.busy_seconds += dt * len(node.jobs)
        self._sim.clock.advance_by(dt)

    def _collect_finished(self) -> List[Job]:
        done: List[Job] = []
        for node in self.nodes:
            still: List[Job] = []
            for job in node.jobs:
                if job.remaining_fraction <= 1e-9:
                    job.remaining_fraction = 0.0
                    job.state = JobState.DONE
                    job.finished_at = self.now
                    done.append(job)
                    self.finished.append(job)
                else:
                    still.append(job)
            node.jobs = still
        return done

    def _apply_policy_migrations(self) -> None:
        if not self.policy.dynamic:
            return
        for job, dst in self.policy.rebalance(self.live_nodes()):
            src = self._node_of(job)
            if src is dst:
                continue
            if self._partitions and not self.reachable(src.name, dst.name):
                self.fault_log.record(
                    self.now, "blocked", node=dst.name,
                    detail=f"partition blocks {job.spec} "
                    f"{src.name}->{dst.name}",
                )
                continue
            src.jobs.remove(job)
            penalty = migration_penalty(job.spec, self.effective_bandwidth())
            extra = penalty / self._duration(job.spec, dst)
            job.remaining_fraction = min(job.remaining_fraction + extra, 1.0)
            job.machine = dst.name
            job.migrations += 1
            dst.jobs.append(job)
            self.migrations += 1
            self.overhead_seconds += penalty
            if self.tracer is not None:
                self.tracer.complete(
                    "sched.rebalance", "sched", self.now, penalty,
                    track=dst.name, job=str(job.spec), src=src.name,
                    dst=dst.name,
                )
                self.tracer.metrics.counter("sched.rebalances").inc()
                self.tracer.metrics.histogram(
                    "sched.rebalance_s"
                ).observe(penalty)

    def _next_completion_dt(self) -> Optional[float]:
        best: Optional[float] = None
        for node in self.nodes:
            for job in node.jobs:
                t = self._finish_time_of(job, node)
                if best is None or t < best:
                    best = t
        return best

    # ------------------------------------------------- fault machinery

    def _push_event(self, time: float, kind: str, payload: object) -> None:
        # Events land on the shared sim.events queue; ordering is
        # (time, push-sequence), exactly the pre-unification heap's
        # tie-break, so runs stay bit-identical.  The kind travels in
        # the event name and the dispatch closure carries the payload.
        self._sim.queue.push(
            time,
            lambda kind=kind, payload=payload: self._dispatch_fault(
                kind, payload
            ),
            name=kind,
        )

    def _next_fault_dt(self) -> Optional[float]:
        queue = self._sim.queue
        while True:
            head = queue.peek()
            if head is None:
                return None
            if head.name == "hb" and not self._heartbeats_matter():
                # Nothing left that a heartbeat round could detect or
                # unblock: let the recurring chain die so quiescent
                # runs terminate instead of ticking forever.
                queue.pop()
                continue
            return max(head.time - self.now, 0.0)

    def _heartbeats_matter(self) -> bool:
        if self._undetected or self._in_flight or self._fenced_alive:
            return True
        if self.detector is not None and self.detector.pending():
            return True
        # Any scheduled non-heartbeat event can still create suspicions.
        return any(e.name != "hb" for e in self._sim.queue.live())

    def _apply_due_faults(self) -> bool:
        """Dispatch every fault event due at (or before) ``now``."""
        applied = False
        while True:
            event = self._sim.queue.pop_due(self.now + 1e-9)
            if event is None:
                break
            event.action()
            applied = True
        if applied and self._in_flight:
            self._pump_handoffs()
        if applied and self.parked and self.recovery is not None:
            self.recovery.try_unpark(self)
        return applied

    def _dispatch_fault(self, kind: str, event: object) -> None:
        if kind == "hb":
            # Heartbeat rounds are protocol traffic, not faults: they
            # are excluded from the fault_events count.
            self._run_detector()
            self._push_event(self.now + self.detector.period, "hb", None)
            return
        if kind == "handoff":
            self._pump_handoffs()
            return
        self.fault_events += 1
        if self.tracer is not None:
            node = getattr(event, "node", None)
            if node is None and isinstance(event, str):
                node = event
            self.tracer.instant(
                f"fault.{kind}", "fault", ts=self.now,
                track=node if node is not None else "cluster",
            )
            self.tracer.metrics.counter("fault.events").inc()
        if kind == "crash":
            self._apply_crash(event)
        elif kind == "repair":
            name = event if isinstance(event, str) else event.node
            self._apply_repair(name)
        elif kind == "degrade":
            self._degradations.append(event)
            self._push_event(self.now + event.duration, "degrade-end", event)
            self.fault_log.record(
                self.now, "degrade",
                detail=f"bw x{event.bandwidth_factor:g}, "
                f"lat x{event.latency_factor:g} for {event.duration:g}s",
            )
        elif kind == "degrade-end":
            self._degradations.remove(event)
            self.fault_log.record(self.now, "degrade-end")
            self._attempt_rejoins()
        elif kind == "partition":
            island = tuple(event.island)
            self._partitions.append(island)
            self._push_event(self.now + event.duration, "heal", island)
            self.fault_log.record(
                self.now, "partition", detail=f"island {island}"
            )
        elif kind == "heal":
            self._partitions.remove(event)
            self.fault_log.record(self.now, "heal", detail=f"island {event}")
            self._attempt_rejoins()
        else:
            raise ValueError(f"unknown fault event kind {kind!r}")

    def _apply_crash(self, event) -> None:
        node = self._node_index.get(event.node)
        if node is None:
            raise KeyError(f"fault schedule names unknown node {event.node!r}")
        if not node.up:
            if node.name in self._fenced_alive:
                # An ostracised-but-live node really died.  Its jobs
                # were already reclaimed at fencing time; record the
                # death so it can never rejoin from the fence.
                self._fenced_alive.discard(node.name)
                self._crash_since[node.name] = self.now
                self.fault_log.record(
                    self.now, "crash", node=node.name,
                    detail="crashed while fenced",
                )
                if not event.permanent:
                    self._push_event(
                        self.now + event.repair_seconds, "repair", node.name
                    )
                return
            self.fault_log.record(
                self.now, "crash", node=node.name, detail="already down"
            )
            return
        node.up = False
        self._node_up_changed()
        self._crash_since[node.name] = self.now
        detail = (
            "permanent"
            if event.permanent
            else f"repair in {event.repair_seconds:g}s"
        )
        self.fault_log.record(self.now, "crash", node=node.name, detail=detail)
        victims = node.jobs
        node.jobs = []
        if not event.permanent:
            self._push_event(
                self.now + event.repair_seconds, "repair", node.name
            )
        if victims:
            if self.detector is not None:
                # Nobody knows yet: the jobs are in limbo until the
                # detector confirms the death (that latency is the MTTD).
                self._undetected[node.name] = victims
            elif self.recovery is not None:
                self.recovery.on_crash(self, node, victims)
            else:
                for job in victims:
                    self.lose_job(job)

    def _apply_repair(self, name: str) -> None:
        node = self._node_index[name]
        if node.up:
            return
        node.up = True
        self._node_up_changed()
        crashed_at = self._crash_since.pop(name, None)
        if crashed_at is not None:
            self._mttr_samples.append(self.now - crashed_at)
        if self.detector is not None:
            self.detector.clear(name, self.now)
        self.fault_log.record(self.now, "repair", node=name)
        victims = self._undetected.pop(name, None)
        if victims:
            # Repaired before the detector ever confirmed the crash —
            # the node is back but its memory is gone, so the victims
            # enter recovery only now.
            if self.recovery is not None:
                self.recovery.on_crash(self, node, victims)
            else:
                for job in victims:
                    self.lose_job(job)

    # --------------------------------------- failure detection rounds

    def _latency_stretch(self) -> float:
        stretch = 1.0
        for degradation in self._degradations:
            stretch *= getattr(degradation, "latency_factor", 1.0)
        return stretch

    def _majority_cell(self) -> frozenset:
        """The partition cell whose verdicts count (largest; ties break
        toward the cell holding the smallest node name)."""
        names = [n.name for n in self.nodes]
        cells = {
            frozenset(m for m in names if self.reachable(name, m))
            for name in names
        }
        return sorted(cells, key=lambda c: (-len(c), min(c)))[0]

    def _heartbeat_heard(self, name: str) -> bool:
        """Did the observer majority hear ``name`` this round?"""
        if (
            self.detector is not None
            and self._latency_stretch()
            >= self.detector.config.degradation_miss_factor
        ):
            return False  # heartbeats arrive after their timeout
        if self._partitions and name not in self._majority_cell():
            return False  # cut off from the majority: unheard, not dead
        return True

    def _run_detector(self) -> None:
        detector = self.detector
        heard: Dict[str, bool] = {}
        alive: Dict[str, bool] = {}
        for node in self.nodes:
            name = node.name
            truly_alive = name not in self._crash_since
            alive[name] = truly_alive
            heard[name] = truly_alive and self._heartbeat_heard(name)
        for name in sorted(self._fenced_alive):
            if heard.get(name):
                self._rejoin(name)
        for event, name in detector.observe(self.now, heard, alive):
            if event == "suspect":
                detail = "unheard"
                if alive[name]:
                    detail = "false suspicion (node is alive)"
                self.fault_log.record(
                    self.now, "suspect", node=name, detail=detail
                )
            elif event == "unsuspect":
                self.fault_log.record(self.now, "unsuspect", node=name)
            elif event == "confirm":
                self._confirm_dead(name)

    def _confirm_dead(self, name: str) -> None:
        """The lease expired: the cluster now acts on the death verdict."""
        node = self._node_index[name]
        crashed_at = self._crash_since.get(name)
        if crashed_at is not None:
            # A real crash, finally detected.
            mttd = self.now - crashed_at
            self._mttd_samples.append(mttd)
            self.fault_log.record(
                self.now, "confirm", node=name,
                detail=f"dead, detected after {mttd:.2f}s",
            )
            victims = self._undetected.pop(name, [])
        elif node.up:
            # False confirm: a live node's lease expired.  Fencing makes
            # the verdict safe — the node stops acting until it rejoins —
            # at the price of treating its jobs as crashed.
            node.up = False
            self._node_up_changed()
            self._fenced_alive.add(name)
            victims = node.jobs
            node.jobs = []
            if self.tracer is not None:
                self.tracer.instant(
                    "fault.fence", "fault", ts=self.now, track=name
                )
                self.tracer.metrics.counter("fault.fences").inc()
            self.fault_log.record(
                self.now, "fence", node=name,
                detail="lease expired on a live node (false confirm)",
            )
        else:
            return
        if victims:
            if self.recovery is not None:
                self.recovery.on_crash(self, node, victims)
            else:
                for job in victims:
                    self.lose_job(job)
        if self._in_flight:
            self._pump_handoffs()

    def _attempt_rejoins(self) -> None:
        for name in sorted(self._fenced_alive):
            if name not in self._crash_since and self._heartbeat_heard(name):
                self._rejoin(name)

    def _rejoin(self, name: str) -> None:
        node = self._node_index[name]
        node.up = True
        self._node_up_changed()
        self._fenced_alive.discard(name)
        if self.detector is not None:
            self.detector.clear(name, self.now)
        if self.tracer is not None:
            self.tracer.instant(
                "fault.rejoin", "fault", ts=self.now, track=name
            )
            self.tracer.metrics.counter("fault.rejoins").inc()
        self.fault_log.record(
            self.now, "rejoin", node=name, detail="fenced node heard again"
        )
        if self.parked and self.recovery is not None:
            self.recovery.try_unpark(self)

    # ------------------------------------------- two-phase job hand-off

    def placement_nodes(self) -> List[MachineNode]:
        """Nodes jobs may be placed on: live, and (with a detector) not
        currently suspected — placing work on a node the detector is
        about to fence would hand it straight to the next confirm."""
        if self.detector is None:
            return self.live_nodes()
        return [
            n
            for n in self.nodes
            if n.up
            and not self.detector.is_suspected(n.name)
            and not self.detector.is_fenced(n.name)
        ]

    def begin_handoff(
        self, job: Job, src_name: str, dst: MachineNode, kind: str = "evacuate"
    ) -> Handoff:
        """PREPARE a job hand-off; COMMIT happens when the transfer is
        due and the destination is still alive, else it aborts."""
        penalty = migration_penalty(job.spec, self.effective_bandwidth())
        job.state = JobState.PENDING
        job.machine = None
        handoff = Handoff(
            job=job,
            src=src_name,
            dst=dst.name,
            kind=kind,
            prepared_at=self.now,
            due_at=self.now + penalty,
            penalty=penalty,
        )
        self._in_flight.append(handoff)
        self._push_event(handoff.due_at, "handoff", handoff)
        self.handoffs += 1
        self.fault_log.record(
            self.now, "handoff-begin", node=dst.name,
            detail=f"{job.spec} {src_name}->{dst.name} ({kind}, "
            f"{penalty * 1e3:.1f} ms in flight)",
        )
        return handoff

    def _pump_handoffs(self) -> None:
        remaining: List[Handoff] = []
        for handoff in self._in_flight:
            dst_node = self._node_index[handoff.dst]
            if not dst_node.up:
                self._abort_handoff(handoff)
            elif self.now + 1e-9 >= handoff.due_at:
                if self.reachable(handoff.src, handoff.dst):
                    self._commit_handoff(handoff, dst_node)
                else:
                    remaining.append(handoff)  # stalled by a partition
            else:
                remaining.append(handoff)
        self._in_flight = remaining

    def _commit_handoff(self, handoff: Handoff, dst_node: MachineNode) -> None:
        job = handoff.job
        self._start(job, dst_node)
        job.migrations += 1
        self.migrations += 1
        self.handoff_seconds += self.now - handoff.prepared_at
        if self.tracer is not None:
            in_flight = self.now - handoff.prepared_at
            self.tracer.complete(
                "sched.handoff", "sched", handoff.prepared_at, in_flight,
                track=handoff.dst, job=str(job.spec), src=handoff.src,
                dst=handoff.dst, kind=handoff.kind, committed=True,
            )
            self.tracer.metrics.counter("sched.handoffs").inc()
            self.tracer.metrics.histogram(
                "sched.handoff_s"
            ).observe(in_flight)
        if handoff.kind == "evacuate":
            job.evacuations += 1
            self.jobs_evacuated += 1
        self.fault_log.record(
            self.now, "handoff-commit", node=dst_node.name,
            detail=f"{job.spec} resumed after "
            f"{(self.now - handoff.prepared_at) * 1e3:.1f} ms in flight",
        )

    def _abort_handoff(self, handoff: Handoff) -> None:
        """Destination died in flight: exactly one copy rule says the
        source-side state is still the job — re-drain or park it."""
        job = handoff.job
        self.handoffs_aborted += 1
        if self.tracer is not None:
            self.tracer.complete(
                "sched.handoff", "sched", handoff.prepared_at,
                self.now - handoff.prepared_at, track=handoff.dst,
                job=str(job.spec), src=handoff.src, dst=handoff.dst,
                kind=handoff.kind, committed=False,
            )
            self.tracer.metrics.counter("sched.handoffs_aborted").inc()
        self.fault_log.record(
            self.now, "handoff-abort", node=handoff.dst,
            detail=f"{job.spec}: destination died in flight",
        )
        targets = [
            n for n in self.placement_nodes() if n.name != handoff.dst
        ]
        if not targets:
            self.park(job, None, reason="hand-off aborted, no live target")
            return
        dst = self.policy.place(job, targets)
        self.begin_handoff(job, handoff.src, dst, handoff.kind)

    def park(self, job: Job, required_isa: Optional[str], reason: str = "") -> None:
        """Queue a job until a node satisfying ``required_isa`` is up."""
        job.state = JobState.PENDING
        job.machine = None
        self.parked.append((job, required_isa))
        if self.tracer is not None:
            self.tracer.instant(
                "sched.park", "sched", ts=self.now, track="cluster",
                job=str(job.spec),
            )
            self.tracer.metrics.counter("sched.parked").inc()
        detail = f"{job.spec}"
        if required_isa:
            detail += f" needs {required_isa}"
        if reason:
            detail += f" ({reason})"
        self.fault_log.record(self.now, "park", detail=detail)

    def lose_job(self, job: Job) -> None:
        if job.state is JobState.RUNNING and job.started_at is not None:
            # Work invested in a job that will never finish is not
            # goodput.  (Parked jobs were already charged when their
            # progress was rolled back.)
            wasted = self.now - job.started_at
            if wasted > 0.0:
                job.lost_seconds += wasted
                self.lost_work_seconds += wasted
        if job.state is JobState.RUNNING:
            # Every dirty page of a fail-stopped job's working set had
            # its sole copy on the dead node: loudly lost, not silently
            # refetched (mirrors LostPageError at the kernel layer).
            params = job.spec.profile().params(job.spec.cls)
            self.lost_page_count += params.footprint_bytes // PAGE_SIZE
        job.state = JobState.FAILED
        job.machine = None
        self.jobs_lost += 1
        if self.tracer is not None:
            self.tracer.instant(
                "sched.lost", "sched", ts=self.now, track="cluster",
                job=str(job.spec),
            )
            self.tracer.metrics.counter("sched.jobs_lost").inc()
        self.fault_log.record(self.now, "lost", detail=f"{job.spec}")

    def _abandon_parked(self) -> int:
        """No event can ever free a parked job: count it lost."""
        lost = len(self.parked)
        for job, _ in self.parked:
            self.lose_job(job)
        self.parked = []
        return lost

    def _post_advance(self) -> None:
        if self.recovery is not None:
            self.recovery.note_progress(self)

    # ------------------------------------------------------ experiment

    def run_sustained(self, specs: List[JobSpec], concurrency: int) -> RunResult:
        """Closed system: keep ``concurrency`` jobs in flight (Fig. 12)."""
        queue = [Job(s, arrival=0.0) for s in specs]
        pending = list(queue)
        if self._checker is not None:
            self._checker.begin(len(queue))
        in_flight = 0
        for _ in range(min(concurrency, len(pending))):
            job = pending.pop(0)
            self._admit(job)
            in_flight += 1
        self._apply_policy_migrations()

        while in_flight > 0:
            candidates = []
            dt_done = self._next_completion_dt()
            if dt_done is not None:
                candidates.append(dt_done)
            dt_fault = self._next_fault_dt()
            if dt_fault is not None:
                candidates.append(dt_fault)
            if not candidates:
                in_flight -= self._abandon_parked()
                if in_flight > 0:
                    raise RuntimeError("jobs in flight but none progressing")
                break
            dt = min(candidates)
            self._advance(dt)
            self._post_advance()
            done = self._collect_finished()
            in_flight -= len(done)
            lost_before = self.jobs_lost
            faulted = self._apply_due_faults()
            lost = self.jobs_lost - lost_before
            in_flight -= lost  # fail-stopped jobs leave the system too
            for _ in range(len(done) + lost):
                if pending:
                    job = pending.pop(0)
                    job.arrival = self.now
                    self._admit(job)
                    in_flight += 1
            if done or faulted:
                self._apply_policy_migrations()
            if self._checker is not None:
                self._checker.check(self, outstanding=len(pending))
        return self._result(len(queue), outstanding=len(pending))

    def run_periodic(self, arrivals: List[Tuple[float, JobSpec]]) -> RunResult:
        """Open system with timed arrivals (Fig. 13)."""
        schedule = sorted(
            (Job(spec, arrival=t) for t, spec in arrivals),
            key=lambda j: (j.arrival, j.job_id),
        )
        idx = 0
        total = len(schedule)
        if self._checker is not None:
            self._checker.begin(total)
        while (
            idx < total
            or any(n.jobs for n in self.nodes)
            or self.parked
            or self._in_flight
            or self._undetected
        ):
            next_arrival = schedule[idx].arrival if idx < total else None
            dt_done = self._next_completion_dt()
            candidates = []
            if next_arrival is not None:
                candidates.append(next_arrival - self.now)
            if dt_done is not None:
                candidates.append(dt_done)
            dt_fault = self._next_fault_dt()
            if dt_fault is not None:
                candidates.append(dt_fault)
            if not candidates:
                self._abandon_parked()
                break
            dt = max(min(candidates), 0.0)
            self._advance(dt)
            self._post_advance()
            changed = bool(self._collect_finished())
            if self._apply_due_faults():
                changed = True
            while idx < total and schedule[idx].arrival <= self.now + 1e-9:
                job = schedule[idx]
                idx += 1
                self._admit(job)
                changed = True
            if changed:
                self._apply_policy_migrations()
            if self._checker is not None:
                self._checker.check(self, outstanding=total - idx)
        return self._result(total, outstanding=total - idx)

    def _result(self, job_count: int, outstanding: int = 0) -> RunResult:
        if self._checker is not None:
            self._checker.check(self, outstanding=outstanding, final=True)
        useful = max(
            self.busy_seconds - self.lost_work_seconds - self.overhead_seconds,
            0.0,
        )
        return RunResult(
            policy=self.policy.name,
            makespan=self.now,
            energy_by_machine={n.name: n.energy_joules for n in self.nodes},
            migrations=self.migrations,
            job_count=job_count,
            mean_response=(
                sum(j.response_time() for j in self.finished) / len(self.finished)
                if self.finished
                else 0.0
            ),
            fault_events=self.fault_events,
            jobs_evacuated=self.jobs_evacuated,
            jobs_restarted=self.jobs_restarted,
            jobs_lost=self.jobs_lost,
            lost_work_seconds=self.lost_work_seconds,
            overhead_seconds=self.overhead_seconds,
            busy_seconds=self.busy_seconds,
            mttr=(
                sum(self._mttr_samples) / len(self._mttr_samples)
                if self._mttr_samples
                else 0.0
            ),
            goodput=useful / self.now if self.now > 0 else 0.0,
            fault_trace=list(self.fault_log.entries),
            mttd=(
                sum(self._mttd_samples) / len(self._mttd_samples)
                if self._mttd_samples
                else 0.0
            ),
            false_suspicions=(
                self.detector.stats.false_suspicions
                if self.detector is not None
                else 0
            ),
            lost_pages=self.lost_page_count,
            handoffs=self.handoffs,
            handoffs_aborted=self.handoffs_aborted,
            handoff_seconds=self.handoff_seconds,
            metrics=(
                self.tracer.metrics.snapshot()
                if self.tracer is not None
                else {}
            ),
        )

"""The cluster simulator: processor-sharing DES with migration.

Between events every machine runs its resident jobs under processor
sharing (oversubscription stretches everyone equally); events are job
arrivals, completions, and policy-driven migrations.  Energy integrates
each machine's *internal* (on-package) power between events, as the
paper reports ("we only report internal power readings"), with the
McPAT FinFET projection optionally applied to the ARM board.
"""

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.datacenter.energy import RunResult
from repro.datacenter.job import Job, JobSpec, JobState, job_duration, migration_penalty
from repro.datacenter.policies import SchedulingPolicy
from repro.machine.machine import Machine
from repro.machine.mcpat import project_finfet

DEFAULT_INTERCONNECT_BW = 64e9 / 8  # Dolphin PXH810


class MachineNode:
    """One machine's scheduling state."""

    def __init__(self, machine: Machine, project_arm_finfet: bool = True):
        self.machine = machine
        power = machine.power
        if project_arm_finfet and machine.isa.name == "arm64":
            power = project_finfet(power)
        self.power = power
        self.jobs: List[Job] = []
        self.energy_joules = 0.0

    @property
    def name(self) -> str:
        return self.machine.name

    @property
    def threads_in_use(self) -> int:
        return sum(j.threads for j in self.jobs)

    @property
    def busy_cores(self) -> float:
        return float(min(self.threads_in_use, self.machine.cpu.cores))

    @property
    def contention(self) -> float:
        cores = self.machine.cpu.cores
        return max(1.0, self.threads_in_use / cores)

    def cpu_power_now(self) -> float:
        return self.power.cpu_power(self.busy_cores)

    def accrue_energy(self, dt: float) -> None:
        self.energy_joules += self.cpu_power_now() * dt


class ClusterSimulator:
    """Runs one job set under one policy on a set of machines."""

    def __init__(
        self,
        machines: List[Machine],
        policy: SchedulingPolicy,
        interconnect_bw: float = DEFAULT_INTERCONNECT_BW,
        project_arm_finfet: bool = True,
    ):
        if not machines:
            raise ValueError("cluster needs at least one machine")
        self.nodes = [MachineNode(m, project_arm_finfet) for m in machines]
        self.policy = policy
        self.interconnect_bw = interconnect_bw
        self.now = 0.0
        self.migrations = 0
        self._durations: Dict[Tuple[JobSpec, str], float] = {}
        self.finished: List[Job] = []

    # --------------------------------------------------------- plumbing

    def _duration(self, spec: JobSpec, node: MachineNode) -> float:
        key = (spec, node.name)
        if key not in self._durations:
            self._durations[key] = job_duration(spec, node.machine)
        return self._durations[key]

    def _node_of(self, job: Job) -> MachineNode:
        for node in self.nodes:
            if node.name == job.machine:
                return node
        raise KeyError(f"job {job} has no node")

    def _start(self, job: Job, node: MachineNode) -> None:
        job.state = JobState.RUNNING
        job.machine = node.name
        job.started_at = self.now
        node.jobs.append(job)

    def _finish_time_of(self, job: Job, node: MachineNode) -> float:
        rate_seconds = self._duration(job.spec, node) * node.contention
        return job.remaining_fraction * rate_seconds

    def _advance(self, dt: float) -> None:
        """Progress all jobs and accrue energy for ``dt`` seconds."""
        if dt <= 0:
            return
        for node in self.nodes:
            node.accrue_energy(dt)
            denom_base = node.contention
            for job in node.jobs:
                demand = self._duration(job.spec, node) * denom_base
                job.remaining_fraction -= dt / demand
        self.now += dt

    def _collect_finished(self) -> List[Job]:
        done: List[Job] = []
        for node in self.nodes:
            still: List[Job] = []
            for job in node.jobs:
                if job.remaining_fraction <= 1e-9:
                    job.remaining_fraction = 0.0
                    job.state = JobState.DONE
                    job.finished_at = self.now
                    done.append(job)
                    self.finished.append(job)
                else:
                    still.append(job)
            node.jobs = still
        return done

    def _apply_policy_migrations(self) -> None:
        if not self.policy.dynamic:
            return
        for job, dst in self.policy.rebalance(self.nodes):
            src = self._node_of(job)
            if src is dst:
                continue
            src.jobs.remove(job)
            penalty = migration_penalty(job.spec, self.interconnect_bw)
            extra = penalty / self._duration(job.spec, dst)
            job.remaining_fraction = min(job.remaining_fraction + extra, 1.0)
            job.machine = dst.name
            job.migrations += 1
            dst.jobs.append(job)
            self.migrations += 1

    def _next_completion_dt(self) -> Optional[float]:
        best: Optional[float] = None
        for node in self.nodes:
            for job in node.jobs:
                t = self._finish_time_of(job, node)
                if best is None or t < best:
                    best = t
        return best

    # ------------------------------------------------------ experiment

    def run_sustained(self, specs: List[JobSpec], concurrency: int) -> RunResult:
        """Closed system: keep ``concurrency`` jobs in flight (Fig. 12)."""
        queue = [Job(s, arrival=0.0) for s in specs]
        pending = list(queue)
        in_flight = 0
        for _ in range(min(concurrency, len(pending))):
            job = pending.pop(0)
            self._start(job, self.policy.place(job, self.nodes))
            in_flight += 1
        self._apply_policy_migrations()

        while in_flight > 0:
            dt = self._next_completion_dt()
            if dt is None:
                raise RuntimeError("jobs in flight but none progressing")
            self._advance(dt)
            done = self._collect_finished()
            in_flight -= len(done)
            for _ in done:
                if pending:
                    job = pending.pop(0)
                    job.arrival = self.now
                    self._start(job, self.policy.place(job, self.nodes))
                    in_flight += 1
            if done:
                self._apply_policy_migrations()
        return self._result(len(queue))

    def run_periodic(self, arrivals: List[Tuple[float, JobSpec]]) -> RunResult:
        """Open system with timed arrivals (Fig. 13)."""
        schedule = sorted(
            (Job(spec, arrival=t) for t, spec in arrivals),
            key=lambda j: (j.arrival, j.job_id),
        )
        idx = 0
        total = len(schedule)
        while idx < total or any(n.jobs for n in self.nodes):
            next_arrival = schedule[idx].arrival if idx < total else None
            dt_done = self._next_completion_dt()
            candidates = []
            if next_arrival is not None:
                candidates.append(next_arrival - self.now)
            if dt_done is not None:
                candidates.append(dt_done)
            if not candidates:
                break
            dt = max(min(candidates), 0.0)
            self._advance(dt)
            changed = bool(self._collect_finished())
            while idx < total and schedule[idx].arrival <= self.now + 1e-9:
                job = schedule[idx]
                idx += 1
                self._start(job, self.policy.place(job, self.nodes))
                changed = True
            if changed:
                self._apply_policy_migrations()
        return self._result(total)

    def _result(self, job_count: int) -> RunResult:
        return RunResult(
            policy=self.policy.name,
            makespan=self.now,
            energy_by_machine={n.name: n.energy_joules for n in self.nodes},
            migrations=self.migrations,
            job_count=job_count,
            mean_response=(
                sum(j.response_time() for j in self.finished) / len(self.finished)
                if self.finished
                else 0.0
            ),
        )

"""The five scheduling policies of Section 6 ("Job Scheduling").

Static policies assign a job to a machine at arrival and can never
move it; dynamic policies may migrate running jobs (heterogeneous-ISA
migration makes that legal across the ARM/x86 boundary).  Balanced
policies equalise the number of threads per machine; unbalanced
policies deliberately skew threads toward the x86 machine, following
the observation (DeVuyst et al.) that unbalanced thread scheduling on
heterogeneous processors can save energy.
"""

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.datacenter.job import Job

if TYPE_CHECKING:  # pragma: no cover
    from repro.datacenter.cluster import MachineNode


class SchedulingPolicy:
    """Base policy: least-loaded placement, no migration."""

    name = "base"
    dynamic = False
    # Relative thread quota per ISA; higher weight -> more threads.
    weights: Dict[str, float] = {"x86_64": 1.0, "arm64": 1.0}

    def _weight(self, node: "MachineNode") -> float:
        return self.weights.get(node.machine.isa.name, 1.0)

    def _pressure(self, node: "MachineNode", extra_threads: int = 0) -> float:
        return (node.threads_in_use + extra_threads) / self._weight(node)

    def place(self, job: Job, nodes: List["MachineNode"]) -> "MachineNode":
        """Choose the node for an arriving job."""
        return min(
            nodes,
            key=lambda n: (self._pressure(n, job.threads), n.machine.name),
        )

    def rebalance(
        self, nodes: List["MachineNode"]
    ) -> List[Tuple[Job, "MachineNode"]]:
        """Migrations to perform now (dynamic policies only)."""
        return []


class StaticX86Pair(SchedulingPolicy):
    """Balance threads across two identical x86 machines (baseline)."""

    name = "static-x86(2)"


class StaticHetBalanced(SchedulingPolicy):
    """Balance thread counts across the ARM and x86 machines; static."""

    name = "static-het-balanced"


class StaticHetUnbalanced(SchedulingPolicy):
    """Skew threads toward x86 (it is ~4-6x faster per core); static."""

    name = "static-het-unbalanced"
    weights = {"x86_64": 4.0, "arm64": 1.0}


class _DynamicMixin(SchedulingPolicy):
    """Shared migration logic for the dynamic policies."""

    dynamic = True
    max_migrations_per_job = 4
    min_remaining_fraction = 0.15

    def rebalance(self, nodes):
        moves: List[Tuple[Job, "MachineNode"]] = []
        if len(nodes) < 2:
            return moves
        # One corrective move per event keeps the policy stable.
        donor = max(nodes, key=self._pressure)
        receiver = min(nodes, key=self._pressure)
        if donor is receiver:
            return moves
        candidates = [
            j
            for j in donor.jobs
            if j.migrations < self.max_migrations_per_job
            and j.remaining_fraction > self.min_remaining_fraction
        ]
        for job in sorted(candidates, key=lambda j: -j.remaining_fraction):
            before = abs(self._pressure(donor) - self._pressure(receiver))
            after = abs(
                self._pressure(donor, -job.threads)
                - self._pressure(receiver, job.threads)
            )
            if after + 1e-9 < before:
                moves.append((job, receiver))
                break
        return moves


class DynamicBalanced(_DynamicMixin):
    """Keep thread counts balanced between ARM and x86; migrate."""

    name = "dynamic-balanced"


class DynamicUnbalanced(_DynamicMixin):
    """Keep x86 loaded ~4x heavier than ARM; migrate."""

    name = "dynamic-unbalanced"
    weights = {"x86_64": 4.0, "arm64": 1.0}


POLICIES = {
    policy.name: policy
    for policy in (
        StaticX86Pair,
        StaticHetBalanced,
        StaticHetUnbalanced,
        DynamicBalanced,
        DynamicUnbalanced,
    )
}


def make_policy(name: str) -> SchedulingPolicy:
    try:
        return POLICIES[name]()
    except KeyError:
        raise KeyError(f"unknown policy {name!r}; have {sorted(POLICIES)}") from None

"""Datacenter-level scheduling experiments (Section 7, Figures 12-13).

A processor-sharing discrete-event simulation of jobs on a small
cluster, with the five scheduling policies of the paper: static
assignment to two identical x86 machines, static balanced/unbalanced
assignment to the ARM+x86 pair, and dynamic balanced/unbalanced
policies that exploit heterogeneous-ISA migration.  Job durations come
from the workloads' analytic profiles (the same profiles the execution
engine realises instruction-by-instruction), and energy integrates each
machine's power model — with the McPAT FinFET projection applied to the
ARM board, as in the paper.
"""

from repro.datacenter.job import Job, JobSpec, job_duration
from repro.datacenter.arrivals import (
    heavy_tailed_trace,
    periodic_waves,
    sustained_backfill,
    uniform_job_mix,
)
from repro.datacenter.policies import (
    POLICIES,
    DynamicBalanced,
    DynamicUnbalanced,
    SchedulingPolicy,
    StaticHetBalanced,
    StaticHetUnbalanced,
    StaticX86Pair,
    make_policy,
)
from repro.datacenter.cluster import ClusterSimulator, MachineNode
from repro.datacenter.energy import RunResult, summarize_runs
from repro.datacenter.nested import NestedNodeSampler

__all__ = [
    "JobSpec",
    "Job",
    "job_duration",
    "uniform_job_mix",
    "sustained_backfill",
    "periodic_waves",
    "heavy_tailed_trace",
    "SchedulingPolicy",
    "StaticX86Pair",
    "StaticHetBalanced",
    "StaticHetUnbalanced",
    "DynamicBalanced",
    "DynamicUnbalanced",
    "POLICIES",
    "make_policy",
    "ClusterSimulator",
    "MachineNode",
    "NestedNodeSampler",
    "RunResult",
    "summarize_runs",
]

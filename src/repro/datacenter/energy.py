"""Result records and cross-policy summaries (energy, makespan, EDP)."""

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class RunResult:
    """One (job set, policy) simulation outcome.

    The fault fields default to a fault-free run, so results from the
    zero-fault path compare equal to pre-fault-subsystem results.
    """

    policy: str
    makespan: float
    energy_by_machine: Dict[str, float]
    migrations: int
    job_count: int
    mean_response: float = 0.0
    # ---- fault injection & recovery (repro.faults) ----
    fault_events: int = 0
    jobs_evacuated: int = 0
    jobs_restarted: int = 0
    jobs_lost: int = 0
    lost_work_seconds: float = 0.0  # progress rolled back by C/R
    overhead_seconds: float = 0.0  # migration penalties + restore downtime
    busy_seconds: float = 0.0  # summed wall seconds jobs spent running
    mttr: float = 0.0  # mean crash-to-repair time over repaired nodes
    goodput: float = 0.0  # useful seconds per wall second
    fault_trace: List = field(default_factory=list)  # FaultLogEntry list
    # ---- failure detection & two-phase hand-off (crash consistency) ----
    mttd: float = 0.0  # mean crash-to-confirmed-dead time (0 = omniscient)
    false_suspicions: int = 0  # live nodes suspected (partition/degradation)
    lost_pages: int = 0  # dirty pages whose only copy died with a node
    handoffs: int = 0  # two-phase hand-offs begun
    handoffs_aborted: int = 0  # rolled back (destination died mid-flight)
    handoff_seconds: float = 0.0  # summed in-flight (PREPARE->COMMIT) time
    # ---- observability (repro.telemetry.spans) ----
    # MetricsRegistry.snapshot() of the run's tracer; empty when
    # tracing is off, so untraced results compare equal to old ones.
    metrics: Dict[str, object] = field(default_factory=dict)
    # ---- open-loop serving (repro.serving) ----
    # Request-latency percentiles and SLO accounting; all-zero for
    # batch (non-serving) runs so old results compare equal.
    requests: int = 0  # requests admitted by the open-loop trace
    requests_completed: int = 0
    p50_latency_s: float = 0.0
    p99_latency_s: float = 0.0
    p999_latency_s: float = 0.0
    slo_target_s: float = 0.0  # the latency SLO the run was held to
    slo_violations: int = 0  # requests finishing above the target
    slo_violation_seconds: float = 0.0  # summed latency excess over target
    migration_stall_seconds: float = 0.0  # request wait attributed to hand-offs
    # ---- serving resilience (repro.serving.resilience) ----
    # Fault-tolerant serving outcomes; all-zero (and attainment 0.0)
    # on fault-free runs without resilience gates, so pre-resilience
    # results compare equal.
    requests_shed: int = 0  # rejected at admission (rate/queue gates)
    requests_failed: int = 0  # failed loudly (deadline or retries exhausted)
    requests_retried: int = 0  # distinct requests replayed after a crash
    requests_hedged: int = 0  # requests raced on the other machine
    retry_attempts: int = 0  # total crash-killed replays
    failovers: int = 0  # service relocations forced by node death
    breaker_opens: int = 0  # circuit-breaker open transitions
    goodput_rps: float = 0.0  # completed-in-SLO requests per second
    slo_attainment: float = 0.0  # completed-in-SLO / offered
    false_confirms: int = 0  # live nodes fenced by the detector

    @property
    def total_energy(self) -> float:
        return sum(self.energy_by_machine.values())

    @property
    def edp(self) -> float:
        """Energy-delay product (J * s)."""
        return self.total_energy * self.makespan

    def energy_reduction_vs(self, baseline: "RunResult") -> float:
        """Fractional energy saving relative to ``baseline`` (0.22 = 22%)."""
        if baseline.total_energy <= 0:
            return 0.0
        return 1.0 - self.total_energy / baseline.total_energy

    def makespan_ratio_vs(self, baseline: "RunResult") -> float:
        if baseline.makespan <= 0:
            return float("inf")
        return self.makespan / baseline.makespan

    def edp_reduction_vs(self, baseline: "RunResult") -> float:
        if baseline.edp <= 0:
            return 0.0
        return 1.0 - self.edp / baseline.edp


@dataclass
class PolicySummary:
    policy: str
    mean_energy: float
    mean_makespan: float
    mean_edp: float
    mean_energy_reduction: float
    max_energy_reduction: float
    mean_makespan_ratio: float
    mean_edp_reduction: float


def summarize_runs(
    runs_by_policy: Dict[str, List[RunResult]], baseline_policy: str
) -> Dict[str, PolicySummary]:
    """Aggregate per-set results, comparing each policy to the baseline
    set-by-set (as the paper's per-set bars do)."""
    baselines = runs_by_policy[baseline_policy]
    summaries: Dict[str, PolicySummary] = {}
    for policy, runs in runs_by_policy.items():
        if len(runs) != len(baselines):
            raise ValueError(
                f"{policy} has {len(runs)} runs vs baseline {len(baselines)}"
            )
        reductions = [
            r.energy_reduction_vs(b) for r, b in zip(runs, baselines)
        ]
        ratios = [r.makespan_ratio_vs(b) for r, b in zip(runs, baselines)]
        edp_reds = [r.edp_reduction_vs(b) for r, b in zip(runs, baselines)]
        n = len(runs)
        summaries[policy] = PolicySummary(
            policy=policy,
            mean_energy=sum(r.total_energy for r in runs) / n,
            mean_makespan=sum(r.makespan for r in runs) / n,
            mean_edp=sum(r.edp for r in runs) / n,
            mean_energy_reduction=sum(reductions) / n,
            max_energy_reduction=max(reductions),
            mean_makespan_ratio=sum(ratios) / n,
            mean_edp_reduction=sum(edp_reds) / n,
        )
    return summaries

"""NPB IS — integer sort (bucket/counting sort).

Real part: an LCG-generated key array is ranked with a counting sort
and fully verified (``full_verify``), producing a checksum that must
survive migration.  Work bursts carry the class-sized instruction
counts (integer/memory heavy) over the class-sized footprint.
"""

from typing import Optional

from repro.ir import FunctionBuilder, GlobalVar, Module
from repro.isa.isa import InstrClass
from repro.isa.types import ValueType as VT
from repro.workloads.base import (
    BenchProfile,
    ClassParams,
    emit_barrier,
    emit_lcg_next,
    emit_publish_array,
    emit_read_array,
    build_parallel_scaffold,
    declare_shared_arrays,
    mix_normalised,
)

MAX_KEY = 1024
CHECK_MASK = (1 << 48) - 1
# Span the verify pass touches; set per-build before emitting full_verify.
_VERIFY_SPAN = [0]

PROFILE = BenchProfile(
    name="is",
    classes={
        "A": ClassParams(0.9e9, 32 << 20, 10, 2048),
        "B": ClassParams(3.6e9, 128 << 20, 10, 2048),
        "C": ClassParams(14.4e9, 512 << 20, 10, 2048),
    },
    mix=mix_normalised(
        {
            InstrClass.INT_ALU: 0.38,
            InstrClass.LOAD: 0.30,
            InstrClass.STORE: 0.18,
            InstrClass.BRANCH: 0.12,
            InstrClass.MOV: 0.02,
        }
    ),
    parallel_fraction=0.92,
)


def _emit_create_seq(module: Module, elements: int) -> None:
    fn = module.function("create_seq", [("seed", VT.I64)], VT.I64)
    fb = FunctionBuilder(fn)
    keys = emit_read_array(fb, "g_keys")
    state = fb.local("state", VT.I64)
    fb.assign(state, "seed")
    with fb.for_range("i", 0, elements) as i:
        emit_lcg_next(fb, state)
        key = fb.binop("mod", state, MAX_KEY, VT.I64)
        off = fb.binop("mul", i, 8, VT.I64)
        slot = fb.binop("add", keys, off, VT.I64)
        fb.store(slot, 0, key, VT.I64)
    fb.ret(state)


def _emit_rank_chunk(module: Module, per_iter_instr: int, footprint: int) -> None:
    """The bucket-count kernel: work burst + real partial sum."""
    fn = module.function(
        "rank_chunk", [("lo", VT.I64), ("hi", VT.I64)], VT.I64
    )
    fb = FunctionBuilder(fn)
    keys = emit_read_array(fb, "g_keys")
    big = emit_read_array(fb, "g_big")
    fb.work(per_iter_instr, "int_alu", pages=big, span=footprint)
    total = fb.local("total", VT.I64, init=0)
    with fb.for_range("i", "lo", "hi") as i:
        off = fb.binop("mul", i, 8, VT.I64)
        slot = fb.binop("add", keys, off, VT.I64)
        key = fb.load(slot, 0, VT.I64)
        fb.binop_into(total, "add", total, key, VT.I64)
    fb.ret(total)


def _emit_full_verify_real(module: Module, elements: int, verify_instr: int) -> None:
    """Counting sort + sortedness check + checksum (the real IS verify)."""
    fn = module.function("full_verify", [], VT.I64)
    fb = FunctionBuilder(fn)
    keys = emit_read_array(fb, "g_keys")
    big = emit_read_array(fb, "g_big")
    hist = fb.stack_alloc(MAX_KEY * 8, "hist")
    fb.work(verify_instr, "load", pages=big, span=_VERIFY_SPAN[0])
    with fb.for_range("hz", 0, MAX_KEY) as i:
        off = fb.binop("mul", i, 8, VT.I64)
        fb.store(fb.binop("add", hist, off, VT.I64), 0, 0, VT.I64)
    with fb.for_range("hc", 0, elements) as i:
        off = fb.binop("mul", i, 8, VT.I64)
        key = fb.load(fb.binop("add", keys, off, VT.I64), 0, VT.I64)
        hoff = fb.binop("mul", key, 8, VT.I64)
        hslot = fb.binop("add", hist, hoff, VT.I64)
        count = fb.load(hslot, 0, VT.I64)
        fb.store(hslot, 0, fb.binop("add", count, 1, VT.I64), VT.I64)
    check = fb.local("check", VT.I64, init=0)
    pos = fb.local("pos", VT.I64, init=1)
    total = fb.local("total", VT.I64, init=0)
    with fb.for_range("k", 0, MAX_KEY) as k:
        hoff = fb.binop("mul", k, 8, VT.I64)
        count = fb.load(fb.binop("add", hist, hoff, VT.I64), 0, VT.I64)
        fb.binop_into(total, "add", total, count, VT.I64)
        # checksum += key * count * position (order-sensitive fold)
        t = fb.binop("mul", k, count, VT.I64)
        t = fb.binop("mul", t, pos, VT.I64)
        fb.binop_into(check, "add", check, t, VT.I64)
        fb.binop_into(check, "and", check, CHECK_MASK, VT.I64)
        fb.binop_into(pos, "add", pos, 1, VT.I64)
    ok = fb.binop("eq", total, elements, VT.I64)
    gaddr = fb.addr_of("g_checksum")
    fb.store(gaddr, 0, check, VT.I64)
    fb.ret(ok)


def build(cls: str = "A", threads: int = 1, scale: float = 1.0) -> Module:
    params = PROFILE.params(cls)
    module = Module(f"is.{cls}.{threads}")
    declare_shared_arrays(module, ["g_keys", "g_big"])
    module.add_global(GlobalVar("g_checksum", VT.I64))

    elements = params.elements
    total_instr = params.total_instructions * scale
    per_iter = int(total_instr * 0.9 / params.iterations)
    verify_instr = int(total_instr * 0.1)
    chunk = max(elements // max(threads, 1), 1)

    _emit_create_seq(module, elements)
    _emit_rank_chunk(module, per_iter // max(threads, 1), params.footprint_bytes)
    _VERIFY_SPAN[0] = params.footprint_bytes
    _emit_full_verify_real(module, elements, verify_instr)

    def worker_body(fb: FunctionBuilder, idx: str) -> None:
        lo = fb.binop("mul", idx, chunk, VT.I64)
        hi_raw = fb.binop("add", lo, chunk, VT.I64)
        hi = fb.binop("min", hi_raw, elements, VT.I64)
        acc = fb.local("acc", VT.I64, init=0)
        with fb.for_range("it", 0, params.iterations):
            part = fb.call("rank_chunk", [lo, hi], VT.I64)
            fb.binop_into(acc, "add", acc, part, VT.I64)
            emit_barrier(fb)

    def setup(fb: FunctionBuilder) -> None:
        emit_publish_array(fb, "g_keys", elements * 8)
        emit_publish_array(fb, "g_big", params.footprint_bytes)
        fb.call("create_seq", [271828183], VT.I64)

    def verify(fb: FunctionBuilder) -> str:
        ok = fb.call("full_verify", [], VT.I64)
        gaddr = fb.addr_of("g_checksum")
        fb.syscall("print", [fb.load(gaddr, 0, VT.I64)])
        return ok

    build_parallel_scaffold(module, threads, worker_body, setup, verify)
    return module


def build_serial(
    cls: str = "B",
    scale: float = 1.0,
    migrate_before_verify: Optional[int] = None,
) -> Module:
    """The Figure 11 variant: serial IS, optionally migrating
    ``full_verify`` to the machine with the given index."""
    params = PROFILE.params(cls)
    module = Module(f"is.{cls}.serial")
    declare_shared_arrays(module, ["g_keys", "g_big"])
    module.add_global(GlobalVar("g_checksum", VT.I64))

    elements = params.elements
    total_instr = params.total_instructions * scale
    per_iter = int(total_instr * 0.75 / params.iterations)
    verify_instr = int(total_instr * 0.25)

    _emit_create_seq(module, elements)
    _emit_rank_chunk(module, per_iter, params.footprint_bytes)
    _VERIFY_SPAN[0] = params.footprint_bytes
    _emit_full_verify_real(module, elements, verify_instr)

    main = module.function("main", [], VT.I64)
    fb = FunctionBuilder(main)
    emit_publish_array(fb, "g_keys", elements * 8)
    emit_publish_array(fb, "g_big", params.footprint_bytes)
    fb.call("create_seq", [271828183], VT.I64)
    with fb.for_range("it", 0, params.iterations):
        fb.call("rank_chunk", [0, elements], VT.I64)
    if migrate_before_verify is not None:
        fb.syscall("migrate_hint", [migrate_before_verify])
    ok = fb.call("full_verify", [], VT.I64)
    gaddr = fb.addr_of("g_checksum")
    fb.syscall("print", [fb.load(gaddr, 0, VT.I64)])
    fb.syscall("print", [ok])
    failed = fb.binop("eq", ok, 0, VT.I64)
    fb.ret(failed)
    module.entry = "main"
    return module

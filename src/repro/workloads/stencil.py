"""Shared machinery for the NPB grid solvers (BT, SP, MG).

BT (block tridiagonal), SP (scalar pentadiagonal) and MG (multigrid)
are all iterative stencil solvers; they differ in instruction mix,
iteration structure and call tree.  Each emits:

* a real per-iteration Jacobi-style sweep over a small 1-D grid run by
  thread 0 (integer-exact checksum via scaled fixed-point),
* per-ISA work bursts sized to the class instruction budget, spread
  over directional solve phases (``x_solve``/``y_solve``/``z_solve``
  for BT/SP, the V-cycle levels for MG) to create the call-tree shape
  the gap and transformation figures rely on.
"""

from typing import Dict, List

from repro.ir import FunctionBuilder, GlobalVar, Module
from repro.isa.types import ValueType as VT
from repro.workloads.base import (
    BenchProfile,
    build_parallel_scaffold,
    declare_shared_arrays,
    emit_barrier,
    emit_publish_array,
    emit_read_array,
)


def _emit_sweep(module: Module, n: int) -> None:
    """One Jacobi sweep: u[i] = (u[i-1] + u[i+1]) / 2 + f[i] (fixed-point)."""
    fn = module.function("sweep", [], VT.I64)
    fb = FunctionBuilder(fn)
    u = emit_read_array(fb, "g_u")
    f = emit_read_array(fb, "g_f")
    check = fb.local("sweep_check", VT.I64, init=0)
    prev = fb.local("prev", VT.I64, init=0)
    with fb.for_range("i", 1, n - 1) as i:
        off = fb.binop("mul", i, 8, VT.I64)
        ua = fb.binop("add", u, off, VT.I64)
        left = fb.load(fb.binop("sub", ua, 8, VT.I64), 0, VT.I64)
        right = fb.load(fb.binop("add", ua, 8, VT.I64), 0, VT.I64)
        fv = fb.load(fb.binop("add", f, off, VT.I64), 0, VT.I64)
        avg = fb.binop("div", fb.binop("add", left, right, VT.I64), 2, VT.I64)
        nv = fb.binop("add", avg, fv, VT.I64)
        fb.store(ua, 0, nv, VT.I64)
        fb.binop_into(check, "xor", check, nv, VT.I64)
        fb.assign(prev, nv)
    fb.ret(check)


def _emit_solve_phase(
    module: Module, name: str, instr: int, kind: str, footprint: int
) -> None:
    fn = module.function(name, [("do_work", VT.I64)], VT.I64)
    fb = FunctionBuilder(fn)
    big = emit_read_array(fb, "g_big")
    with fb.if_then(fb.binop("gt", "do_work", 0, VT.I64)):
        fb.work(instr, kind, pages=big, span=footprint)
    fb.ret(0)


def build_stencil(
    bench: str,
    profile: BenchProfile,
    cls: str,
    threads: int,
    scale: float,
    phases: List[str],
    phase_kind: str,
) -> Module:
    """Build one grid-solver workload."""
    params = profile.params(cls)
    n = params.elements
    module = Module(f"{bench}.{cls}.{threads}")
    declare_shared_arrays(module, ["g_u", "g_f", "g_big"])
    module.add_global(GlobalVar("g_checksum", VT.I64))

    total_instr = params.total_instructions * scale
    per_phase = int(
        total_instr / (params.iterations * len(phases) * max(threads, 1))
    )

    _emit_sweep(module, n)
    for phase in phases:
        _emit_solve_phase(module, phase, per_phase, phase_kind, params.footprint_bytes)

    # adi(): one timestep — all directional phases plus the real sweep.
    adi = module.function("adi", [("do_real", VT.I64)], VT.I64)
    fb = FunctionBuilder(adi)
    for phase in phases:
        fb.call(phase, [1], VT.I64)
    out = fb.local("adi_out", VT.I64, init=0)
    with fb.if_then(fb.binop("gt", "do_real", 0, VT.I64)):
        fb.assign(out, fb.call("sweep", [], VT.I64))
    fb.ret(out)

    def worker_body(fb: FunctionBuilder, idx: str) -> None:
        is_zero = fb.binop("eq", idx, 0, VT.I64)
        check = fb.local("check", VT.I64, init=0)
        with fb.for_range("it", 0, params.iterations):
            v = fb.call("adi", [is_zero], VT.I64)
            fb.binop_into(check, "xor", check, v, VT.I64)
            emit_barrier(fb)
        with fb.if_then(is_zero):
            fb.store(fb.addr_of("g_checksum"), 0, check, VT.I64)

    def setup(fb: FunctionBuilder) -> None:
        u = emit_publish_array(fb, "g_u", n * 8)
        f = emit_publish_array(fb, "g_f", n * 8)
        emit_publish_array(fb, "g_big", params.footprint_bytes)
        with fb.for_range("i", 0, n) as i:
            off = fb.binop("mul", i, 8, VT.I64)
            # u starts as a ramp, f as its curvature source.
            fb.store(fb.binop("add", u, off, VT.I64), 0,
                     fb.binop("mul", i, 1000, VT.I64), VT.I64)
            fb.store(fb.binop("add", f, off, VT.I64), 0,
                     fb.binop("mod", i, 17, VT.I64), VT.I64)

    def verify(fb: FunctionBuilder) -> str:
        check = fb.load(fb.addr_of("g_checksum"), 0, VT.I64)
        fb.syscall("print", [check])
        return fb.binop("ne", check, 0, VT.I64)

    build_parallel_scaffold(module, threads, worker_body, setup, verify)
    return module

"""Dispatch-bound interpreter stress kernel (not a registry workload).

The registry benchmarks are deliberately memory-realistic: at golden
scale most of their wall time is DSM first-touch and page accounting,
which the exact interpreter and the fast-forward engine share.  That
makes them the right *correctness* corpus but a poor probe of the cost
the fast engine removes — per-instruction dispatch.

This module is the opposite: a long interpreted loop of register-only
scalar ALU work (integer and floating point, including the truncating
div/mod pair whose semantics the fast path inlines), with no Work
bursts, no loads/stores and therefore no DSM traffic.  Its wall time
is dispatch, which is exactly what ``tools/bench_interp.py`` measures
when it reports the fast-engine speedup recorded in
``BENCH_interp.json``.

It is intentionally *not* registered in the workload REGISTRY: it
computes nothing from the paper and must not show up in `repro list`,
the golden-checksum table, or the datacenter job mix.
"""

from repro.ir import FunctionBuilder, Module
from repro.isa.types import ValueType as VT

# Enough iterations that region compilation is amortized into noise
# and the wall-time ratio measures steady-state dispatch.
DEFAULT_ITERATIONS = 100_000


def interp_stress_module(iterations: int = DEFAULT_ITERATIONS) -> Module:
    """A tight scalar loop of ~10 interpreted ops per iteration.

    The body mixes the operator classes with distinct fast-path
    codegen: integer add/mul/xor, the truncating div/mod pair over
    sign-varying operands (inlined expressions on the fast path),
    float add/mul and the i2f/f2i conversions.  It deliberately stays
    lean — few live values, no call per iteration, no sqrt-style math
    whose native cost is identical in both engines — so the measured
    ratio is dispatch, not arithmetic.
    """
    m = Module("interp-stress")

    kern = m.function("kernel", [("n", VT.I64)], VT.I64)
    fb = FunctionBuilder(kern)
    acc = fb.local("acc", VT.I64, init=0x9E3779B9)
    x = fb.local("x", VT.F64, init=1.0)
    with fb.for_range("i", 0, "n") as i:
        t = fb.binop("mul", i, 3, VT.I64)
        t = fb.binop("add", t, 7, VT.I64)
        t = fb.binop("mod", t, 1000, VT.I64)
        # Truncating div/mod with sign-varying operands: the fast path
        # inlines both and has to match `semantics.truncdiv` exactly.
        s = fb.binop("sub", t, 500, VT.I64)
        q = fb.binop("div", s, 9, VT.I64)
        r = fb.binop("mod", s, 7, VT.I64)
        fb.assign(x, fb.binop("add", x, fb.unop("i2f", t, VT.F64), VT.F64))
        fb.assign(x, fb.binop("mul", x, 0.5, VT.F64))
        fb.binop_into(acc, "add", acc, t, VT.I64)
        fb.binop_into(acc, "xor", acc, fb.binop("sub", q, r, VT.I64), VT.I64)
    folded = fb.binop("xor", acc, fb.unop("f2i", fb.binop(
        "mul", x, 1e6, VT.F64), VT.I64), VT.I64)
    fb.ret(fb.binop("and", folded, (1 << 31) - 1, VT.I64))

    main = m.function("main", [], VT.I64)
    fb = FunctionBuilder(main)
    checksum = fb.call("kernel", [iterations], VT.I64)
    fb.syscall("print", [checksum])
    fb.ret(0)
    m.entry = "main"
    return m

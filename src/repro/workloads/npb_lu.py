"""NPB LU — lower-upper Gauss-Seidel solver.

Structurally an SSOR sweep: per timestep a Jacobian assembly and the
lower/upper triangular solves, which pipeline poorly — hence the lowest
parallel fraction of the CFD trio.
"""

from repro.ir import Module
from repro.isa.isa import InstrClass
from repro.workloads.base import BenchProfile, ClassParams, mix_normalised
from repro.workloads.stencil import build_stencil

PROFILE = BenchProfile(
    name="lu",
    classes={
        "A": ClassParams(120e9, 300 << 20, 60, 104),
        "B": ClassParams(480e9, 1200 << 20, 60, 104),
        "C": ClassParams(1900e9, 1600 << 20, 60, 104),
    },
    mix=mix_normalised(
        {
            InstrClass.FP_ALU: 0.46,
            InstrClass.LOAD: 0.26,
            InstrClass.STORE: 0.12,
            InstrClass.INT_ALU: 0.10,
            InstrClass.BRANCH: 0.04,
            InstrClass.MOV: 0.02,
        }
    ),
    parallel_fraction=0.90,  # wavefront dependences limit scaling
)


def build(cls: str = "A", threads: int = 1, scale: float = 1.0) -> Module:
    return build_stencil(
        "lu",
        PROFILE,
        cls,
        threads,
        scale,
        phases=["jacld", "blts", "jacu", "buts", "lu_rhs"],
        phase_kind="fp_alu",
    )

"""NPB FT — 3-D FFT PDE solver.

Deep call chain (``worker -> ft_iter -> fft3d -> cffts1 -> cfftz ->
fftz2``) matching the paper's observation that FT's ``fftz2`` produces
the deepest transformation (7 frames, ~31 live values, the longest
latency in Figure 10).  Real part: a complex phasor evolution over a
small spectrum, single-threaded for a reduction-order-free checksum.
"""

from repro.ir import FunctionBuilder, GlobalVar, Module
from repro.isa.isa import InstrClass
from repro.isa.types import ValueType as VT
from repro.workloads.base import (
    BenchProfile,
    ClassParams,
    build_parallel_scaffold,
    declare_shared_arrays,
    emit_barrier,
    emit_publish_array,
    emit_read_array,
    mix_normalised,
)

PROFILE = BenchProfile(
    name="ft",
    classes={
        "A": ClassParams(7.1e9, 320 << 20, 6, 128),
        "B": ClassParams(92e9, 900 << 20, 20, 128),
        "C": ClassParams(390e9, 1600 << 20, 20, 128),
    },
    mix=mix_normalised(
        {
            InstrClass.FP_ALU: 0.52,
            InstrClass.LOAD: 0.22,
            InstrClass.STORE: 0.12,
            InstrClass.INT_ALU: 0.08,
            InstrClass.BRANCH: 0.04,
            InstrClass.MOV: 0.02,
        }
    ),
    parallel_fraction=0.96,
)

# Rotation applied per evolve step: (c, s) ~ unit phasor.
_COS = 0.9998
_SIN = 0.0199986


def _emit_fftz2(module: Module, n: int, flops: int, footprint: int) -> None:
    """Innermost butterfly: rotate each complex bin by the phasor."""
    fn = module.function(
        "fftz2",
        [("lo", VT.I64), ("hi", VT.I64), ("c", VT.F64), ("s", VT.F64),
         ("do_work", VT.I64)],
        VT.F64,
    )
    fb = FunctionBuilder(fn)
    re = emit_read_array(fb, "g_re")
    im = emit_read_array(fb, "g_im")
    big = emit_read_array(fb, "g_big")
    with fb.if_then(fb.binop("gt", "do_work", 0, VT.I64)):
        fb.work(flops, "fp_alu", pages=big, span=footprint)
    checksum = fb.local("bsum", VT.F64, init=0.0)
    with fb.for_range("i", "lo", "hi") as i:
        off = fb.binop("mul", i, 8, VT.I64)
        ra = fb.binop("add", re, off, VT.I64)
        ia = fb.binop("add", im, off, VT.I64)
        rv = fb.load(ra, 0, VT.F64)
        iv = fb.load(ia, 0, VT.F64)
        nr = fb.binop(
            "sub",
            fb.binop("mul", rv, "c", VT.F64),
            fb.binop("mul", iv, "s", VT.F64),
            VT.F64,
        )
        ni = fb.binop(
            "add",
            fb.binop("mul", rv, "s", VT.F64),
            fb.binop("mul", iv, "c", VT.F64),
            VT.F64,
        )
        fb.store(ra, 0, nr, VT.F64)
        fb.store(ia, 0, ni, VT.F64)
        fb.binop_into(checksum, "add", checksum, nr, VT.F64)
    fb.ret(checksum)


def _emit_chain(module: Module, n: int) -> None:
    """cfftz -> fftz2, cffts1 -> cfftz, fft3d -> cffts1 (call depth)."""
    cfftz = module.function(
        "cfftz", [("half", VT.I64), ("do_work", VT.I64)], VT.F64
    )
    fb = FunctionBuilder(cfftz)
    mid = n // 2
    a = fb.call("fftz2", [0, mid, _COS, _SIN, "do_work"], VT.F64)
    b = fb.call("fftz2", [mid, n, _COS, -_SIN, "half"], VT.F64)
    fb.ret(fb.binop("add", a, b, VT.F64))

    cffts1 = module.function("cffts1", [("do_work", VT.I64)], VT.F64)
    fb = FunctionBuilder(cffts1)
    v = fb.call("cfftz", [0, "do_work"], VT.F64)
    fb.ret(v)

    fft3d = module.function("fft3d", [("do_work", VT.I64)], VT.F64)
    fb = FunctionBuilder(fft3d)
    v1 = fb.call("cffts1", ["do_work"], VT.F64)
    v2 = fb.call("cffts1", [0], VT.F64)
    v3 = fb.call("cffts1", [0], VT.F64)
    t = fb.binop("add", v1, v2, VT.F64)
    fb.ret(fb.binop("add", t, v3, VT.F64))


def build(cls: str = "A", threads: int = 1, scale: float = 1.0) -> Module:
    params = PROFILE.params(cls)
    n = params.elements
    module = Module(f"ft.{cls}.{threads}")
    declare_shared_arrays(module, ["g_re", "g_im", "g_big"])
    module.add_global(GlobalVar("g_checksum", VT.I64))

    total_instr = params.total_instructions * scale
    flops = int(total_instr / (params.iterations * max(threads, 1)))

    _emit_fftz2(module, n, flops, params.footprint_bytes)
    _emit_chain(module, n)

    burner = module.function("ft_burn", [("iters", VT.I64)], VT.I64)
    bb = FunctionBuilder(burner)
    big = emit_read_array(bb, "g_big")
    with bb.for_range("w", 0, "iters"):
        bb.work(flops, "fp_alu", pages=big, span=params.footprint_bytes)
    bb.ret(0)

    def worker_body(fb: FunctionBuilder, idx: str) -> None:
        is_zero = fb.binop("eq", idx, 0, VT.I64)
        acc = fb.local("acc", VT.F64, init=0.0)
        with fb.for_range("it", 0, params.iterations):
            def evolve() -> None:
                v = fb.call("fft3d", [1], VT.F64)
                fb.binop_into(acc, "add", acc, v, VT.F64)

            def burn() -> None:
                fb.call("ft_burn", [1], VT.I64)

            fb.if_then_else(is_zero, evolve, burn)
            emit_barrier(fb)
        with fb.if_then(is_zero):
            scaled = fb.binop("mul", acc, 1e6, VT.F64)
            fb.store(
                fb.addr_of("g_checksum"), 0,
                fb.unop("f2i", scaled, VT.I64), VT.I64,
            )

    def setup(fb: FunctionBuilder) -> None:
        re = emit_publish_array(fb, "g_re", n * 8)
        im = emit_publish_array(fb, "g_im", n * 8)
        emit_publish_array(fb, "g_big", params.footprint_bytes)
        # Initial spectrum: re[k] = 1/(k+1), im[k] = 0.
        with fb.for_range("k", 0, n) as k:
            off = fb.binop("mul", k, 8, VT.I64)
            kp1 = fb.binop("add", k, 1, VT.I64)
            val = fb.binop("div", 1.0, fb.unop("i2f", kp1, VT.F64), VT.F64)
            fb.store(fb.binop("add", re, off, VT.I64), 0, val, VT.F64)
            fb.store(fb.binop("add", im, off, VT.I64), 0, 0.0, VT.F64)

    def verify(fb: FunctionBuilder) -> str:
        check = fb.load(fb.addr_of("g_checksum"), 0, VT.I64)
        fb.syscall("print", [check])
        # The phasor rotation preserves magnitude: |bsum| <= sum 1/k
        # per fftz2 call, so the folded checksum is bounded by the
        # call count times that (scaled by 1e6), and never zero.
        bound = int(1e4 * params.iterations * 1e6)
        in_lo = fb.binop("gt", check, -bound, VT.I64)
        in_hi = fb.binop("lt", check, bound, VT.I64)
        nonzero = fb.binop("ne", check, 0, VT.I64)
        return fb.binop("and", fb.binop("and", in_lo, in_hi, VT.I64), nonzero, VT.I64)

    build_parallel_scaffold(module, threads, worker_body, setup, verify)
    return module

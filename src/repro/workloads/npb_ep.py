"""NPB EP — embarrassingly parallel random-number kernel.

Each worker generates pseudo-random coordinate pairs and classifies
them into annulus counts (the real, integer-exact part — so the merged
counts are thread-count independent and fully verifiable), while FP
work bursts carry the class-sized Gaussian-pair flop counts.
"""

from repro.ir import FunctionBuilder, GlobalVar, Module
from repro.isa.isa import InstrClass
from repro.isa.types import ValueType as VT
from repro.workloads.base import (
    BenchProfile,
    ClassParams,
    build_parallel_scaffold,
    declare_shared_arrays,
    emit_barrier,
    emit_lcg_next,
    emit_publish_array,
    emit_read_array,
    mix_normalised,
)

N_BINS = 10

PROFILE = BenchProfile(
    name="ep",
    classes={
        "A": ClassParams(26.7e9, 8 << 20, 1, 4096),
        "B": ClassParams(107e9, 8 << 20, 1, 4096),
        "C": ClassParams(430e9, 8 << 20, 1, 4096),
    },
    mix=mix_normalised(
        {
            InstrClass.FP_ALU: 0.62,
            InstrClass.INT_ALU: 0.20,
            InstrClass.LOAD: 0.06,
            InstrClass.STORE: 0.04,
            InstrClass.BRANCH: 0.06,
            InstrClass.MOV: 0.02,
        }
    ),
    parallel_fraction=0.995,
)


def _emit_gen_pairs(module: Module, pairs_per_thread: int, flops: int) -> None:
    """Generate pairs, bin them into the shared per-thread count rows."""
    fn = module.function("gen_pairs", [("idx", VT.I64)], VT.I64)
    fb = FunctionBuilder(fn)
    counts = emit_read_array(fb, "g_counts")
    big = emit_read_array(fb, "g_big")
    fb.work(flops, "fp_alu", pages=big, span=8 << 20)
    # Per-thread row of N_BINS counters (no races).
    row = fb.binop("mul", "idx", N_BINS * 8, VT.I64)
    base = fb.binop("add", counts, row, VT.I64)
    state = fb.local("state", VT.I64)
    seed = fb.binop("mul", "idx", 1000003, VT.I64)
    fb.assign(state, fb.binop("add", seed, 271828183, VT.I64))
    accepted = fb.local("accepted", VT.I64, init=0)
    with fb.for_range("i", 0, pairs_per_thread):
        emit_lcg_next(fb, state)
        xi = fb.binop("mod", state, 2000, VT.I64)
        emit_lcg_next(fb, state)
        yi = fb.binop("mod", state, 2000, VT.I64)
        x = fb.binop("sub", fb.unop("i2f", xi, VT.F64), 1000.0, VT.F64)
        y = fb.binop("sub", fb.unop("i2f", yi, VT.F64), 1000.0, VT.F64)
        x = fb.binop("div", x, 1000.0, VT.F64)
        y = fb.binop("div", y, 1000.0, VT.F64)
        t = fb.binop(
            "add",
            fb.binop("mul", x, x, VT.F64),
            fb.binop("mul", y, y, VT.F64),
            VT.F64,
        )
        inside = fb.binop("le", t, 1.0, VT.F64)
        with fb.if_then(inside):
            fb.binop_into(accepted, "add", accepted, 1, VT.I64)
            # Annulus index: floor(sqrt(t) * N_BINS), clamped.
            radius = fb.unop("sqrt", t, VT.F64)
            bin_f = fb.binop("mul", radius, float(N_BINS), VT.F64)
            bin_i = fb.unop("f2i", bin_f, VT.I64)
            bin_i = fb.binop("min", bin_i, N_BINS - 1, VT.I64)
            slot = fb.binop(
                "add", base, fb.binop("mul", bin_i, 8, VT.I64), VT.I64
            )
            old = fb.load(slot, 0, VT.I64)
            fb.store(slot, 0, fb.binop("add", old, 1, VT.I64), VT.I64)
    fb.ret(accepted)


def build(cls: str = "A", threads: int = 1, scale: float = 1.0) -> Module:
    params = PROFILE.params(cls)
    module = Module(f"ep.{cls}.{threads}")
    declare_shared_arrays(module, ["g_counts", "g_big"])
    module.add_global(GlobalVar("g_checksum", VT.I64))

    total_instr = params.total_instructions * scale
    flops = int(total_instr / max(threads, 1))
    pairs = max(params.elements // max(threads, 1), 1)

    _emit_gen_pairs(module, pairs, flops)

    def worker_body(fb: FunctionBuilder, idx: str) -> None:
        fb.call("gen_pairs", [idx], VT.I64)
        emit_barrier(fb)

    def setup(fb: FunctionBuilder) -> None:
        emit_publish_array(fb, "g_counts", max(threads, 1) * N_BINS * 8)
        emit_publish_array(fb, "g_big", 8 << 20)

    def verify(fb: FunctionBuilder) -> str:
        counts = emit_read_array(fb, "g_counts")
        check = fb.local("check", VT.I64, init=0)
        total = fb.local("total", VT.I64, init=0)
        with fb.for_range("t", 0, max(threads, 1)) as t:
            with fb.for_range("b", 0, N_BINS) as b:
                row = fb.binop("mul", t, N_BINS * 8, VT.I64)
                off = fb.binop("add", row, fb.binop("mul", b, 8, VT.I64), VT.I64)
                c = fb.load(fb.binop("add", counts, off, VT.I64), 0, VT.I64)
                fb.binop_into(total, "add", total, c, VT.I64)
                wt = fb.binop("mul", c, fb.binop("add", b, 1, VT.I64), VT.I64)
                fb.binop_into(check, "add", check, wt, VT.I64)
        fb.store(fb.addr_of("g_checksum"), 0, check, VT.I64)
        fb.syscall("print", [check])
        # All accepted pairs were binned; acceptance ~ pi/4 of throws.
        lo = int(0.5 * params.elements)
        hi = params.elements
        in_lo = fb.binop("ge", total, lo, VT.I64)
        in_hi = fb.binop("le", total, hi, VT.I64)
        return fb.binop("and", in_lo, in_hi, VT.I64)

    build_parallel_scaffold(module, threads, worker_body, setup, verify)
    return module

"""The workload registry: one place to build any benchmark."""

from typing import Callable, Dict, List

from repro.ir import Module
from repro.workloads import bzip2, npb_bt, npb_cg, npb_ep, npb_ft, npb_is, npb_lu, npb_mg, npb_sp
from repro.workloads import redis as redis_mod
from repro.workloads import verus as verus_mod
from repro.workloads.base import BenchProfile


class _Entry:
    def __init__(self, build: Callable, profile: BenchProfile, description: str):
        self.build = build
        self.profile = profile
        self.description = description


REGISTRY: Dict[str, _Entry] = {
    "is": _Entry(npb_is.build, npb_is.PROFILE, "NPB integer sort"),
    "cg": _Entry(npb_cg.build, npb_cg.PROFILE, "NPB conjugate gradient"),
    "ft": _Entry(npb_ft.build, npb_ft.PROFILE, "NPB 3-D FFT"),
    "lu": _Entry(npb_lu.build, npb_lu.PROFILE, "NPB LU Gauss-Seidel solver"),
    "ep": _Entry(npb_ep.build, npb_ep.PROFILE, "NPB embarrassingly parallel"),
    "bt": _Entry(npb_bt.build, npb_bt.PROFILE, "NPB block tridiagonal"),
    "sp": _Entry(npb_sp.build, npb_sp.PROFILE, "NPB scalar pentadiagonal"),
    "mg": _Entry(npb_mg.build, npb_mg.PROFILE, "NPB multigrid"),
    "bzip2smp": _Entry(bzip2.build, bzip2.PROFILE, "SMP bzip2 compression"),
    "verus": _Entry(verus_mod.build, verus_mod.PROFILE, "Verus model checker"),
    "redis": _Entry(redis_mod.build, redis_mod.PROFILE, "Redis-like KV store"),
}


def workload_names() -> List[str]:
    return sorted(REGISTRY)


def build_workload(
    name: str, cls: str = "A", threads: int = 1, scale: float = 1.0
) -> Module:
    """Build one benchmark module by name."""
    try:
        entry = REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown workload {name!r}; have {workload_names()}") from None
    return entry.build(cls=cls, threads=threads, scale=scale)


def profile_for(name: str) -> BenchProfile:
    try:
        return REGISTRY[name].profile
    except KeyError:
        raise KeyError(f"unknown workload {name!r}; have {workload_names()}") from None

"""NPB BT — block tridiagonal solver (the heaviest NPB kernel)."""

from repro.ir import Module
from repro.isa.isa import InstrClass
from repro.workloads.base import BenchProfile, ClassParams, mix_normalised
from repro.workloads.stencil import build_stencil

PROFILE = BenchProfile(
    name="bt",
    classes={
        "A": ClassParams(170e9, 300 << 20, 60, 96),
        "B": ClassParams(700e9, 1200 << 20, 60, 96),
        "C": ClassParams(2800e9, 1600 << 20, 60, 96),
    },
    mix=mix_normalised(
        {
            InstrClass.FP_ALU: 0.48,
            InstrClass.LOAD: 0.24,
            InstrClass.STORE: 0.12,
            InstrClass.INT_ALU: 0.10,
            InstrClass.BRANCH: 0.04,
            InstrClass.MOV: 0.02,
        }
    ),
    parallel_fraction=0.97,
)


def build(cls: str = "A", threads: int = 1, scale: float = 1.0) -> Module:
    return build_stencil(
        "bt",
        PROFILE,
        cls,
        threads,
        scale,
        phases=["compute_rhs", "x_solve", "y_solve", "z_solve"],
        phase_kind="fp_alu",
    )

"""NPB SP — scalar pentadiagonal solver."""

from repro.ir import Module
from repro.isa.isa import InstrClass
from repro.workloads.base import BenchProfile, ClassParams, mix_normalised
from repro.workloads.stencil import build_stencil

PROFILE = BenchProfile(
    name="sp",
    classes={
        "A": ClassParams(100e9, 300 << 20, 60, 88),
        "B": ClassParams(410e9, 1200 << 20, 60, 88),
        "C": ClassParams(1600e9, 1600 << 20, 60, 88),
    },
    mix=mix_normalised(
        {
            InstrClass.FP_ALU: 0.42,
            InstrClass.LOAD: 0.28,
            InstrClass.STORE: 0.14,
            InstrClass.INT_ALU: 0.10,
            InstrClass.BRANCH: 0.04,
            InstrClass.MOV: 0.02,
        }
    ),
    parallel_fraction=0.96,
)


def build(cls: str = "A", threads: int = 1, scale: float = 1.0) -> Module:
    return build_stencil(
        "sp",
        PROFILE,
        cls,
        threads,
        scale,
        phases=["compute_rhs", "x_solve", "y_solve", "z_solve", "add_update"],
        phase_kind="fp_alu",
    )

"""Verus — quantitative model checking (branch-intensive).

Real part: explicit-state exploration of a synthetic transition system
(states are LCG successors; a heap bitset marks visited states), which
is exactly the pointer-chasing/branching profile of a model checker.
Work bursts carry the symbolic-analysis instruction budget; the paper
runs Verus with variable input sizes, mapped to classes here.
"""

from repro.ir import FunctionBuilder, GlobalVar, Module
from repro.isa.isa import InstrClass
from repro.isa.types import ValueType as VT
from repro.workloads.base import (
    BenchProfile,
    ClassParams,
    build_parallel_scaffold,
    declare_shared_arrays,
    emit_barrier,
    emit_lcg_next,
    emit_publish_array,
    emit_read_array,
    mix_normalised,
)

STATE_SPACE = 4096  # bitset slots for the real exploration

PROFILE = BenchProfile(
    name="verus",
    classes={
        "A": ClassParams(2.2e9, 48 << 20, 1, 3000),
        "B": ClassParams(9e9, 96 << 20, 1, 3000),
        "C": ClassParams(36e9, 192 << 20, 1, 3000),
    },
    mix=mix_normalised(
        {
            InstrClass.BRANCH: 0.30,
            InstrClass.INT_ALU: 0.30,
            InstrClass.LOAD: 0.28,
            InstrClass.STORE: 0.08,
            InstrClass.MOV: 0.04,
        }
    ),
    parallel_fraction=0.75,  # model checking parallelises poorly
)


def _emit_explore(module: Module, steps: int, instr: int, footprint: int) -> None:
    """Walk the synthetic transition relation, counting fresh states."""
    fn = module.function("explore", [("idx", VT.I64)], VT.I64)
    fb = FunctionBuilder(fn)
    visited = emit_read_array(fb, "g_visited")
    big = emit_read_array(fb, "g_big")
    fb.work(instr, "branch", pages=big, span=footprint)
    state = fb.local("state", VT.I64)
    fb.assign(state, fb.binop("add", fb.binop("mul", "idx", 524287, VT.I64), 1, VT.I64))
    fresh = fb.local("fresh", VT.I64, init=0)
    with fb.for_range("i", 0, steps):
        emit_lcg_next(fb, state)
        node = fb.binop("mod", state, STATE_SPACE, VT.I64)
        slot = fb.binop("add", visited, fb.binop("mul", node, 8, VT.I64), VT.I64)
        seen = fb.load(slot, 0, VT.I64)
        was_new = fb.binop("eq", seen, 0, VT.I64)
        with fb.if_then(was_new):
            fb.store(slot, 0, 1, VT.I64)
            fb.binop_into(fresh, "add", fresh, 1, VT.I64)
    fb.ret(fresh)


def build(cls: str = "A", threads: int = 1, scale: float = 1.0) -> Module:
    params = PROFILE.params(cls)
    module = Module(f"verus.{cls}.{threads}")
    declare_shared_arrays(module, ["g_visited", "g_big", "g_fresh"])
    module.add_global(GlobalVar("g_checksum", VT.I64))

    total_instr = params.total_instructions * scale
    per_thread = int(total_instr / max(threads, 1))
    steps = max(params.elements // max(threads, 1), 1)

    _emit_explore(module, steps, per_thread, params.footprint_bytes)

    def worker_body(fb: FunctionBuilder, idx: str) -> None:
        fresh = fb.call("explore", [idx], VT.I64)
        out = emit_read_array(fb, "g_fresh")
        slot = fb.binop("add", out, fb.binop("mul", idx, 8, VT.I64), VT.I64)
        fb.store(slot, 0, fresh, VT.I64)
        emit_barrier(fb)

    def setup(fb: FunctionBuilder) -> None:
        emit_publish_array(fb, "g_visited", STATE_SPACE * 8)
        emit_publish_array(fb, "g_big", params.footprint_bytes)
        emit_publish_array(fb, "g_fresh", max(threads, 1) * 8)

    def verify(fb: FunctionBuilder) -> str:
        visited = emit_read_array(fb, "g_visited")
        reached = fb.local("reached", VT.I64, init=0)
        with fb.for_range("s", 0, STATE_SPACE) as s:
            v = fb.load(fb.binop("add", visited, fb.binop("mul", s, 8, VT.I64), VT.I64), 0, VT.I64)
            fb.binop_into(reached, "add", reached, v, VT.I64)
        fb.store(fb.addr_of("g_checksum"), 0, reached, VT.I64)
        fb.syscall("print", [reached])
        cover_lo = fb.binop("gt", reached, STATE_SPACE // 4, VT.I64)
        cover_hi = fb.binop("le", reached, STATE_SPACE, VT.I64)
        return fb.binop("and", cover_lo, cover_hi, VT.I64)

    build_parallel_scaffold(module, threads, worker_body, setup, verify)
    return module

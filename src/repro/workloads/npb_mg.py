"""NPB MG — multigrid V-cycle (memory-bandwidth bound)."""

from repro.ir import Module
from repro.isa.isa import InstrClass
from repro.workloads.base import BenchProfile, ClassParams, mix_normalised
from repro.workloads.stencil import build_stencil

PROFILE = BenchProfile(
    name="mg",
    classes={
        "A": ClassParams(3.9e9, 450 << 20, 4, 96),
        "B": ClassParams(19e9, 450 << 20, 20, 96),
        "C": ClassParams(155e9, 1700 << 20, 20, 96),
    },
    mix=mix_normalised(
        {
            InstrClass.LOAD: 0.38,
            InstrClass.STORE: 0.18,
            InstrClass.FP_ALU: 0.28,
            InstrClass.INT_ALU: 0.10,
            InstrClass.BRANCH: 0.04,
            InstrClass.MOV: 0.02,
        }
    ),
    parallel_fraction=0.93,
)


def build(cls: str = "A", threads: int = 1, scale: float = 1.0) -> Module:
    return build_stencil(
        "mg",
        PROFILE,
        cls,
        threads,
        scale,
        phases=["psinv", "resid", "rprj3", "interp"],
        phase_kind="load",
    )

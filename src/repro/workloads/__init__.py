"""Benchmark workloads (Section 6, "Benchmarks").

The paper evaluates with the NAS Parallel Benchmarks (classes A/B/C,
1-8 threads), plus bzip2smp, the Verus model checker, and Redis (for
the emulation comparison).  Each workload here is a real program in the
repro IR: it performs a scaled-down *verifiable* computation (the
checksum must survive migration bit-for-bit) while calibrated ``work``
bursts carry the full-size instruction counts and memory footprints of
the original benchmark classes.
"""

from repro.workloads.base import BenchProfile, ClassParams, WorkloadBuild
from repro.workloads.registry import (
    REGISTRY,
    build_workload,
    profile_for,
    workload_names,
)

__all__ = [
    "BenchProfile",
    "ClassParams",
    "WorkloadBuild",
    "REGISTRY",
    "build_workload",
    "profile_for",
    "workload_names",
]

"""Shared scaffolding for the benchmark suite.

Every benchmark follows the NPB shape: ``main`` allocates shared arrays
on the heap (their base addresses published through globals), spawns
``T`` worker threads, joins them, verifies the computed result and
prints ``(checksum, verified)``.  Workers synchronise with a barrier
per iteration, exactly like the OpenMP loops of the originals (the
paper runs them through Popcorn's POMP).

Each benchmark also exports a :class:`BenchProfile` — per-class total
instruction counts, instruction-class mix, and memory footprint — used
by the analytic job model of the datacenter experiments and by the
emulation study.
"""

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.ir import FunctionBuilder, GlobalVar, Module
from repro.isa.isa import InstrClass
from repro.isa.types import ValueType as VT

BARRIER_ID = 1
LCG_A = 1103515245
LCG_C = 12345
LCG_MASK = (1 << 31) - 1


@dataclass(frozen=True)
class ClassParams:
    """One NPB problem class of one benchmark."""

    total_instructions: float  # full-size dynamic instruction count
    footprint_bytes: int  # resident working set
    iterations: int  # outer (timed) iterations
    elements: int  # size of the *real* (verified) computation


@dataclass(frozen=True)
class BenchProfile:
    """Analytic description used by the scheduler/emulation studies."""

    name: str
    classes: Dict[str, ClassParams]
    # Fractions of dynamic instructions by class; must sum to ~1.
    mix: Dict[InstrClass, float]
    parallel_fraction: float = 0.95  # Amdahl cap for thread scaling

    def params(self, cls: str) -> ClassParams:
        try:
            return self.classes[cls]
        except KeyError:
            raise KeyError(
                f"{self.name} has no class {cls!r}; have {sorted(self.classes)}"
            ) from None

    def instructions_by_class(self, cls: str) -> Dict[InstrClass, float]:
        total = self.params(cls).total_instructions
        return {icls: total * frac for icls, frac in self.mix.items()}


@dataclass
class WorkloadBuild:
    """A built workload module plus its metadata."""

    module: Module
    profile: BenchProfile
    cls: str
    threads: int


def check_class(profile: BenchProfile, cls: str) -> ClassParams:
    return profile.params(cls)


def mix_normalised(mix: Dict[InstrClass, float]) -> Dict[InstrClass, float]:
    total = sum(mix.values())
    return {k: v / total for k, v in mix.items()}


# --------------------------------------------------------------- helpers

def emit_lcg_next(fb: FunctionBuilder, state_var: str) -> str:
    """state = (state * A + C) & MASK; returns the new value's var."""
    t = fb.binop("mul", state_var, LCG_A, VT.I64)
    t = fb.binop("add", t, LCG_C, VT.I64)
    fb.binop_into(state_var, "and", t, LCG_MASK, VT.I64)
    return state_var


def emit_work_share(
    fb: FunctionBuilder,
    total_amount: float,
    threads: int,
    kind: str,
    pages_var: Optional[str] = None,
    span: int = 0,
) -> None:
    """One thread's share of a work burst."""
    share = max(int(total_amount / max(threads, 1)), 1)
    fb.work(share, kind, pages=pages_var, span=span)


def build_parallel_scaffold(
    module: Module,
    threads: int,
    worker_body: Callable[[FunctionBuilder, str], None],
    setup: Callable[[FunctionBuilder], None],
    verify: Callable[[FunctionBuilder], str],
) -> None:
    """Emit ``main`` + ``worker`` with the standard NPB shape.

    ``worker_body(fb, idx_var)`` emits one worker's computation;
    ``setup(fb)`` runs in main before spawning; ``verify(fb)`` runs in
    main after joining and must return the var holding 1 (pass) / 0.
    Main prints the checksum global is expected to be handled by the
    benchmark itself; the scaffold prints only the verified flag and
    returns it as the exit code (0 = success, 1 = failure, following
    shell conventions).
    """
    worker = module.function("worker", [("idx", VT.I64)], VT.I64)
    wb = FunctionBuilder(worker)
    worker_body(wb, "idx")
    wb.ret(0)

    main = module.function("main", [], VT.I64)
    fb = FunctionBuilder(main)
    setup(fb)
    worker_addr = fb.addr_of("worker")
    fb.syscall("barrier_init", [BARRIER_ID, threads])
    tids = fb.stack_alloc(8 * max(threads, 1), "tids")
    with fb.for_range("spawn_i", 0, threads) as i:
        tid = fb.syscall("spawn", [worker_addr, i], VT.I64)
        off = fb.binop("mul", i, 8, VT.I64)
        slot = fb.binop("add", tids, off, VT.I64)
        fb.store(slot, 0, tid, VT.I64)
    with fb.for_range("join_i", 0, threads) as i:
        off = fb.binop("mul", i, 8, VT.I64)
        slot = fb.binop("add", tids, off, VT.I64)
        tid = fb.load(slot, 0, VT.I64)
        fb.syscall("join", [tid], VT.I64)
    ok = verify(fb)
    fb.syscall("print", [ok])
    failed = fb.binop("eq", ok, 0, VT.I64)
    fb.ret(failed)
    module.entry = "main"


def emit_barrier(fb: FunctionBuilder) -> None:
    fb.syscall("barrier_wait", [BARRIER_ID], VT.I64)


def declare_shared_arrays(module: Module, names: List[str]) -> None:
    """Globals holding heap base addresses published by main's setup."""
    for name in names:
        module.add_global(GlobalVar(name, VT.I64, count=1))


def emit_publish_array(fb: FunctionBuilder, global_name: str, nbytes: int) -> str:
    """sbrk an array and store its base in a global; returns the var."""
    base = fb.syscall("sbrk", [nbytes], VT.I64)
    gaddr = fb.addr_of(global_name)
    fb.store(gaddr, 0, base, VT.PTR)
    return base


def emit_read_array(fb: FunctionBuilder, global_name: str) -> str:
    gaddr = fb.addr_of(global_name)
    return fb.load(gaddr, 0, VT.PTR)

"""Golden checksums — a regression net over the entire stack.

Every workload's real computation produces a checksum that depends on
the IR semantics, the compiler lowering, the execution engine, the
threading/synchronisation machinery, and (because the suite also runs
them under migration) the full migration path.  These values were
computed once at ``scale=0.02`` on the x86 server and must never
change: any drift means a semantic change somewhere in the stack.

Checksums are thread-count dependent for EP (per-thread random
streams) and Verus (workload split changes which states each walker
visits first — the *union* count varies with the partition, not with
scheduling), and identical across thread counts everywhere else.
They are identical across ISAs and across migrations by construction —
that is the paper's core property, enforced separately in
``tests/test_workloads.py``.
"""

from typing import Dict

GOLDEN_SCALE = 0.02
GOLDEN_CLASS = "A"

# (benchmark, threads) -> checksum at GOLDEN_SCALE / GOLDEN_CLASS.
GOLDEN_CHECKSUMS: Dict[str, int] = {
    "bt.A.t1": 123255,
    "bt.A.t2": 123255,
    "bt.A.t4": 123255,
    "bzip2smp.A.t1": 54102741735033,
    "bzip2smp.A.t2": 54102741735033,
    "bzip2smp.A.t4": 54102741735033,
    "cg.A.t1": 0,  # CG converges below the 1e-6 fixed-point quantum
    "cg.A.t2": 0,
    "cg.A.t4": 0,
    "ep.A.t1": 22766,
    "ep.A.t2": 23360,
    "ep.A.t4": 23225,
    "ft.A.t1": 95520563,
    "ft.A.t2": 95520563,
    "ft.A.t4": 95520563,
    "is.A.t1": 715827200,
    "is.A.t2": 715827200,
    "is.A.t4": 715827200,
    "lu.A.t1": 107896,
    "lu.A.t2": 107896,
    "lu.A.t4": 107896,
    "mg.A.t1": 8102,
    "mg.A.t2": 8102,
    "mg.A.t4": 8102,
    "redis.A.t1": 32202,
    "redis.A.t2": 32202,
    "redis.A.t4": 32202,
    "sp.A.t1": 105455,
    "sp.A.t2": 105455,
    "sp.A.t4": 105455,
    "verus.A.t1": 3000,
    "verus.A.t2": 2005,
    "verus.A.t4": 2149,
}


def golden_key(bench: str, threads: int) -> str:
    return f"{bench}.{GOLDEN_CLASS}.t{threads}"

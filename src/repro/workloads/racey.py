"""Seeded adversarial workloads for the concurrency analyzer.

Two deliberately buggy kernels, each the minimal real-world shape of a
hazard class the RACE passes must catch:

- :func:`racey_counter_module` — the textbook unlocked shared counter:
  every worker read-modify-writes one global with no mutex and no
  barrier.  Racy on *any* memory model → ``RACE001`` (error).

- :func:`racey_publish_module` — store-then-flag publication: a
  producer writes a payload, then raises a flag; a consumer spins on
  the flag, then reads the payload.  Under x86-TSO the store order
  makes this race-free; under ARM's weaker model the flag may become
  visible before the payload, so the idiom breaks exactly when a
  thread migrates → ``RACE002`` (warning), the analyzer's
  TSO-safe/ARM-unsafe severity split.

Both modules are *runnable* (they complete and exit 0 under the
simulator's deterministic scheduler — a data race is a property of the
memory model, not of any particular interleaving), which is what lets
the soundness harness in :mod:`repro.validate.race_checker` observe
their shared pages dynamically and check the static findings cover
them.

Like ``interp_stress``, they are intentionally NOT in the workload
REGISTRY: they compute nothing from the paper and must not show up in
``repro list``, the golden-checksum table, or the datacenter job mix —
the registry corpus stays race-free by construction.
"""

from repro.ir import FunctionBuilder, GlobalVar, Module
from repro.isa.types import ValueType as VT

from repro.workloads.base import build_parallel_scaffold

DEFAULT_THREADS = 4
DEFAULT_INCREMENTS = 64
PAYLOAD = 424242


def racey_counter_module(
    threads: int = DEFAULT_THREADS, increments: int = DEFAULT_INCREMENTS
) -> Module:
    """Unlocked shared counter: a genuine RACE001 data race."""
    m = Module("racey-counter")
    m.add_global(GlobalVar("g_counter", VT.I64, count=1))

    def worker_body(fb: FunctionBuilder, idx: str) -> None:
        counter = fb.addr_of("g_counter")
        with fb.for_range("i", 0, increments):
            # Unlocked read-modify-write: the lost-update window.
            cur = fb.load(counter, 0, VT.I64)
            nxt = fb.binop("add", cur, 1, VT.I64)
            fb.store(counter, 0, nxt, VT.I64)

    def setup(fb: FunctionBuilder) -> None:
        counter = fb.addr_of("g_counter")
        fb.store(counter, 0, 0, VT.I64)

    def verify(fb: FunctionBuilder) -> str:
        # Any interleaving leaves at least `increments` increments (one
        # thread's worth always survives), so the module still exits 0.
        counter = fb.addr_of("g_counter")
        total = fb.load(counter, 0, VT.I64)
        return fb.binop("ge", total, increments, VT.I64)

    build_parallel_scaffold(m, threads, worker_body, setup, verify)
    return m


def racey_publish_module() -> Module:
    """Store-then-flag publication without a barrier: RACE002.

    One producer, one consumer, no loop of workers — the two-thread
    shape keeps the finding pair-precise: the analyzer must flag both
    the payload pair and the flag pair at warning severity and emit no
    RACE001 (each pair *is* ordered under TSO).
    """
    m = Module("racey-publish")
    m.add_global(GlobalVar("g_data", VT.I64, count=1))
    m.add_global(GlobalVar("g_flag", VT.I64, count=1))
    m.add_global(GlobalVar("g_result", VT.I64, count=1))

    producer = m.function("producer", [("idx", VT.I64)], VT.I64)
    fb = FunctionBuilder(producer)
    data = fb.addr_of("g_data")
    fb.store(data, 0, PAYLOAD, VT.I64)
    flag = fb.addr_of("g_flag")
    fb.store(flag, 0, 1, VT.I64)  # publish: no barrier between stores
    fb.ret(0)

    consumer = m.function("consumer", [("idx", VT.I64)], VT.I64)
    fb = FunctionBuilder(consumer)
    flag = fb.addr_of("g_flag")

    def not_published() -> str:
        seen = fb.load(flag, 0, VT.I64)
        return fb.binop("eq", seen, 0, VT.I64)

    with fb.while_loop(not_published):
        pass  # spin until the producer raises the flag
    data = fb.addr_of("g_data")
    payload = fb.load(data, 0, VT.I64)
    result = fb.addr_of("g_result")
    fb.store(result, 0, payload, VT.I64)
    fb.ret(0)

    main = m.function("main", [], VT.I64)
    fb = FunctionBuilder(main)
    paddr = fb.addr_of("producer")
    caddr = fb.addr_of("consumer")
    t1 = fb.syscall("spawn", [paddr, 0], VT.I64)
    t2 = fb.syscall("spawn", [caddr, 1], VT.I64)
    fb.syscall("join", [t1], VT.I64)
    fb.syscall("join", [t2], VT.I64)
    result = fb.addr_of("g_result")
    got = fb.load(result, 0, VT.I64)
    ok = fb.binop("eq", got, PAYLOAD, VT.I64)
    fb.syscall("print", [ok])
    failed = fb.binop("eq", ok, 0, VT.I64)
    fb.ret(failed)
    m.entry = "main"
    return m

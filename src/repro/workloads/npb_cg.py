"""NPB CG — conjugate gradient with irregular memory access.

Real part: a full conjugate-gradient solve on a small diagonally
dominant tridiagonal system (double precision), run by thread 0 so the
checksum is independent of FP reduction order; the class-sized flop
count is carried by distributed work bursts.  The call chain
``worker -> cg_iter -> conj_grad -> sparse_matvec`` gives the stack
transformation multi-frame work with FP live values.
"""

from repro.ir import FunctionBuilder, GlobalVar, Module
from repro.isa.isa import InstrClass
from repro.isa.types import ValueType as VT
from repro.workloads.base import (
    BenchProfile,
    ClassParams,
    build_parallel_scaffold,
    declare_shared_arrays,
    emit_barrier,
    emit_lcg_next,
    emit_publish_array,
    emit_read_array,
    mix_normalised,
)

PROFILE = BenchProfile(
    name="cg",
    classes={
        "A": ClassParams(1.5e9, 55 << 20, 15, 96),
        "B": ClassParams(55e9, 400 << 20, 75, 96),
        "C": ClassParams(143e9, 900 << 20, 75, 96),
    },
    mix=mix_normalised(
        {
            InstrClass.FP_ALU: 0.34,
            InstrClass.LOAD: 0.34,
            InstrClass.STORE: 0.08,
            InstrClass.INT_ALU: 0.14,
            InstrClass.BRANCH: 0.08,
            InstrClass.MOV: 0.02,
        }
    ),
    parallel_fraction=0.94,
)

_CG_SOLVE_ITERS = 15


def _emit_makea(module: Module, n: int) -> None:
    """Fill diag[] with 4 + small pseudo-random fraction (SPD system)."""
    fn = module.function("makea", [("seed", VT.I64)], VT.I64)
    fb = FunctionBuilder(fn)
    diag = emit_read_array(fb, "g_diag")
    state = fb.local("state", VT.I64)
    fb.assign(state, "seed")
    with fb.for_range("i", 0, n) as i:
        emit_lcg_next(fb, state)
        frac_i = fb.binop("mod", state, 1000, VT.I64)
        frac = fb.unop("i2f", frac_i, VT.F64)
        frac = fb.binop("div", frac, 2000.0, VT.F64)
        val = fb.binop("add", 4.0, frac, VT.F64)
        off = fb.binop("mul", i, 8, VT.I64)
        fb.store(fb.binop("add", diag, off, VT.I64), 0, val, VT.F64)
    fb.ret(state)


def _emit_sparse_matvec(module: Module, n: int, flops: int, footprint: int) -> None:
    """q = A p for the tridiagonal A (real) + class-sized burst."""
    fn = module.function("sparse_matvec", [("do_work", VT.I64)], VT.F64)
    fb = FunctionBuilder(fn)
    diag = emit_read_array(fb, "g_diag")
    p = emit_read_array(fb, "g_p")
    q = emit_read_array(fb, "g_q")
    big = emit_read_array(fb, "g_big")
    with fb.if_then(fb.binop("gt", "do_work", 0, VT.I64)):
        fb.work(flops, "fp_alu", pages=big, span=footprint)
    total = fb.local("mv_total", VT.F64, init=0.0)
    with fb.for_range("i", 0, n) as i:
        off = fb.binop("mul", i, 8, VT.I64)
        d = fb.load(fb.binop("add", diag, off, VT.I64), 0, VT.F64)
        pi = fb.load(fb.binop("add", p, off, VT.I64), 0, VT.F64)
        acc = fb.binop("mul", d, pi, VT.F64)
        prev_i = fb.binop("sub", i, 1, VT.I64)
        with fb.if_then(fb.binop("ge", prev_i, 0, VT.I64)):
            poff = fb.binop("mul", prev_i, 8, VT.I64)
            pprev = fb.load(fb.binop("add", p, poff, VT.I64), 0, VT.F64)
            fb.binop_into(acc, "sub", acc, pprev, VT.F64)
        next_i = fb.binop("add", i, 1, VT.I64)
        with fb.if_then(fb.binop("lt", next_i, n, VT.I64)):
            noff = fb.binop("mul", next_i, 8, VT.I64)
            pnext = fb.load(fb.binop("add", p, noff, VT.I64), 0, VT.F64)
            fb.binop_into(acc, "sub", acc, pnext, VT.F64)
        fb.store(fb.binop("add", q, off, VT.I64), 0, acc, VT.F64)
        fb.binop_into(total, "add", total, acc, VT.F64)
    fb.ret(total)


def _emit_dot(module: Module, n: int) -> None:
    """dot(u, v) over two published arrays selected by index."""
    fn = module.function("dot", [("ua", VT.PTR), ("va", VT.PTR)], VT.F64)
    fb = FunctionBuilder(fn)
    total = fb.local("dot_total", VT.F64, init=0.0)
    with fb.for_range("i", 0, n) as i:
        off = fb.binop("mul", i, 8, VT.I64)
        u = fb.load(fb.binop("add", "ua", off, VT.I64), 0, VT.F64)
        v = fb.load(fb.binop("add", "va", off, VT.I64), 0, VT.F64)
        fb.binop_into(total, "add", total, fb.binop("mul", u, v, VT.F64), VT.F64)
    fb.ret(total)


def _emit_conj_grad(module: Module, n: int, flops_per_iter: int, footprint: int) -> None:
    """One full CG solve (thread 0 only); returns ||r||^2 at the end."""
    fn = module.function("conj_grad", [("do_work", VT.I64)], VT.F64)
    fb = FunctionBuilder(fn)
    p = emit_read_array(fb, "g_p")
    q = emit_read_array(fb, "g_q")
    r = emit_read_array(fb, "g_r")
    x = emit_read_array(fb, "g_x")
    # x = 0, r = b = 1, p = r.
    with fb.for_range("i", 0, n) as i:
        off = fb.binop("mul", i, 8, VT.I64)
        fb.store(fb.binop("add", x, off, VT.I64), 0, 0.0, VT.F64)
        fb.store(fb.binop("add", r, off, VT.I64), 0, 1.0, VT.F64)
        fb.store(fb.binop("add", p, off, VT.I64), 0, 1.0, VT.F64)
    rho = fb.local("rho", VT.F64)
    fb.assign(rho, fb.call("dot", [r, r], VT.F64))
    with fb.for_range("cgit", 0, _CG_SOLVE_ITERS):
        fb.call("sparse_matvec", ["do_work"], VT.F64)
        pq = fb.call("dot", [p, q], VT.F64)
        alpha = fb.binop("div", rho, pq, VT.F64)
        with fb.for_range("j", 0, n) as j:
            off = fb.binop("mul", j, 8, VT.I64)
            xa = fb.binop("add", x, off, VT.I64)
            ra = fb.binop("add", r, off, VT.I64)
            pa = fb.binop("add", p, off, VT.I64)
            qa = fb.binop("add", q, off, VT.I64)
            xv = fb.load(xa, 0, VT.F64)
            pv = fb.load(pa, 0, VT.F64)
            fb.store(xa, 0, fb.binop("add", xv, fb.binop("mul", alpha, pv, VT.F64), VT.F64), VT.F64)
            rv = fb.load(ra, 0, VT.F64)
            qv = fb.load(qa, 0, VT.F64)
            fb.store(ra, 0, fb.binop("sub", rv, fb.binop("mul", alpha, qv, VT.F64), VT.F64), VT.F64)
        rho_new = fb.call("dot", [r, r], VT.F64)
        beta = fb.binop("div", rho_new, rho, VT.F64)
        fb.assign(rho, rho_new)
        with fb.for_range("j2", 0, n) as j:
            off = fb.binop("mul", j, 8, VT.I64)
            pa = fb.binop("add", p, off, VT.I64)
            ra = fb.binop("add", r, off, VT.I64)
            pv = fb.load(pa, 0, VT.F64)
            rv = fb.load(ra, 0, VT.F64)
            fb.store(pa, 0, fb.binop("add", rv, fb.binop("mul", beta, pv, VT.F64), VT.F64), VT.F64)
    fb.ret(rho)


def build(cls: str = "A", threads: int = 1, scale: float = 1.0) -> Module:
    params = PROFILE.params(cls)
    n = params.elements
    module = Module(f"cg.{cls}.{threads}")
    declare_shared_arrays(
        module, ["g_diag", "g_p", "g_q", "g_r", "g_x", "g_big"]
    )
    module.add_global(GlobalVar("g_checksum", VT.I64))

    total_instr = params.total_instructions * scale
    flops_per_iter = int(
        total_instr / (_CG_SOLVE_ITERS * max(threads, 1))
    )

    _emit_makea(module, n)
    _emit_dot(module, n)
    _emit_sparse_matvec(module, n, flops_per_iter, params.footprint_bytes)
    _emit_conj_grad(module, n, flops_per_iter, params.footprint_bytes)

    # Worker 0 runs the real solve (its matvec calls carry work bursts);
    # other workers burn their share of the bursts and synchronise.
    burner = module.function("cg_burn", [("iters", VT.I64)], VT.I64)
    bb = FunctionBuilder(burner)
    big = emit_read_array(bb, "g_big")
    with bb.for_range("w", 0, "iters"):
        bb.work(flops_per_iter, "fp_alu", pages=big, span=params.footprint_bytes)
    bb.ret(0)

    def worker_body(fb: FunctionBuilder, idx: str) -> None:
        is_zero = fb.binop("eq", idx, 0, VT.I64)

        def solver() -> None:
            rho = fb.call("conj_grad", [1], VT.F64)
            scaled = fb.binop("mul", rho, 1e6, VT.F64)
            fb.store(fb.addr_of("g_checksum"), 0, fb.unop("f2i", scaled, VT.I64), VT.I64)

        def burn() -> None:
            fb.call("cg_burn", [_CG_SOLVE_ITERS], VT.I64)

        fb.if_then_else(is_zero, solver, burn)
        emit_barrier(fb)

    def setup(fb: FunctionBuilder) -> None:
        for name in ("g_diag", "g_p", "g_q", "g_r", "g_x"):
            emit_publish_array(fb, name, n * 8)
        emit_publish_array(fb, "g_big", params.footprint_bytes)
        fb.call("makea", [314159265], VT.I64)

    def verify(fb: FunctionBuilder) -> str:
        check = fb.load(fb.addr_of("g_checksum"), 0, VT.I64)
        fb.syscall("print", [check])
        # CG converged iff the final residual shrank below the start
        # (n at iteration 0); diagonally dominant => always true.
        return fb.binop("lt", check, int(n * 1e6), VT.I64)

    build_parallel_scaffold(module, threads, worker_body, setup, verify)
    return module

"""A Redis-like key-value store serving a request trace.

Single-threaded (like Redis proper): a command loop applying SET/GET/
INCR operations from a deterministic trace to an open-addressing hash
table, with work bursts for request parsing/response formatting.  The
paper uses Redis for the emulation study (2.6x slowdown emulated on
ARM-host direction vs 34x the other way) and cites it as the class of
stateful C application that motivates native-code migration.
"""

from repro.ir import FunctionBuilder, GlobalVar, Module
from repro.isa.isa import InstrClass
from repro.isa.types import ValueType as VT
from repro.workloads.base import (
    BenchProfile,
    ClassParams,
    build_parallel_scaffold,
    declare_shared_arrays,
    emit_barrier,
    emit_lcg_next,
    emit_publish_array,
    emit_read_array,
    mix_normalised,
)

TABLE_SLOTS = 2048

PROFILE = BenchProfile(
    name="redis",
    classes={
        "A": ClassParams(1.2e9, 96 << 20, 1, 6000),
        "B": ClassParams(4.8e9, 192 << 20, 1, 24000),
        "C": ClassParams(19e9, 384 << 20, 1, 96000),
    },
    mix=mix_normalised(
        {
            InstrClass.LOAD: 0.34,
            InstrClass.STORE: 0.14,
            InstrClass.INT_ALU: 0.26,
            InstrClass.BRANCH: 0.18,
            InstrClass.MOV: 0.06,
            InstrClass.SYSCALL: 0.02,
        }
    ),
    parallel_fraction=0.05,  # single-threaded event loop
)


def _emit_serve(module: Module, requests: int, instr: int, footprint: int) -> None:
    fn = module.function("serve_requests", [("seed", VT.I64)], VT.I64)
    fb = FunctionBuilder(fn)
    table = emit_read_array(fb, "g_table")
    big = emit_read_array(fb, "g_big")
    fb.work(instr, "load", pages=big, span=footprint)
    state = fb.local("state", VT.I64)
    fb.assign(state, "seed")
    check = fb.local("check", VT.I64, init=0)
    # The real request loop is a sample of the trace (1 in 64 requests);
    # the work burst above carries the full trace's instruction budget.
    sampled = max(requests // 64, 64)
    with fb.for_range("r", 0, sampled):
        emit_lcg_next(fb, state)
        key = fb.binop("mod", state, TABLE_SLOTS, VT.I64)
        op = fb.binop("mod", fb.binop("shr", state, 4, VT.I64), 3, VT.I64)
        slot = fb.binop("add", table, fb.binop("mul", key, 8, VT.I64), VT.I64)
        current = fb.load(slot, 0, VT.I64)

        def do_set() -> None:
            fb.store(slot, 0, fb.binop("add", key, 1, VT.I64), VT.I64)

        def do_get_or_incr() -> None:
            def do_get() -> None:
                # Responses fold value AND key, so the checksum is
                # nonzero even when every sampled GET misses.
                reply = fb.binop("add", current, fb.binop("add", key, 1, VT.I64), VT.I64)
                fb.binop_into(check, "add", check, reply, VT.I64)

            def do_incr() -> None:
                fb.store(slot, 0, fb.binop("add", current, 1, VT.I64), VT.I64)

            is_get = fb.binop("eq", op, 1, VT.I64)
            fb.if_then_else(is_get, do_get, do_incr)

        is_set = fb.binop("eq", op, 0, VT.I64)
        fb.if_then_else(is_set, do_set, do_get_or_incr)
    fb.ret(check)


def build(cls: str = "A", threads: int = 1, scale: float = 1.0) -> Module:
    """Redis is single-threaded; ``threads`` > 1 adds idle workers only
    (kept for interface uniformity with the other workloads)."""
    params = PROFILE.params(cls)
    module = Module(f"redis.{cls}.{threads}")
    declare_shared_arrays(module, ["g_table", "g_big"])
    module.add_global(GlobalVar("g_checksum", VT.I64))

    total_instr = params.total_instructions * scale

    _emit_serve(
        module, params.elements, int(total_instr), params.footprint_bytes
    )

    def worker_body(fb: FunctionBuilder, idx: str) -> None:
        is_zero = fb.binop("eq", idx, 0, VT.I64)
        with fb.if_then(is_zero):
            check = fb.call("serve_requests", [42424242], VT.I64)
            fb.store(fb.addr_of("g_checksum"), 0, check, VT.I64)
        emit_barrier(fb)

    def setup(fb: FunctionBuilder) -> None:
        emit_publish_array(fb, "g_table", TABLE_SLOTS * 8)
        emit_publish_array(fb, "g_big", params.footprint_bytes)

    def verify(fb: FunctionBuilder) -> str:
        check = fb.load(fb.addr_of("g_checksum"), 0, VT.I64)
        fb.syscall("print", [check])
        return fb.binop("gt", check, 0, VT.I64)

    build_parallel_scaffold(module, threads, worker_body, setup, verify)
    return module

"""Counters and histograms for the tracing layer.

A :class:`MetricsRegistry` is the aggregate view of what the span
stream records event-by-event: how many DSM faults fired
(``dsm.page_faults``), how long hand-offs took (``migrate.handoff_s``),
how many bytes crossed the wire (``msg.wire_bytes``).  The registry is
owned by a :class:`~repro.telemetry.spans.Tracer` and surfaced on
:class:`~repro.datacenter.energy.RunResult.metrics` and in the CLI run
report; its snapshot format is stable so exported runs stay diffable.

Like the tracer, metrics are passive and deterministic: updating them
never charges simulated time and never consumes randomness.
"""

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple, Union


def quantile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolated quantile of pre-sorted data.

    The single shared quantile implementation: ``analysis.stats`` (box
    plots), the serving SLO accounting (``serving.slo``) and
    :class:`SampleHistogram` all call this, so every percentile in the
    repo is computed the same way.
    """
    if not sorted_values:
        raise ValueError("no data")
    if len(sorted_values) == 1:
        return sorted_values[0]
    pos = q * (len(sorted_values) - 1)
    lo = int(math.floor(pos))
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = pos - lo
    return sorted_values[lo] * (1 - frac) + sorted_values[hi] * frac


def percentiles(
    values: Sequence[float], qs: Sequence[float] = (0.5, 0.99, 0.999)
) -> Tuple[float, ...]:
    """The requested quantiles of ``values`` (sorted once, shared).

    Returns zeros when ``values`` is empty so callers surfacing
    latency summaries on empty runs need no special case.
    """
    if not values:
        return tuple(0.0 for _ in qs)
    data = sorted(values)
    return tuple(quantile(data, q) for q in qs)


@dataclass
class Counter:
    """A monotonically increasing named count."""

    name: str
    value: Union[int, float] = 0

    def inc(self, n: Union[int, float] = 1) -> None:
        """Add ``n`` (which must be non-negative) to the counter."""
        if n < 0:
            raise ValueError(f"counter {self.name} cannot decrease (n={n})")
        self.value += n


@dataclass
class Histogram:
    """Summary statistics over observed values (count/total/min/max)."""

    name: str
    count: int = 0
    total: float = 0.0
    min: float = 0.0
    max: float = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        if self.count == 0:
            self.min = value
            self.max = value
        else:
            self.min = min(self.min, value)
            self.max = max(self.max, value)
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0


@dataclass
class SampleHistogram(Histogram):
    """A histogram that also retains every sample for quantiles.

    Used where tail percentiles matter (serving SLO accounting):
    :meth:`quantile` interpolates over the retained samples with the
    shared :func:`quantile` helper.  Summary fields stay identical to
    :class:`Histogram`, so a :class:`SampleHistogram` drops into any
    snapshot without changing the stable format.
    """

    samples: List[float] = field(default_factory=list)

    def observe(self, value: float) -> None:
        """Record one observation, retaining the sample."""
        super().observe(value)
        self.samples.append(float(value))

    def quantile(self, q: float) -> float:
        """The interpolated ``q``-quantile of the samples (0.0 if empty)."""
        if not self.samples:
            return 0.0
        return quantile(sorted(self.samples), q)


class MetricsRegistry:
    """Create-on-demand registry of named counters and histograms."""

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter called ``name``, created on first use."""
        metric = self._counters.get(name)
        if metric is None:
            if name in self._histograms:
                raise ValueError(f"{name!r} is already a histogram")
            metric = Counter(name)
            self._counters[name] = metric
        return metric

    def histogram(self, name: str) -> Histogram:
        """The histogram called ``name``, created on first use."""
        metric = self._histograms.get(name)
        if metric is None:
            if name in self._counters:
                raise ValueError(f"{name!r} is already a counter")
            metric = Histogram(name)
            self._histograms[name] = metric
        return metric

    def snapshot(self) -> Dict[str, object]:
        """A plain-dict, name-sorted view of every metric.

        Counters map to their value; histograms map to a dict with
        ``count``, ``total``, ``min``, ``max`` and ``mean`` keys.
        """
        out: Dict[str, object] = {}
        for name in sorted(set(self._counters) | set(self._histograms)):
            counter = self._counters.get(name)
            if counter is not None:
                out[name] = counter.value
            else:
                histogram = self._histograms[name]
                out[name] = {
                    "count": histogram.count,
                    "total": histogram.total,
                    "min": histogram.min,
                    "max": histogram.max,
                    "mean": histogram.mean,
                }
        return out

    def render_rows(self):
        """(name, formatted value) pairs for table rendering."""
        rows = []
        for name, value in self.snapshot().items():
            if isinstance(value, dict):
                rows.append(
                    (name,
                     f"n={value['count']} total={value['total']:.6g} "
                     f"mean={value['mean']:.6g}")
                )
            else:
                rows.append((name, f"{value:g}"))
        return rows

"""Telemetry for the invariant-checking layer (:mod:`repro.validate`).

Checkers are silent when everything holds; this log is the evidence
that they actually ran.  It counts checks per checker and keeps a
structured record of every violation observed (normally the violation
is also raised, so the list has at most one entry unless a caller
deliberately continues past failures).
"""

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, List


@dataclass
class ViolationRecord:
    """One observed invariant violation, flattened for reporting."""

    checker: str
    invariant: str
    detail: str = ""
    state: Dict[str, Any] = field(default_factory=dict)


class ValidationLog:
    """Counts invariant checks and records violations."""

    def __init__(self):
        self.checks: Counter = Counter()
        self.violations: List[ViolationRecord] = []

    def note_check(self, checker: str, count: int = 1) -> None:
        """Count ``count`` executed checks for ``checker``."""
        self.checks[checker] += count

    def note_violation(self, exc) -> None:
        """Record an :class:`~repro.validate.InvariantViolation`."""
        self.violations.append(
            ViolationRecord(
                checker=getattr(exc, "checker", "?"),
                invariant=getattr(exc, "invariant", "?"),
                detail=getattr(exc, "detail", str(exc)),
                state=dict(getattr(exc, "state", {}) or {}),
            )
        )

    def total_checks(self) -> int:
        """Total invariant checks executed across all checkers."""
        return sum(self.checks.values())

    def summary(self) -> str:
        """One-line check/violation digest for the run report."""
        from repro.render import counter_digest

        return (
            f"{self.total_checks()} invariant checks "
            f"({counter_digest(self.checks)}), "
            f"{len(self.violations)} violations"
        )


_DEFAULT = ValidationLog()


def default_log() -> ValidationLog:
    """The process-wide log the wrapper factories report into."""
    return _DEFAULT


def reset_default_log() -> ValidationLog:
    """Swap in a fresh default log (tests, CLI runs); returns it."""
    global _DEFAULT
    _DEFAULT = ValidationLog()
    return _DEFAULT

"""Causally linked span tracing over the DES clock.

The paper's headline numbers — migration latency decomposed into stack
transformation, page pulls and kernel hand-off (Figs. 10-13) — are
exactly what a production migration stack must observe continuously.
This module provides the observation layer: a :class:`Tracer` that the
protocol sites (``kernel/migration.py``, ``kernel/dsm.py``,
``kernel/messages.py``, ``kernel/syscall.py``,
``datacenter/cluster.py``, ``faults/detector.py``) emit
:class:`Span` records into.

Design rules:

* **Zero overhead when off.**  Every site guards on ``tracer is None``
  (one attribute read); with no tracer attached, runs are bit-identical
  to the seed.  Opt in via ``PopcornSystem(tracer=...)`` /
  ``ClusterSimulator(tracer=...)`` or ``REPRO_TRACE=1``.
* **Deterministic.**  Span ids are a counter, timestamps come from the
  simulated clock (never wall time), and no randomness is consumed —
  the same seed produces an identical trace, and tracing never charges
  simulated time, so traced and untraced runs produce identical
  results.
* **Causal.**  Spans carry ``trace_id`` / ``span_id`` / ``parent_id``.
  A parented span must nest inside its parent's interval
  (:func:`check_causality` enforces this); causality that does *not*
  nest in time — e.g. the post-migration page-pull burst caused by a
  migration that already committed — is expressed with the ``flow``
  attribute (the causing span's id) instead of parentage, and exported
  as Chrome-trace flow arrows.

See ``docs/observability.md`` for the span taxonomy and the attribute
reference.
"""

import itertools
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.telemetry.metrics import MetricsRegistry

_TRUTHY = ("1", "true", "yes", "on")

#: Span categories emitted by the built-in instrumentation sites.
CATEGORIES = (
    "migrate", "dsm", "msg", "sys", "sched", "fault", "detector",
    "serve", "emul", "managed",
)


@dataclass
class Span:
    """One timed, causally linked interval (or instant) of a run."""

    trace_id: str
    span_id: int
    parent_id: Optional[int]
    name: str
    category: str
    start_s: float
    #: ``None`` while the span is still open; equal to ``start_s`` for
    #: instant (zero-duration) spans.
    end_s: Optional[float]
    #: Display track (a machine/kernel name, ``net``, ``cluster``, ...).
    track: str
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        """The span's length in simulated seconds (0.0 while open)."""
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s

    def key(self) -> tuple:
        """A hashable, order-stable digest (determinism tests)."""
        return (
            self.trace_id,
            self.span_id,
            self.parent_id,
            self.name,
            self.category,
            round(self.start_s, 12),
            None if self.end_s is None else round(self.end_s, 12),
            self.track,
            tuple(sorted((k, repr(v)) for k, v in self.attrs.items())),
        )


class Tracer:
    """Collects spans and metrics for one run.

    The tracer is passive: it never advances the clock, never charges
    time, and never consumes randomness.  Instrumentation sites either
    pass explicit ``start_s``/``duration_s`` (exact, derived from the
    cost model) or let the tracer stamp the bound simulated clock.
    """

    def __init__(self, trace_id: str = "t1"):
        self.trace_id = trace_id
        self.spans: List[Span] = []
        self.metrics = MetricsRegistry()
        self._ids = itertools.count(1)
        self._stack: List[Span] = []
        self._clock = None
        #: Attributes merged into every emitted span until changed —
        #: the execution engine sets the current thread's identity here
        #: so spans emitted from deep in the DSM carry a ``tid``.
        self._context: Dict[str, object] = {}

    # ------------------------------------------------------------- time

    def bind_clock(self, clock) -> None:
        """Use ``clock.now`` as the default timestamp source."""
        self._clock = clock

    def now(self) -> float:
        """Current simulated time (0.0 when no clock is bound)."""
        clock = self._clock
        return clock.now if clock is not None else 0.0

    # ---------------------------------------------------------- context

    def set_context(self, **attrs) -> None:
        """Replace the ambient attributes merged into emitted spans."""
        self._context = {k: v for k, v in attrs.items() if v is not None}

    def clear_context(self) -> None:
        """Drop the ambient attributes."""
        self._context = {}

    # --------------------------------------------------------- emission

    def _make(self, name, category, start_s, end_s, track, parent_id, attrs):
        merged = dict(self._context)
        merged.update(attrs)
        span = Span(
            trace_id=self.trace_id,
            span_id=next(self._ids),
            parent_id=parent_id,
            name=name,
            category=category,
            start_s=start_s,
            end_s=end_s,
            track=track,
            attrs=merged,
        )
        self.spans.append(span)
        return span

    def begin(
        self,
        name: str,
        category: str,
        start_s: Optional[float] = None,
        track: str = "main",
        **attrs,
    ) -> Span:
        """Open a span and push it on the nesting stack.

        Children opened (or completed with ``parent=...``) before the
        matching :meth:`end` nest under it; :meth:`annotate_current`
        attaches attributes to it.
        """
        start = self.now() if start_s is None else start_s
        parent = self._stack[-1].span_id if self._stack else None
        span = self._make(name, category, start, None, track, parent, attrs)
        self._stack.append(span)
        return span

    def end(self, span: Span, end_s: Optional[float] = None, **attrs) -> Span:
        """Close ``span`` (popping it from the stack if it is open there)."""
        span.end_s = self.now() if end_s is None else end_s
        if span.end_s < span.start_s:
            span.end_s = span.start_s
        span.attrs.update(attrs)
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:
            self._stack.remove(span)
        return span

    def complete(
        self,
        name: str,
        category: str,
        start_s: float,
        duration_s: float,
        track: str = "main",
        parent: Optional[Span] = None,
        **attrs,
    ) -> Span:
        """Record a closed span with an exact start and duration."""
        parent_id = parent.span_id if parent is not None else None
        return self._make(
            name, category, start_s, start_s + max(duration_s, 0.0),
            track, parent_id, attrs,
        )

    def instant(
        self,
        name: str,
        category: str,
        ts: Optional[float] = None,
        track: str = "main",
        parent: Optional[Span] = None,
        **attrs,
    ) -> Span:
        """Record a zero-duration marker span."""
        when = self.now() if ts is None else ts
        parent_id = parent.span_id if parent is not None else None
        return self._make(name, category, when, when, track, parent_id, attrs)

    def annotate_current(self, **attrs) -> None:
        """Attach attributes to the innermost open span (if any).

        Used by the chaos injector and the invariant checkers so fault
        and violation annotations land on the protocol span that was
        active when they fired.
        """
        if self._stack:
            self._stack[-1].attrs.update(attrs)

    # -------------------------------------------------------- inspection

    def by_category(self) -> Dict[str, int]:
        """Span counts per category, sorted by category name."""
        counts: Dict[str, int] = {}
        for span in self.spans:
            counts[span.category] = counts.get(span.category, 0) + 1
        return dict(sorted(counts.items()))

    def open_spans(self) -> List[Span]:
        """Spans begun but never ended (should be empty after a run)."""
        return [s for s in self.spans if s.end_s is None]


def env_enabled() -> bool:
    """Is ``REPRO_TRACE`` set to a truthy value?"""
    return os.environ.get("REPRO_TRACE", "").strip().lower() in _TRUTHY


def maybe_tracer() -> Optional[Tracer]:
    """A fresh :class:`Tracer` when ``REPRO_TRACE=1``, else ``None``."""
    return Tracer() if env_enabled() else None


def check_causality(spans: List[Span], eps: float = 1e-9) -> List[str]:
    """Validate the causal structure of a span list.

    Returns a list of human-readable problems (empty when the trace is
    well formed): every span must have ``end >= start``, every parented
    span's parent must exist in the same trace, and the child interval
    must nest inside the parent's interval (within ``eps``).  ``flow``
    links must name an existing span that *starts no later* than the
    linked span (causes precede effects).
    """
    problems: List[str] = []
    by_id = {s.span_id: s for s in spans}
    for span in spans:
        label = f"span {span.span_id} ({span.name})"
        if span.end_s is None:
            problems.append(f"{label} was never closed")
            continue
        if span.end_s < span.start_s - eps:
            problems.append(f"{label} ends before it starts")
        if span.parent_id is not None:
            parent = by_id.get(span.parent_id)
            if parent is None:
                problems.append(f"{label} has missing parent {span.parent_id}")
            else:
                if parent.trace_id != span.trace_id:
                    problems.append(f"{label} crosses traces to its parent")
                if parent.end_s is not None and (
                    span.start_s < parent.start_s - eps
                    or span.end_s > parent.end_s + eps
                ):
                    problems.append(
                        f"{label} does not nest within parent "
                        f"{parent.span_id} ({parent.name})"
                    )
        flow = span.attrs.get("flow")
        if flow is not None:
            cause = by_id.get(flow)
            if cause is None:
                problems.append(f"{label} flows from missing span {flow}")
            elif cause.start_s > span.start_s + eps:
                problems.append(
                    f"{label} flows from span {flow} that starts later"
                )
    return problems

"""Fault-event telemetry.

Every fault the cluster simulator injects or recovers from is recorded
as a :class:`FaultLogEntry` in a per-run :class:`FaultLog`.  The log is
exported verbatim on the :class:`~repro.datacenter.energy.RunResult`
(``fault_trace``) so benchmarks and the CLI can print a timeline and
tests can assert exact recovery behaviour.

Entries are frozen dataclasses and never embed process-global state
(job ids, object reprs), so the same seed and fault schedule produce an
identical trace run-to-run — the determinism guarantee the DES makes
for every other output.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.render import timeline_line


@dataclass(frozen=True)
class FaultLogEntry:
    """One timestamped fault or recovery action."""

    time: float
    kind: str  # crash | repair | degrade | degrade-end | partition | heal |
    #            evacuate | restart | cross-isa-denied | park | blocked | lost |
    #            suspect | unsuspect | confirm | fence | rejoin |
    #            handoff-begin | handoff-commit | handoff-abort
    node: Optional[str] = None
    detail: str = ""

    def format(self) -> str:
        """One aligned human-readable timeline line."""
        return timeline_line(self.time, self.kind, self.node, self.detail)


class FaultLog:
    """Ordered fault-event trace for one simulation run."""

    def __init__(self):
        self.entries: List[FaultLogEntry] = []

    def record(
        self,
        time: float,
        kind: str,
        node: Optional[str] = None,
        detail: str = "",
    ) -> FaultLogEntry:
        """Append one event to the timeline and return it."""
        entry = FaultLogEntry(time, kind, node, detail)
        self.entries.append(entry)
        return entry

    def by_kind(self) -> Dict[str, int]:
        """Event counts per kind."""
        counts: Dict[str, int] = {}
        for entry in self.entries:
            counts[entry.kind] = counts.get(entry.kind, 0) + 1
        return counts

    def kinds(self) -> set:
        """The set of event kinds that occurred."""
        return {entry.kind for entry in self.entries}

    def format_trace(self, title: str = "fault trace") -> str:
        """The whole timeline as printable text."""
        lines = [title] + [e.format() for e in self.entries]
        if not self.entries:
            lines.append("(no fault events)")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

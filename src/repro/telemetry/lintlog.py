"""Telemetry for the static analyzer (:mod:`repro.analyze`).

The run log's counterpart to :mod:`repro.telemetry.validation`: every
lint that runs in a process (link-time via ``Toolchain(lint=True)`` or
the ``repro lint`` command) records its per-pass check counts and its
diagnostics by code here, so runs and lints share one reporting
surface — the CLI prints both summaries side by side.
"""

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class LintRunRecord:
    """One lint invocation, flattened for reporting."""

    subject: str
    pass_checks: Dict[str, int] = field(default_factory=dict)
    by_code: Dict[str, int] = field(default_factory=dict)
    errors: int = 0
    warnings: int = 0
    infos: int = 0
    suppressed: int = 0


class LintLog:
    """Aggregates lint reports across a process run."""

    def __init__(self):
        self.pass_checks: Counter = Counter()
        self.by_code: Counter = Counter()
        self.records: List[LintRunRecord] = []

    def note_report(self, report) -> None:
        """Record a :class:`repro.analyze.LintReport`."""
        severities = report.counts_by_severity()
        record = LintRunRecord(
            subject=report.subject,
            pass_checks=dict(report.pass_checks),
            by_code=report.counts_by_code(),
            errors=severities["error"],
            warnings=severities["warning"],
            infos=severities["info"],
            suppressed=len(report.suppressed),
        )
        self.records.append(record)
        self.pass_checks.update(record.pass_checks)
        self.by_code.update(record.by_code)

    def total_checks(self) -> int:
        """Total pass executions across all recorded reports."""
        return sum(self.pass_checks.values())

    def total_errors(self) -> int:
        """Total error-severity diagnostics across all reports."""
        return sum(r.errors for r in self.records)

    def summary(self) -> str:
        """One-line per-pass / per-code digest for the run report."""
        passes = ", ".join(
            f"{name}:{count}" for name, count in sorted(self.pass_checks.items())
        )
        codes = ", ".join(
            f"{code}:{count}" for code, count in sorted(self.by_code.items())
        )
        return (
            f"{len(self.records)} lint(s), {self.total_checks()} checks "
            f"({passes or 'none'}); diagnostics: {codes or 'none'}"
        )


_DEFAULT = LintLog()


def default_lint_log() -> LintLog:
    """The process-wide log lints report into."""
    return _DEFAULT


def reset_default_lint_log() -> LintLog:
    """Swap in a fresh default log (tests, CLI runs); returns it."""
    global _DEFAULT
    _DEFAULT = LintLog()
    return _DEFAULT

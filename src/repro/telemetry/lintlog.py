"""Telemetry for the static analyzer (:mod:`repro.analyze`).

The run log's counterpart to :mod:`repro.telemetry.validation`: every
lint that runs in a process (link-time via ``Toolchain(lint=True)`` or
the ``repro lint`` command) records its per-pass check counts and its
diagnostics by code here, so runs and lints share one reporting
surface — the CLI prints both summaries side by side.
"""

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List

from repro.render import counter_digest


@dataclass
class LintRunRecord:
    """One lint invocation, flattened for reporting."""

    subject: str
    pass_checks: Dict[str, int] = field(default_factory=dict)
    by_code: Dict[str, int] = field(default_factory=dict)
    errors: int = 0
    warnings: int = 0
    infos: int = 0
    suppressed: int = 0


class LintLog:
    """Aggregates lint reports across a process run."""

    def __init__(self):
        self.pass_checks: Counter = Counter()
        self.by_code: Counter = Counter()
        self.records: List[LintRunRecord] = []

    def note_report(self, report) -> None:
        """Record a :class:`repro.analyze.LintReport`."""
        severities = report.counts_by_severity()
        record = LintRunRecord(
            subject=report.subject,
            pass_checks=dict(report.pass_checks),
            by_code=report.counts_by_code(),
            errors=severities["error"],
            warnings=severities["warning"],
            infos=severities["info"],
            suppressed=len(report.suppressed),
        )
        self.records.append(record)
        self.pass_checks.update(record.pass_checks)
        self.by_code.update(record.by_code)

    def total_checks(self) -> int:
        """Total pass executions across all recorded reports."""
        return sum(self.pass_checks.values())

    def total_errors(self) -> int:
        """Total error-severity diagnostics across all reports."""
        return sum(r.errors for r in self.records)

    def counts_by_family(self) -> Dict[str, int]:
        """Diagnostic counts rolled up by code family (MIG/RACE/SHR).

        The family is the code's alphabetic prefix — the level the CLI
        summaries report at, next to the per-code digest.
        """
        families: Counter = Counter()
        for code, count in self.by_code.items():
            families[code.rstrip("0123456789")] += count
        return dict(families)

    def summary(self) -> str:
        """One-line per-pass / per-code digest for the run report."""
        families = counter_digest(self.counts_by_family())
        return (
            f"{len(self.records)} lint(s), {self.total_checks()} checks "
            f"({counter_digest(self.pass_checks)}); "
            f"diagnostics: {families} "
            f"({counter_digest(self.by_code)})"
        )


_DEFAULT = LintLog()


def default_lint_log() -> LintLog:
    """The process-wide log lints report into."""
    return _DEFAULT


def reset_default_lint_log() -> LintLog:
    """Swap in a fresh default log (tests, CLI runs); returns it."""
    global _DEFAULT
    _DEFAULT = LintLog()
    return _DEFAULT

"""Recording power and load traces from a running system.

One :class:`PowerRecorder` per experiment: it attaches a 100 Hz sampler
to every machine's sensors (CPU power, system power, load) and exposes
per-machine :class:`MachineTraces` plus energy integration helpers.
"""

from dataclasses import dataclass
from typing import Dict, Optional

from repro.sim.trace import Sampler, TimeSeries


@dataclass
class MachineTraces:
    """The three traces Figure 11 shows per machine."""

    machine: str
    cpu_power: TimeSeries
    system_power: TimeSeries
    load: TimeSeries

    def cpu_energy(self, t0: Optional[float] = None, t1: Optional[float] = None) -> float:
        """Integrated CPU (internal) energy in joules over [t0, t1]."""
        return self.cpu_power.integrate(t0, t1)

    def system_energy(self, t0: Optional[float] = None, t1: Optional[float] = None) -> float:
        """Integrated wall-socket energy in joules over [t0, t1]."""
        return self.system_power.integrate(t0, t1)


class PowerRecorder:
    """Samples every machine of a system at a fixed rate."""

    def __init__(self, system, rate_hz: float = 100.0):
        self.system = system
        self.sampler = Sampler(rate_hz)
        self.traces: Dict[str, MachineTraces] = {}
        for name, machine in system.machines.items():
            cpu = self.sampler.add_probe(f"{name}.cpu_w", machine.cpu_power)
            sys_p = self.sampler.add_probe(f"{name}.sys_w", machine.system_power)
            load = self.sampler.add_probe(
                f"{name}.load", lambda m=machine: m.utilization() * 100.0
            )
            self.traces[name] = MachineTraces(name, cpu, sys_p, load)

    def finish(self) -> None:
        """Record any ticks up to the current simulated time."""
        self.sampler.sample_until(self.system.clock.now)

    def total_cpu_energy(self) -> float:
        """Summed CPU energy over every machine."""
        return sum(t.cpu_energy() for t in self.traces.values())

    def total_system_energy(self) -> float:
        """Summed wall-socket energy over every machine."""
        return sum(t.system_energy() for t in self.traces.values())

    def machine(self, name: str) -> MachineTraces:
        """The recorded traces for machine ``name``."""
        return self.traces[name]

"""Run telemetry: power traces, fault/lint/validation logs, and spans.

Wires the machines' power sensors and load counters into 100 Hz
:class:`~repro.sim.trace.TimeSeries` streams — the data behind
Figure 11's traces and every energy integral in Figures 12-13 — and
(opt-in, see ``docs/observability.md``) emits causally linked
:class:`~repro.telemetry.spans.Span` records plus a
:class:`~repro.telemetry.metrics.MetricsRegistry` from every protocol
site in the kernel, datacenter and fault layers.
"""

from repro.telemetry.faultlog import FaultLog, FaultLogEntry
from repro.telemetry.lintlog import (
    LintLog,
    LintRunRecord,
    default_lint_log,
    reset_default_lint_log,
)
from repro.telemetry.metrics import Counter, Histogram, MetricsRegistry
from repro.telemetry.recorder import MachineTraces, PowerRecorder
from repro.telemetry.spans import Span, Tracer, check_causality, maybe_tracer
from repro.telemetry.validation import (
    ValidationLog,
    ViolationRecord,
    default_log,
    reset_default_log,
)

__all__ = [
    "PowerRecorder",
    "MachineTraces",
    "FaultLog",
    "FaultLogEntry",
    "LintLog",
    "LintRunRecord",
    "ValidationLog",
    "ViolationRecord",
    "Span",
    "Tracer",
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "check_causality",
    "maybe_tracer",
    "default_lint_log",
    "default_log",
    "reset_default_lint_log",
    "reset_default_log",
]

"""Power/load telemetry (Section 6, "Power measurements").

Wires the machines' power sensors and load counters into 100 Hz
:class:`~repro.sim.trace.TimeSeries` streams — the data behind
Figure 11's traces and every energy integral in Figures 12-13.
"""

from repro.telemetry.faultlog import FaultLog, FaultLogEntry
from repro.telemetry.lintlog import (
    LintLog,
    LintRunRecord,
    default_lint_log,
    reset_default_lint_log,
)
from repro.telemetry.recorder import MachineTraces, PowerRecorder
from repro.telemetry.validation import (
    ValidationLog,
    ViolationRecord,
    default_log,
    reset_default_log,
)

__all__ = [
    "PowerRecorder",
    "MachineTraces",
    "FaultLog",
    "FaultLogEntry",
    "LintLog",
    "LintRunRecord",
    "ValidationLog",
    "ViolationRecord",
    "default_lint_log",
    "default_log",
    "reset_default_lint_log",
    "reset_default_log",
]

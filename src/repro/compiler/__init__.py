"""The multi-ISA compiler toolchain.

Mirrors the paper's modified clang/LLVM pipeline (Figure 2):

1. migration points are inserted at function boundaries and, guided by a
   Valgrind-like profile, inside long-running loops
   (:mod:`repro.compiler.migration_points`, :mod:`repro.compiler.profiling`);
2. each target back-end performs register allocation against its own
   register file and lays out an ABI-specific stack frame
   (:mod:`repro.compiler.regalloc`, :mod:`repro.compiler.frame`);
3. codegen lowers IR to per-ISA machine functions with instruction-class
   cost annotations (:mod:`repro.compiler.codegen`);
4. live-value stackmaps and DWARF-like unwind metadata are emitted at
   every call site (:mod:`repro.compiler.stackmaps`,
   :mod:`repro.compiler.unwind`);
5. the toolchain driver links everything into a multi-ISA binary with a
   common symbol layout (:mod:`repro.compiler.toolchain` +
   :mod:`repro.linker`).
"""

from repro.compiler.frame import FrameLayout, Location
from repro.compiler.codegen import MachineFunction, MachineInstr, lower_function
from repro.compiler.regalloc import AllocationResult, allocate_registers
from repro.compiler.stackmaps import StackMap, StackMapEntry
from repro.compiler.unwind import UnwindInfo
from repro.compiler.migration_points import insert_migration_points
from repro.compiler.toolchain import CompiledBinary, MultiIsaBinary, Toolchain

__all__ = [
    "Location",
    "FrameLayout",
    "MachineFunction",
    "MachineInstr",
    "lower_function",
    "AllocationResult",
    "allocate_registers",
    "StackMap",
    "StackMapEntry",
    "UnwindInfo",
    "insert_migration_points",
    "Toolchain",
    "CompiledBinary",
    "MultiIsaBinary",
]

"""Lowering IR functions to per-ISA machine functions.

A :class:`MachineFunction` is the unit the execution engine runs and
the linker lays out: the shared IR body annotated, per ISA, with

* the register/slot location of every local (after register allocation),
* the ABI frame layout and unwind rules,
* per-instruction machine-instruction counts by :class:`InstrClass`
  (already scaled by the ISA's lowering expansion),
* stackmaps at every call site and migration point,
* a static code size in bytes for the linker.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.compiler.frame import FrameLayout, Location, build_frame_layout
from repro.compiler.regalloc import AllocationResult, allocate_registers
from repro.compiler.stackmaps import StackMap, StackMapEntry
from repro.compiler.unwind import UnwindInfo
from repro.ir.analysis import liveness
from repro.ir.function import Function
from repro.ir.instructions import (
    AddrOf,
    BinOp,
    Br,
    CBr,
    Call,
    Const,
    InlineAsm,
    Instr,
    Load,
    MigPoint,
    Ret,
    StackAlloc,
    Store,
    Syscall,
    UnOp,
    Work,
)
from repro.isa.isa import InstrClass, Isa

# Average static machine instructions a `work` burst loop compiles to,
# regardless of its dynamic trip count.
_WORK_STATIC_INSTRS = 8
_DIV_COST = 8
_SQRT_COST = 12
_CONVERT_COST = 2


@dataclass
class MachineInstr:
    """One IR instruction with its per-ISA cost annotation."""

    ir: Instr
    # Machine instructions by class; Work with a variable amount keeps
    # its dynamic cost out of this dict (the engine computes it).
    counts: Dict[InstrClass, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        return sum(self.counts.values())


@dataclass
class MachineFunction:
    """A function lowered for one ISA."""

    fn: Function
    isa: Isa
    alloc: AllocationResult
    frame: FrameLayout
    unwind: UnwindInfo
    blocks: Dict[str, List[MachineInstr]]
    stackmaps: Dict[int, StackMap]
    # site_id -> (block, index) of the site instruction, for resuming.
    site_positions: Dict[int, Tuple[str, int]]
    prologue_counts: Dict[InstrClass, float]
    code_size: int
    text_addr: int = 0  # assigned by the linker

    @property
    def name(self) -> str:
        return self.fn.name

    # Return addresses: each call site gets a stable code offset within
    # the function; the stride differs per ISA (encoding widths differ)
    # so the numeric return addresses genuinely differ across ISAs and
    # must be mapped during migration, as in the paper.
    _RA_BASE = 32

    def _ra_stride(self) -> int:
        return max(int(self.isa.bytes_per_instr * 5), 8)

    def _site_ordinals(self) -> Dict[int, int]:
        cached = getattr(self, "_site_ordinal_cache", None)
        if cached is None:
            cached = {
                site: i for i, site in enumerate(sorted(self.site_positions))
            }
            self._site_ordinal_cache = cached
        return cached

    def return_address(self, site_id: int) -> int:
        """The post-call return address for ``site_id`` in this ISA's code."""
        ordinal = self._site_ordinals()[site_id]
        return self.text_addr + self._RA_BASE + ordinal * self._ra_stride()

    def site_for_return_address(self, addr: int) -> int:
        """Invert :meth:`return_address`; raises KeyError if not a site."""
        offset = addr - self.text_addr - self._RA_BASE
        stride = self._ra_stride()
        if offset < 0 or offset % stride:
            raise KeyError(f"{addr:#x} is not a return address in {self.name}")
        ordinal = offset // stride
        for site, o in self._site_ordinals().items():
            if o == ordinal:
                return site
        raise KeyError(f"{addr:#x} beyond the sites of {self.name}")

    def location(self, var: str) -> Location:
        reg = self.alloc.reg_assignment.get(var)
        if reg is not None:
            return Location.in_reg(reg)
        return Location.in_slot(self.frame.slot_depths[var])

    def machine_instr(self, block: str, index: int) -> MachineInstr:
        return self.blocks[block][index]


def _work_class(kind: str) -> InstrClass:
    try:
        return InstrClass(kind)
    except ValueError:
        raise ValueError(f"unknown work kind {kind!r}") from None


def _abstract_costs(instr: Instr, fn: Function) -> Dict[InstrClass, float]:
    """Machine-instruction counts by class, before ISA expansion."""
    if isinstance(instr, Const):
        return {InstrClass.MOV: 1}
    if isinstance(instr, UnOp):
        if instr.op == "mov":
            return {InstrClass.MOV: 1}
        if instr.op == "sqrt":
            return {InstrClass.FP_ALU: _SQRT_COST}
        if instr.op in ("i2f", "f2i"):
            return {InstrClass.FP_ALU: _CONVERT_COST}
        cls = InstrClass.FP_ALU if instr.vt.is_float else InstrClass.INT_ALU
        return {cls: 1}
    if isinstance(instr, BinOp):
        cls = InstrClass.FP_ALU if instr.vt.is_float else InstrClass.INT_ALU
        cost = _DIV_COST if instr.op in ("div", "mod") else 1
        return {cls: float(cost)}
    if isinstance(instr, Load):
        return {InstrClass.LOAD: 1}
    if isinstance(instr, Store):
        return {InstrClass.STORE: 1}
    if isinstance(instr, (AddrOf, StackAlloc)):
        return {InstrClass.INT_ALU: 1}
    if isinstance(instr, Call):
        return {InstrClass.CALL: 1, InstrClass.MOV: float(len(instr.args) + 1)}
    if isinstance(instr, Ret):
        return {InstrClass.RET: 1}
    if isinstance(instr, Br):
        return {InstrClass.BRANCH: 1}
    if isinstance(instr, CBr):
        return {InstrClass.BRANCH: 1, InstrClass.INT_ALU: 1}
    if isinstance(instr, Work):
        # Work is always charged dynamically by the execution engine
        # (the amount may be a runtime value); only the loop scaffold
        # contributes static cost, via _WORK_STATIC_INSTRS below.
        return {}
    if isinstance(instr, MigPoint):
        # "a function call and a memory read" plus the flag test.
        return {
            InstrClass.LOAD: 1,
            InstrClass.BRANCH: 1,
            InstrClass.CALL: 1,
            InstrClass.MOV: 2,
        }
    if isinstance(instr, Syscall):
        return {InstrClass.SYSCALL: 1, InstrClass.MOV: float(len(instr.args))}
    if isinstance(instr, InlineAsm):
        return {InstrClass.INT_ALU: float(instr.instr_estimate)}
    raise TypeError(f"unknown instruction {type(instr).__name__}")


def _expand(counts: Dict[InstrClass, float], isa: Isa) -> Dict[InstrClass, float]:
    return {cls: n * isa.expansion(cls) for cls, n in counts.items()}


def _static_size(
    mf_blocks: Dict[str, List[MachineInstr]],
    prologue: Dict[InstrClass, float],
    isa: Isa,
) -> int:
    static_instrs = sum(prologue.values())
    for instrs in mf_blocks.values():
        for mi in instrs:
            if isinstance(mi.ir, Work):
                static_instrs += _WORK_STATIC_INSTRS
            else:
                static_instrs += mi.total
    return max(int(static_instrs * isa.bytes_per_instr), 16)


def lower_function(fn: Function, isa: Isa) -> MachineFunction:
    """Compile one function for one ISA."""
    alloc = allocate_registers(fn, isa)
    frame = build_frame_layout(
        isa,
        saved_regs=alloc.clobbered_callee_saved,
        memory_locals=alloc.memory_locals,
        buffers=fn.stack_buffers,
    )
    unwind = UnwindInfo.from_layout(fn.name, frame)
    live = liveness(fn)

    blocks: Dict[str, List[MachineInstr]] = {}
    stackmaps: Dict[int, StackMap] = {}
    site_positions: Dict[int, Tuple[str, int]] = {}

    def make_stackmap(
        instr: Instr, block: str, index: int, site_id: int
    ) -> StackMap:
        live_vars = set(live.live_after[(block, index)])
        live_vars.discard(getattr(instr, "dst", ""))
        entries = []
        for var in sorted(live_vars):
            vt = fn.var_types[var]
            entries.append(
                StackMapEntry(
                    var=var,
                    vt=vt,
                    location=_var_location(var, alloc, frame),
                    maybe_stack_pointer=(vt.name == "PTR"),
                )
            )
        return StackMap(
            site_id=site_id,
            function=fn.name,
            block=block,
            index=index,
            entries=entries,
        )

    for label in fn.block_order:
        lowered: List[MachineInstr] = []
        for index, instr in enumerate(fn.blocks[label].instrs):
            counts = _expand(_abstract_costs(instr, fn), isa)
            lowered.append(MachineInstr(ir=instr, counts=counts))
            site_id = getattr(instr, "site_id", -1)
            if site_id >= 0 and isinstance(instr, (Call, Syscall, MigPoint)):
                stackmaps[site_id] = make_stackmap(instr, label, index, site_id)
                site_positions[site_id] = (label, index)
        blocks[label] = lowered

    saved = len(alloc.clobbered_callee_saved)
    prologue = _expand(
        {
            InstrClass.STORE: float(saved + 2),  # callee-saved + fp/lr pair
            InstrClass.INT_ALU: 2.0,  # stack pointer adjustment
            InstrClass.MOV: float(len(fn.params)),
        },
        isa,
    )

    return MachineFunction(
        fn=fn,
        isa=isa,
        alloc=alloc,
        frame=frame,
        unwind=unwind,
        blocks=blocks,
        stackmaps=stackmaps,
        site_positions=site_positions,
        prologue_counts=prologue,
        code_size=_static_size(blocks, prologue, isa),
    )


def _var_location(
    var: str, alloc: AllocationResult, frame: FrameLayout
) -> Location:
    reg = alloc.reg_assignment.get(var)
    if reg is not None:
        return Location.in_reg(reg)
    return Location.in_slot(frame.slot_depths[var])

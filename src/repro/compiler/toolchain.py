"""The toolchain driver: IR module -> multi-ISA binary (Figure 2).

Pipeline: validate, insert migration points, assign call-site ids,
lower per ISA, align symbols into the common layout, lay out TLS per
the x86-64 mapping, and bundle everything into a
:class:`MultiIsaBinary` the heterogeneous binary loader can load on any
kernel.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.compiler.codegen import MachineFunction, lower_function
from repro.compiler.migration_points import (
    DEFAULT_TARGET_GAP,
    insert_boundary_points,
    insert_profiled_points,
)
from repro.ir.function import Module
from repro.ir.instructions import Call, InlineAsm, MigPoint, Syscall
from repro.ir.validate import validate_module


class UnsupportedFeatureError(Exception):
    """The module uses a feature the migratable toolchain rejects
    (Section 5.4): inline assembly defeats the live-variable analysis.
    Build with ``allow_unmigratable=True`` to compile anyway — the
    affected functions then carry no migration points and must not be
    live on the stack when a migration is attempted."""
from repro.isa import ALL_ISAS, Isa
from repro.isa.types import type_align
from repro.linker.alignment import AlignedLayout, align_symbols
from repro.linker.elf import IsaObject, Symbol
from repro.linker.layout import DEFAULT_VM_MAP, VirtualMemoryMap
from repro.linker.linker_script import render_linker_script
from repro.linker.tls import TlsLayout, build_tls_layout


@dataclass
class CompiledBinary:
    """One ISA's executable: machine functions plus layout artifacts."""

    isa: Isa
    machine_functions: Dict[str, MachineFunction]
    object: IsaObject
    linker_script: str = ""

    def function(self, name: str) -> MachineFunction:
        return self.machine_functions[name]


@dataclass
class MultiIsaBinary:
    """The multi-ISA binary: 'one executable file per ISA' sharing a
    common address-space layout."""

    module: Module
    binaries: Dict[str, CompiledBinary]
    layout: AlignedLayout
    unaligned_layouts: Dict[str, AlignedLayout]
    tls: TlsLayout
    vm_map: VirtualMemoryMap
    global_addresses: Dict[str, int] = field(default_factory=dict)
    migration_point_count: int = 0
    site_count: int = 0
    # Build intent, recorded for the static analyzer (repro.analyze):
    # the migration-point insertion level and the responsiveness target
    # the coverage pass lints against.
    point_mode: str = "profiled"
    target_gap: int = DEFAULT_TARGET_GAP

    @property
    def isa_names(self) -> List[str]:
        return sorted(self.binaries)

    def binary_for(self, isa_name: str) -> CompiledBinary:
        try:
            return self.binaries[isa_name]
        except KeyError:
            raise KeyError(
                f"binary not compiled for {isa_name}; have {self.isa_names}"
            ) from None

    def machine_function(self, isa_name: str, fn_name: str) -> MachineFunction:
        return self.binary_for(isa_name).function(fn_name)

    def address_of(self, symbol: str) -> int:
        """Common virtual address of a symbol (function or global)."""
        return self.layout.address_of(symbol)

    def text_footprint(self, isa_name: str, padded: bool = True) -> int:
        return self.layout.footprint(isa_name, ".text", padded)

    def function_containing(self, isa_name: str, addr: int):
        """The machine function whose code range contains ``addr``."""
        for mf in self.binary_for(isa_name).machine_functions.values():
            if mf.text_addr <= addr < mf.text_addr + mf.code_size:
                return mf
        raise KeyError(f"no function at {addr:#x} on {isa_name}")


class Toolchain:
    """Compiles IR modules into multi-ISA binaries.

    ``migration_points`` selects the insertion level:

    * ``'none'`` — bare binary (used for overhead baselines);
    * ``'boundary'`` — function entry/exit only (the figures' "Pre");
    * ``'profiled'`` — boundary plus strip-mined work bursts ("Post").
    """

    def __init__(
        self,
        isas: Optional[List[Isa]] = None,
        vm_map: VirtualMemoryMap = DEFAULT_VM_MAP,
        migration_points: str = "profiled",
        target_gap: int = DEFAULT_TARGET_GAP,
        align: bool = True,
        allow_unmigratable: bool = False,
        opt_level: int = 0,
        lint: bool = False,
    ):
        self.isas = list(isas) if isas is not None else list(ALL_ISAS.values())
        if not self.isas:
            raise ValueError("at least one target ISA required")
        self.vm_map = vm_map
        if migration_points not in ("none", "boundary", "profiled"):
            raise ValueError(f"bad migration_points {migration_points!r}")
        self.migration_points = migration_points
        self.target_gap = target_gap
        self.align = align
        self.allow_unmigratable = allow_unmigratable
        if opt_level not in (0, 1, 2):
            raise ValueError(f"bad opt_level {opt_level}")
        self.opt_level = opt_level
        # Opt-in link-time lint: run the repro.analyze migration-safety
        # passes over the finished binary and refuse to ship one with
        # error-severity diagnostics.
        self.lint = lint

    def build(self, module: Module) -> MultiIsaBinary:
        validate_module(module)
        self._check_supported(module)

        if self.opt_level >= 1:
            # "The toolchain runs standard compiler optimizations ...
            # over LLVM's intermediate representation" before the
            # back-ends; migration points go in afterwards.
            from repro.compiler.optimize import optimize_module

            optimize_module(module)
            validate_module(module)

        inserted = 0
        if self.migration_points in ("boundary", "profiled"):
            inserted += insert_boundary_points(module)
        if self.migration_points == "profiled":
            inserted += insert_profiled_points(module, self.target_gap)

        site_count = _assign_site_ids(module)
        validate_module(module)  # insertion must keep the module well-formed

        binaries: Dict[str, CompiledBinary] = {}
        objects: List[IsaObject] = []
        for isa in self.isas:
            mfs = {
                name: lower_function(fn, isa)
                for name, fn in module.functions.items()
            }
            obj = _build_object(module, isa, mfs)
            objects.append(obj)
            binaries[isa.name] = CompiledBinary(
                isa=isa, machine_functions=mfs, object=obj
            )

        layout = align_symbols(objects, self.vm_map, align_functions=self.align)
        unaligned = {
            obj.isa_name: align_symbols([obj], self.vm_map, align_functions=False)
            for obj in objects
        }
        for binary in binaries.values():
            binary.linker_script = render_linker_script(layout, binary.isa.name)
            for name, mf in binary.machine_functions.items():
                mf.text_addr = layout.address_of(name)

        tls = build_tls_layout(module.globals.values())
        global_addresses = {
            name: layout.address_of(name)
            for name, gv in module.globals.items()
            if not gv.thread_local
        }

        binary = MultiIsaBinary(
            module=module,
            binaries=binaries,
            layout=layout,
            unaligned_layouts=unaligned,
            tls=tls,
            vm_map=self.vm_map,
            global_addresses=global_addresses,
            migration_point_count=inserted,
            site_count=site_count,
            point_mode=self.migration_points,
            target_gap=self.target_gap,
        )
        if self.lint:
            self._lint(binary)
        return binary

    def _lint(self, binary: "MultiIsaBinary") -> None:
        """Fail-on-error migration-safety lint at link time."""
        from repro.analyze import LintError, run_lint
        from repro.telemetry.lintlog import default_lint_log

        report = run_lint(binary)
        default_lint_log().note_report(report)
        if report.error_count:
            raise LintError(report)


    def _check_supported(self, module: Module) -> None:
        if self.allow_unmigratable or self.migration_points == "none":
            return
        offenders = []
        for name, fn in module.functions.items():
            if fn.library:
                continue  # library code is expected to be opaque
            for _, _, instr in fn.instructions():
                if isinstance(instr, InlineAsm):
                    offenders.append(name)
                    break
        if offenders:
            raise UnsupportedFeatureError(
                f"inline assembly in {sorted(offenders)}: the live-value "
                f"analysis cannot see through it"
            )


def _assign_site_ids(module: Module) -> int:
    """Give every call site / syscall / migration point a unique id.

    The ids are shared by every ISA's stackmaps — they are the paper's
    ISA-independent return-address mapping.
    """
    next_id = 0
    for fn in module.functions.values():
        for _, _, instr in fn.instructions():
            if isinstance(instr, (Call, Syscall, MigPoint)):
                instr.site_id = next_id
                next_id += 1
    return next_id


def _build_object(
    module: Module, isa: Isa, mfs: Dict[str, MachineFunction]
) -> IsaObject:
    obj = IsaObject(isa_name=isa.name)
    for name in sorted(mfs):
        obj.add_symbol(
            Symbol(
                name=name,
                section=".text",
                size=mfs[name].code_size,
                align=16,
                is_function=True,
            )
        )
    for name in sorted(module.globals):
        gv = module.globals[name]
        if gv.thread_local:
            continue  # TLS handled by repro.linker.tls
        obj.add_symbol(
            Symbol(
                name=name,
                section=gv.section,
                size=gv.size,
                align=max(type_align(gv.vt), 8),
            )
        )
    return obj

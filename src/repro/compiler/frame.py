"""ABI-specific stack frame layout.

Offsets are *depths*: a slot at depth ``d`` lives at address ``CFA - d``
where the CFA (canonical frame address) is the stack pointer value at
the call site in the caller, exactly as in DWARF.  Depths grow downward
in memory; a frame occupies ``[CFA - frame_size, CFA)``.

The two layout styles intentionally disagree about where everything
lives (that is the whole point of the paper's stack transformation):

* ``SYSV_X86_64``: return address at depth 8 (pushed by ``call``),
  saved RBP at 16, callee-saved register save area next, then locals
  and spills, stack buffers deepest.
* ``AAPCS64``: the FP/LR pair is stored at the *bottom* of the frame
  (greatest depth), callee-saved registers just above it, locals and
  spills above those, stack buffers closest to the CFA.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.isa.abi import FrameLayoutStyle
from repro.isa.isa import Isa

WORD = 8


@dataclass(frozen=True)
class Location:
    """Where a live value lives: a register or a frame slot."""

    kind: str  # 'reg' or 'slot'
    reg: str = ""
    depth: int = 0  # CFA - depth, only for kind == 'slot'

    @staticmethod
    def in_reg(name: str) -> "Location":
        return Location(kind="reg", reg=name)

    @staticmethod
    def in_slot(depth: int) -> "Location":
        return Location(kind="slot", depth=depth)

    def __repr__(self) -> str:
        if self.kind == "reg":
            return f"Loc(reg={self.reg})"
        return f"Loc(CFA-{self.depth})"


@dataclass
class FrameLayout:
    """The complete frame map of one function on one ISA."""

    isa_name: str
    frame_size: int = 0
    # Depth of the pushed return address (x86 only; 0 when in LR).
    return_addr_depth: int = 0
    saved_fp_depth: int = 0
    saved_lr_depth: int = 0  # ARM only
    # Callee-saved registers this function clobbers -> save-slot depth.
    saved_reg_depths: Dict[str, int] = field(default_factory=dict)
    # Memory-resident locals / spills -> slot depth.
    slot_depths: Dict[str, int] = field(default_factory=dict)
    # Stack buffers (alloca) -> (depth of buffer END, size). The buffer
    # occupies [CFA - depth, CFA - depth + size).
    buffer_depths: Dict[str, Tuple[int, int]] = field(default_factory=dict)

    def slot_address(self, cfa: int, var: str) -> int:
        return cfa - self.slot_depths[var]

    def buffer_address(self, cfa: int, name: str) -> int:
        depth, _size = self.buffer_depths[name]
        return cfa - depth

    def save_slot_address(self, cfa: int, reg: str) -> int:
        return cfa - self.saved_reg_depths[reg]

    def contains_depth(self, depth: int) -> bool:
        return 0 < depth <= self.frame_size


def _align_up(value: int, alignment: int) -> int:
    return (value + alignment - 1) // alignment * alignment


def build_frame_layout(
    isa: Isa,
    saved_regs: List[str],
    memory_locals: List[str],
    buffers: Dict[str, int],
) -> FrameLayout:
    """Lay out one function's frame for ``isa``.

    ``saved_regs``: callee-saved registers the allocator assigned,
    ``memory_locals``: locals that need a stack slot (address-taken or
    spilled), ``buffers``: alloca name -> size in bytes.
    """
    layout = FrameLayout(isa_name=isa.name)
    style = isa.cc.frame_style

    if style is FrameLayoutStyle.SYSV_X86_64:
        depth = WORD  # return address pushed by `call`
        layout.return_addr_depth = depth
        depth += WORD  # push rbp
        layout.saved_fp_depth = depth
        for reg in saved_regs:
            depth += WORD
            layout.saved_reg_depths[reg] = depth
        for var in memory_locals:
            depth += WORD
            layout.slot_depths[var] = depth
        for name, size in buffers.items():
            depth = _align_up(depth + size, WORD)
            layout.buffer_depths[name] = (depth, size)
        layout.frame_size = _align_up(depth, isa.cc.stack_alignment)
    elif style is FrameLayoutStyle.AAPCS64:
        # Build from the CFA downwards: buffers first (shallow), then
        # locals, then the callee-saved area, with the FP/LR pair at the
        # very bottom — the mirror image of the x86 frame.
        depth = 0
        for name, size in buffers.items():
            depth = _align_up(depth + size, WORD)
            layout.buffer_depths[name] = (depth, size)
        for var in memory_locals:
            depth += WORD
            layout.slot_depths[var] = depth
        for reg in saved_regs:
            depth += WORD
            layout.saved_reg_depths[reg] = depth
        depth += WORD
        layout.saved_lr_depth = depth
        depth += WORD
        layout.saved_fp_depth = depth
        layout.frame_size = _align_up(depth, isa.cc.stack_alignment)
    else:  # pragma: no cover - only two styles exist
        raise ValueError(f"unknown frame style {style}")

    return layout

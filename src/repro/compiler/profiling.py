"""Valgrind-style migration-gap profiling (Section 5.2.1, Figures 3-5).

The paper built a Valgrind tool counting instructions between migration
points.  Here the execution engine reports every migration-point hit to
a :class:`GapProfile`, which attributes the instruction gap to the site
where it ended and produces the log-decade histograms of Figures 3-5.
"""

import math
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

HISTOGRAM_DECADES = 11  # 10^0 .. 10^10, as in the figures


@dataclass
class GapProfile:
    """Instruction gaps between consecutive migration points."""

    # site key -> list of gaps ending at that site (per thread merged).
    gaps_by_site: Dict[Tuple[str, int], List[int]] = field(
        default_factory=lambda: defaultdict(list)
    )

    def record(self, function: str, point_id: int, gap: int) -> None:
        if gap > 0:
            self.gaps_by_site[(function, point_id)].append(gap)

    def mean_gap(self, function: str, point_id: int) -> float:
        gaps = self.gaps_by_site.get((function, point_id), [])
        return sum(gaps) / len(gaps) if gaps else 0.0

    def site_means(self) -> Dict[Tuple[str, int], float]:
        return {
            site: sum(gaps) / len(gaps)
            for site, gaps in self.gaps_by_site.items()
            if gaps
        }

    def all_gaps(self) -> List[int]:
        out: List[int] = []
        for gaps in self.gaps_by_site.values():
            out.extend(gaps)
        return out

    def max_gap(self) -> int:
        gaps = self.all_gaps()
        return max(gaps) if gaps else 0

    def hot_functions(self, target_gap: float) -> List[str]:
        """Functions containing a site whose mean gap exceeds the target."""
        hot = set()
        for (function, _point), mean in self.site_means().items():
            if mean > target_gap:
                hot.add(function)
        return sorted(hot)

    def decade_histogram(self) -> List[int]:
        """Frequency of sites per log10 decade of mean gap (Figures 3-5).

        Bucket ``i`` counts sites whose mean gap lies in
        ``[10^i, 10^(i+1))``; this is the "Average # of instructions
        between function calls" axis of the paper's figures.
        """
        buckets = [0] * HISTOGRAM_DECADES
        for mean in self.site_means().values():
            if mean < 1:
                continue
            decade = min(int(math.log10(mean)), HISTOGRAM_DECADES - 1)
            buckets[decade] += 1
        return buckets

    def format_histogram(self, title: str = "") -> str:
        lines = []
        if title:
            lines.append(title)
        for decade, count in enumerate(self.decade_histogram()):
            bar = "#" * count
            lines.append(f"  10^{decade:<2} {count:4d} {bar}")
        return "\n".join(lines)


class GapRecorder:
    """Per-thread hook the execution engine drives.

    Tracks the running instruction count and, at every migration point,
    hands the gap since the previous point to the shared profile.
    """

    def __init__(self, profile: GapProfile):
        self.profile = profile
        self._last_count: Dict[int, float] = {}

    def on_instructions(self, tid: int, count: float) -> None:
        # Engine reports cumulative counts; nothing to do until a point.
        pass

    def on_migration_point(
        self, tid: int, function: str, point_id: int, cumulative_instrs: float
    ) -> None:
        last = self._last_count.get(tid, 0.0)
        gap = int(cumulative_instrs - last)
        self._last_count[tid] = cumulative_instrs
        self.profile.record(function, point_id, gap)

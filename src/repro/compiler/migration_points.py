"""Migration point insertion (Section 5.2.1).

Two passes, mirroring the paper's workflow:

* :func:`insert_boundary_points` puts a migration point at every
  function entry and immediately before every return — the naturally
  occurring equivalence points.
* :func:`insert_profiled_points` uses a gap profile (or a static
  threshold) to break up long runs of computation: every ``work`` burst
  that would exceed the target gap (~50M instructions, one scheduling
  quantum) is strip-mined into a chunked loop with a migration point per
  chunk.  This is the compiler "inserting migration points into other
  locations in the source in order to adjust the migration response
  time".
"""

import re
from typing import Dict, List, Optional

from repro.ir.function import BasicBlock, Function, Module
from repro.ir.instructions import BinOp, Br, CBr, Const, MigPoint, Ret, UnOp, Work
from repro.isa.types import ValueType

DEFAULT_TARGET_GAP = 50_000_000  # one scheduling quantum, per the paper

# Chunk-loop body blocks minted by _strip_mine (``<label>.wb<n>``).
_CHUNK_BODY = re.compile(r"\.wb\d+$")


def _next_point_id(fn: Function) -> int:
    highest = -1
    for _, _, instr in fn.instructions():
        if isinstance(instr, MigPoint):
            highest = max(highest, instr.point_id)
    return highest + 1


def insert_boundary_points(module: Module) -> int:
    """Insert entry/exit migration points in every function.

    Returns the number of points inserted.  Idempotent: functions that
    already start with a migration point are left alone.
    """
    inserted = 0
    for fn in module.functions.values():
        if not _migratable(fn):
            continue
        point_id = _next_point_id(fn)
        entry_block = fn.blocks[fn.entry]
        if not (entry_block.instrs and isinstance(entry_block.instrs[0], MigPoint)):
            entry_block.instrs.insert(0, MigPoint(point_id=point_id, origin="entry"))
            point_id += 1
            inserted += 1
        for label in fn.block_order:
            block = fn.blocks[label]
            new_instrs = []
            for instr in block.instrs:
                if isinstance(instr, Ret) and not (
                    new_instrs and isinstance(new_instrs[-1], MigPoint)
                ):
                    new_instrs.append(MigPoint(point_id=point_id, origin="exit"))
                    point_id += 1
                    inserted += 1
                new_instrs.append(instr)
            block.instrs = new_instrs
    return inserted


def insert_profiled_points(
    module: Module,
    target_gap: int = DEFAULT_TARGET_GAP,
    hot_functions: Optional[List[str]] = None,
) -> int:
    """Strip-mine long work bursts so no gap exceeds ``target_gap``.

    ``hot_functions`` restricts the pass (e.g. to functions a gap
    profile flagged); by default every function is considered.  Returns
    the number of migration points inserted.
    """
    inserted = 0
    for name, fn in module.functions.items():
        if hot_functions is not None and name not in hot_functions:
            continue
        if not _migratable(fn):
            continue
        inserted += _chunk_work_in_function(fn, target_gap)
        inserted += _point_work_cycles(fn)
    return inserted


def _migratable(fn: Function) -> bool:
    """Library code and inline-assembly functions get no migration
    points (Section 5.4's limitations)."""
    if fn.library:
        return False
    from repro.ir.instructions import InlineAsm

    for _, _, instr in fn.instructions():
        if isinstance(instr, InlineAsm):
            return False
    return True


def _needs_chunking(instr: Work, target_gap: int) -> bool:
    if isinstance(instr.amount, (int, float)):
        return instr.amount > target_gap
    return True  # dynamic trip counts are chunked defensively


def _chunk_work_in_function(fn: Function, target_gap: int) -> int:
    inserted = 0
    # Iterate by index over the *growing* block list: strip-mining moves
    # everything after the split into a fresh continuation block, and a
    # second work burst in the same source block must be found there.
    scan = 0
    while scan < len(fn.block_order):
        label = fn.block_order[scan]
        scan += 1
        if _CHUNK_BODY.search(label):
            # A chunk body generated below: its Work(chunk_var) is
            # dynamic and already paired with a migration point —
            # re-chunking it would strip-mine forever.
            continue
        block = fn.blocks[label]
        split_at = None
        for i, instr in enumerate(block.instrs):
            if isinstance(instr, Work) and _needs_chunking(instr, target_gap):
                split_at = i
                break
        if split_at is None:
            continue
        _strip_mine(fn, label, split_at, target_gap)
        inserted += 1
    return inserted


def _point_work_cycles(fn: Function) -> int:
    """Give every cycle that performs work a migration point.

    Strip-mining bounds each individual burst, but a burst at or below
    the target repeated by a source-level loop still accumulates an
    unbounded point-free gap across iterations.  Any strongly connected
    component of the CFG that contains a ``work`` instruction and no
    migration point gets one, right after its first burst.
    """
    inserted = 0
    succs = {label: fn.blocks[label].successors() for label in fn.block_order}
    for component in _sccs(fn.block_order, succs):
        if len(component) == 1 and component[0] not in succs[component[0]]:
            continue  # trivial SCC, no self-loop: not a cycle
        has_work = has_point = False
        for label in component:
            for instr in fn.blocks[label].instrs:
                if isinstance(instr, Work):
                    has_work = True
                elif isinstance(instr, MigPoint):
                    has_point = True
        if not has_work or has_point:
            continue
        for label in sorted(component):
            block = fn.blocks[label]
            for i, instr in enumerate(block.instrs):
                if isinstance(instr, Work):
                    block.instrs.insert(
                        i + 1,
                        MigPoint(point_id=_next_point_id(fn), origin="profiled"),
                    )
                    inserted += 1
                    break
            else:
                continue
            break
    return inserted


def _sccs(order, succs) -> List[List[str]]:
    """Iterative Tarjan over the CFG (workload CFGs can be deep)."""
    index: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack = set()
    stack: List[str] = []
    out: List[List[str]] = []
    counter = [0]

    def strongconnect(v: str) -> None:
        work = [(v, iter(succs.get(v, ())))]
        index[v] = low[v] = counter[0]
        counter[0] += 1
        stack.append(v)
        on_stack.add(v)
        while work:
            node, it = work[-1]
            advanced = False
            for w in it:
                if w not in index:
                    index[w] = low[w] = counter[0]
                    counter[0] += 1
                    stack.append(w)
                    on_stack.add(w)
                    work.append((w, iter(succs.get(w, ()))))
                    advanced = True
                    break
                if w in on_stack:
                    low[node] = min(low[node], index[w])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                component = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    component.append(w)
                    if w == node:
                        break
                out.append(component)

    for v in order:
        if v not in index:
            strongconnect(v)
    return out


def _strip_mine(fn: Function, label: str, index: int, chunk: int) -> None:
    """Rewrite ``work(N)`` at (label, index) into a chunked loop.

    Produces::

        rem = N
        header: if rem <= 0 goto cont
        body:   c = min(rem, chunk); work(c); migpoint; rem -= c; goto header
        cont:   <rest of the original block>
    """
    block = fn.blocks[label]
    work = block.instrs[index]
    assert isinstance(work, Work)
    suffix = block.instrs[index + 1 :]
    block.instrs = block.instrs[:index]

    n = len(fn.blocks)
    rem = fn.declare(f".wrem{n}", ValueType.I64)
    chunk_var = fn.declare(f".wchunk{n}", ValueType.I64)
    cond = fn.declare(f".wcond{n}", ValueType.I64)

    header = fn.block(f"{label}.wh{n}")
    body = fn.block(f"{label}.wb{n}")
    cont = fn.block(f"{label}.wc{n}")

    if isinstance(work.amount, str):
        block.instrs.append(UnOp(rem, "mov", work.amount, ValueType.I64))
    else:
        block.instrs.append(Const(rem, int(work.amount), ValueType.I64))
    block.instrs.append(Br(header.label))

    header.append(BinOp(cond, "gt", rem, 0, ValueType.I64))
    header.append(CBr(cond, body.label, cont.label))

    body.append(BinOp(chunk_var, "min", rem, chunk, ValueType.I64))
    body.append(
        Work(chunk_var, kind=work.kind, pages=work.pages, span=work.span)
    )
    body.append(MigPoint(point_id=_next_point_id(fn), origin="profiled"))
    body.append(BinOp(rem, "sub", rem, chunk_var, ValueType.I64))
    body.append(Br(header.label))

    cont.instrs = suffix


def insert_migration_points(
    module: Module,
    target_gap: int = DEFAULT_TARGET_GAP,
    profiled: bool = True,
) -> Dict[str, int]:
    """Run both insertion passes; returns counts by pass."""
    boundary = insert_boundary_points(module)
    profiled_count = (
        insert_profiled_points(module, target_gap) if profiled else 0
    )
    return {"boundary": boundary, "profiled": profiled_count}

"""Middle-end optimisation passes.

The paper's pipeline "runs standard compiler optimizations and several
custom passes over LLVM's intermediate representation" before the
per-ISA back-ends.  This module provides the standard-optimisation
stage for our IR:

* constant folding (arithmetic on literal operands),
* copy propagation (forward `mov`/`const` values within a block),
* dead code elimination (unused pure definitions),
* branch simplification (constant-condition CBr -> Br),
* unreachable block elimination.

Passes are semantics-preserving by construction and run to a fixed
point; the toolchain applies them at ``opt_level >= 1``.  Migration
safety is unaffected: passes run *before* migration-point insertion and
site-id assignment, exactly as in the paper's flow (Figure 2).
"""

from typing import Dict, List, Optional, Set, Union

from repro.ir.function import BasicBlock, Function, Module
from repro.ir.instructions import (
    AddrOf,
    BinOp,
    Br,
    CBr,
    Call,
    Const,
    InlineAsm,
    Load,
    MigPoint,
    Ret,
    StackAlloc,
    Store,
    Syscall,
    UnOp,
    Work,
)
# The interpreter uses the same tables, so folding and execution can
# never disagree about semantics.
from repro.ir.semantics import FLOAT_BIN as _FLOAT_BIN
from repro.ir.semantics import INT_BIN as _INT_BIN
from repro.ir.semantics import apply_unop as _apply_unop

# Instructions whose only effect is defining their destination.
_PURE = (Const, BinOp, UnOp, AddrOf)


def _fold_binop(instr: BinOp):
    if isinstance(instr.a, str) or isinstance(instr.b, str):
        return None
    ops = _FLOAT_BIN if instr.vt.is_float else _INT_BIN
    try:
        return ops[instr.op](instr.a, instr.b)
    except ZeroDivisionError:
        return None  # keep the trap behaviour at runtime


def _fold_unop(instr: UnOp):
    if isinstance(instr.a, str):
        return None
    try:
        return _apply_unop(instr.op, instr.a)
    except (ValueError, TypeError):
        return None


def constant_fold(fn: Function) -> int:
    """Replace constant-operand BinOp/UnOp with Const; returns count."""
    changed = 0
    for label in fn.block_order:
        block = fn.blocks[label]
        for i, instr in enumerate(block.instrs):
            value = None
            if isinstance(instr, BinOp):
                value = _fold_binop(instr)
            elif isinstance(instr, UnOp) and instr.op != "mov":
                value = _fold_unop(instr)
            if value is not None:
                block.instrs[i] = Const(instr.dst, value, instr.vt)
                changed += 1
    return changed


def copy_propagate(fn: Function) -> int:
    """Forward known constants/copies within each basic block."""
    changed = 0
    for label in fn.block_order:
        known: Dict[str, Union[int, float, str]] = {}
        block = fn.blocks[label]
        for instr in block.instrs:
            # Substitute known values into operand fields.
            for attr in ("a", "b", "addr", "src", "cond", "amount", "pages"):
                value = getattr(instr, attr, None)
                if isinstance(value, str) and value in known:
                    # Every operand slot accepts either a variable name
                    # or a literal, so substitution is always well-typed.
                    setattr(instr, attr, known[value])
                    changed += 1
            if hasattr(instr, "args"):
                new_args = []
                for arg in instr.args:
                    if isinstance(arg, str) and arg in known:
                        new_args.append(known[arg])
                        changed += 1
                    else:
                        new_args.append(arg)
                instr.args = new_args
            if hasattr(instr, "value") and isinstance(getattr(instr, "value"), str):
                if instr.value in known:
                    instr.value = known[instr.value]
                    changed += 1
            # Update the known map.
            defs = instr.defs()
            if isinstance(instr, Const):
                known[instr.dst] = instr.value
            elif isinstance(instr, UnOp) and instr.op == "mov":
                source = instr.a
                known[instr.dst] = known.get(source, source) if isinstance(
                    source, str
                ) else source
            else:
                for d in defs:
                    known.pop(d, None)
            # A definition invalidates any mapping THROUGH the defined
            # name (x -> y where y just changed).
            for d in defs:
                stale = [k for k, v in known.items() if v == d and k != d]
                for k in stale:
                    del known[k]
    return changed


def eliminate_dead_code(fn: Function) -> int:
    """Drop pure definitions whose destination is never read.

    Iterates to a local fixed point: removing one dead definition can
    make its operands' definitions dead in turn.
    """
    from repro.ir.analysis import liveness

    total = 0
    while True:
        live = liveness(fn)
        changed = 0
        for label in fn.block_order:
            block = fn.blocks[label]
            kept: List = []
            for i, instr in enumerate(block.instrs):
                if (
                    isinstance(instr, _PURE)
                    and instr.dst not in live.live_after[(label, i)]
                    and instr.dst not in fn.address_taken
                ):
                    changed += 1
                    continue
                kept.append(instr)
            block.instrs = kept
        total += changed
        if changed == 0:
            return total


def simplify_branches(fn: Function) -> int:
    """CBr on a constant condition becomes an unconditional Br."""
    changed = 0
    for label in fn.block_order:
        block = fn.blocks[label]
        if not block.instrs:
            continue
        term = block.instrs[-1]
        if isinstance(term, CBr) and not isinstance(term.cond, str):
            target = term.if_true if term.cond else term.if_false
            block.instrs[-1] = Br(target)
            changed += 1
    return changed


def remove_unreachable_blocks(fn: Function) -> int:
    """Drop blocks no path from the entry reaches."""
    reachable: Set[str] = set()
    stack = [fn.entry]
    while stack:
        label = stack.pop()
        if label in reachable:
            continue
        reachable.add(label)
        stack.extend(fn.blocks[label].successors())
    doomed = [label for label in fn.block_order if label not in reachable]
    for label in doomed:
        del fn.blocks[label]
        fn.block_order.remove(label)
    return len(doomed)


def optimize_function(fn: Function, max_iterations: int = 10) -> Dict[str, int]:
    """Run all passes to a fixed point; returns per-pass change counts."""
    totals = {
        "constant_fold": 0,
        "copy_propagate": 0,
        "dead_code": 0,
        "branches": 0,
        "unreachable": 0,
    }
    for _ in range(max_iterations):
        round_changes = 0
        for name, pass_fn in (
            ("copy_propagate", copy_propagate),
            ("constant_fold", constant_fold),
            ("branches", simplify_branches),
            ("unreachable", remove_unreachable_blocks),
            ("dead_code", eliminate_dead_code),
        ):
            n = pass_fn(fn)
            totals[name] += n
            round_changes += n
        if round_changes == 0:
            break
    return totals


def optimize_module(module: Module) -> Dict[str, int]:
    """Optimise every function; returns aggregated change counts."""
    totals: Dict[str, int] = {}
    for fn in module.functions.values():
        for name, count in optimize_function(fn).items():
            totals[name] = totals.get(name, 0) + count
    return totals

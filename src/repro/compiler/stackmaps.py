"""Live-value stackmaps.

For every call site (ordinary calls, syscalls, and the migration-point
call-outs) the compiler records where each live local lives in that
ISA's machine code.  The stack transformation runtime joins the source
and destination ISA's maps on the shared ``site_id`` to copy values
between ABIs — this is the paper's "live value location information
generated after register allocation".
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.compiler.frame import Location
from repro.isa.types import ValueType


@dataclass(frozen=True)
class StackMapEntry:
    """One live value at one site: name, type, and machine location."""

    var: str
    vt: ValueType
    location: Location
    # True when the value is a pointer that may target the stack and
    # therefore needs fix-up during transformation.
    maybe_stack_pointer: bool = False


@dataclass
class StackMap:
    """All live values at one call site on one ISA."""

    site_id: int
    function: str
    block: str
    index: int
    entries: List[StackMapEntry] = field(default_factory=list)

    def entry_for(self, var: str) -> Optional[StackMapEntry]:
        for entry in self.entries:
            if entry.var == var:
                return entry
        return None

    @property
    def live_vars(self) -> List[str]:
        return [e.var for e in self.entries]

    def __len__(self) -> int:
        return len(self.entries)


def join_stackmaps(src: StackMap, dst: StackMap) -> List[tuple]:
    """Pair up (src_entry, dst_entry) for the variables live at a site.

    The two maps come from different ISAs but the same IR, so the live
    sets agree; a mismatch indicates a toolchain bug and raises.
    """
    src_by_var = {e.var: e for e in src.entries}
    dst_by_var = {e.var: e for e in dst.entries}
    if set(src_by_var) != set(dst_by_var):
        only_src = set(src_by_var) - set(dst_by_var)
        only_dst = set(dst_by_var) - set(src_by_var)
        raise ValueError(
            f"stackmap live-set mismatch at site {src.site_id} in "
            f"{src.function}: src-only={sorted(only_src)}, "
            f"dst-only={sorted(only_dst)}"
        )
    return [(src_by_var[v], dst_by_var[v]) for v in sorted(src_by_var)]

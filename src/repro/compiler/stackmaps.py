"""Live-value stackmaps.

For every call site (ordinary calls, syscalls, and the migration-point
call-outs) the compiler records where each live local lives in that
ISA's machine code.  The stack transformation runtime joins the source
and destination ISA's maps on the shared ``site_id`` to copy values
between ABIs — this is the paper's "live value location information
generated after register allocation".
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.compiler.frame import Location
from repro.isa.types import ValueType


@dataclass(frozen=True)
class StackMapEntry:
    """One live value at one site: name, type, and machine location."""

    var: str
    vt: ValueType
    location: Location
    # True when the value is a pointer that may target the stack and
    # therefore needs fix-up during transformation.
    maybe_stack_pointer: bool = False


@dataclass
class StackMap:
    """All live values at one call site on one ISA."""

    site_id: int
    function: str
    block: str
    index: int
    entries: List[StackMapEntry] = field(default_factory=list)
    # Lazily built var -> entry index; rebuilt whenever the entry count
    # changes, so the usual mutation (re-assigning ``entries``) stays
    # safe without an explicit invalidation call.
    _by_var: Optional[Dict[str, StackMapEntry]] = field(
        default=None, init=False, repr=False, compare=False
    )

    def index_by_var(self) -> Dict[str, StackMapEntry]:
        """The var -> entry index, built on first use and cached."""
        by_var = self._by_var
        if by_var is None or len(by_var) != len(self.entries):
            by_var = {e.var: e for e in self.entries}
            self._by_var = by_var
        return by_var

    def entry_for(self, var: str) -> Optional[StackMapEntry]:
        return self.index_by_var().get(var)

    @property
    def live_vars(self) -> List[str]:
        return [e.var for e in self.entries]

    def __len__(self) -> int:
        return len(self.entries)


def join_stackmaps(src: StackMap, dst: StackMap) -> List[tuple]:
    """Pair up (src_entry, dst_entry) for the variables live at a site.

    The two maps come from different ISAs but the same IR, so the live
    sets agree; a mismatch indicates a toolchain bug and raises.  Uses
    the cached per-map indexes — the stack transformation runtime joins
    every frame's maps on migration, so this is a hot path.
    """
    src_by_var = src.index_by_var()
    dst_by_var = dst.index_by_var()
    if src_by_var.keys() != dst_by_var.keys():
        only_src = set(src_by_var) - set(dst_by_var)
        only_dst = set(dst_by_var) - set(src_by_var)
        raise ValueError(
            f"stackmap live-set mismatch at site {src.site_id} in "
            f"{src.function}: src-only={sorted(only_src)}, "
            f"dst-only={sorted(only_dst)}"
        )
    return [(src_by_var[v], dst_by_var[v]) for v in sorted(src_by_var)]

"""DWARF-like frame unwind metadata.

The transformation runtime walks the source stack frame-by-frame; for
each function it needs the frame size, where the caller's frame pointer
and return address were saved, and the callee-saved register save
procedure (register -> save-slot depth).  This is the per-architecture,
per-function "DWARF frame unwinding information" of Section 5.3.
"""

from dataclasses import dataclass, field
from typing import Dict

from repro.compiler.frame import FrameLayout


@dataclass(frozen=True)
class UnwindInfo:
    """Unwind rules for one function on one ISA."""

    function: str
    isa_name: str
    frame_size: int
    return_addr_depth: int  # 0 when the return address travels in LR
    saved_fp_depth: int
    saved_lr_depth: int
    saved_reg_depths: Dict[str, int] = field(default_factory=dict)

    @staticmethod
    def from_layout(function: str, layout: FrameLayout) -> "UnwindInfo":
        return UnwindInfo(
            function=function,
            isa_name=layout.isa_name,
            frame_size=layout.frame_size,
            return_addr_depth=layout.return_addr_depth,
            saved_fp_depth=layout.saved_fp_depth,
            saved_lr_depth=layout.saved_lr_depth,
            saved_reg_depths=dict(layout.saved_reg_depths),
        )

    def caller_cfa(self, callee_cfa: int) -> int:
        """CFA of this function's frame when it is the *caller*.

        With a downward-growing stack a function's CFA sits
        ``frame_size`` bytes above the stack pointer it runs with (which
        becomes the callee's CFA), so the stack walker computes
        ``callee_cfa + caller.frame_size`` using the caller's record.
        """
        return callee_cfa + self.frame_size

    def saves_register(self, reg: str) -> bool:
        return reg in self.saved_reg_depths

"""Register allocation.

A deliberately simple allocator that still produces the asymmetries the
paper's runtime has to cope with:

* locals live across a call or migration point may only use
  *callee-saved* registers — of which ARM64 has ten GPRs plus eight
  FPRs, while SysV x86-64 has five GPRs and **zero** FPRs, so the same
  function keeps FP state in registers on ARM and spills it on x86;
* address-taken locals and allocas are pinned to memory;
* everything that does not fit spills to a frame slot.

Allocation is per-function and static (one location per local for the
whole function), which keeps stackmaps exact and the transformation
runtime honest.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.ir.analysis import liveness
from repro.ir.function import Function
from repro.isa.isa import Isa
from repro.isa.registers import RegKind
from repro.isa.types import ValueType


@dataclass
class AllocationResult:
    """Outcome of register allocation for one function on one ISA."""

    # var -> register name (only register-resident vars appear here).
    reg_assignment: Dict[str, str] = field(default_factory=dict)
    # Locals that need a frame slot, in deterministic layout order.
    memory_locals: List[str] = field(default_factory=list)
    # Callee-saved registers clobbered by this function (need saving).
    clobbered_callee_saved: List[str] = field(default_factory=list)

    def location_kind(self, var: str) -> str:
        return "reg" if var in self.reg_assignment else "slot"


def _is_float(fn: Function, var: str) -> bool:
    return fn.var_types[var].is_float


def allocate_registers(fn: Function, isa: Isa) -> AllocationResult:
    """Assign every local of ``fn`` a register or a frame slot on ``isa``."""
    live = liveness(fn)
    across_calls = live.live_across_calls(fn)
    pinned: Set[str] = set(fn.address_taken)

    result = AllocationResult()

    callee_gprs = [r.name for r in isa.regfile.callee_saved(RegKind.GPR)]
    callee_fprs = [r.name for r in isa.regfile.callee_saved(RegKind.FPR)]
    caller_gprs = [r.name for r in isa.regfile.caller_saved(RegKind.GPR)]
    caller_fprs = [r.name for r in isa.regfile.caller_saved(RegKind.FPR)]
    # Reserve a couple of caller-saved scratch registers for codegen
    # (address computation, immediates) so they never hold locals.
    caller_gprs = caller_gprs[2:]
    caller_fprs = caller_fprs[2:]

    # Deterministic order: params first, then locals by first appearance.
    ordered = [name for name, _ in fn.params]
    seen = set(ordered)
    for _, _, instr in fn.instructions():
        for var in list(instr.defs()) + list(instr.uses()):
            if var not in seen:
                seen.add(var)
                ordered.append(var)
    for var in fn.var_types:
        if var not in seen:
            ordered.append(var)
            seen.add(var)

    free_callee = {RegKind.GPR: list(callee_gprs), RegKind.FPR: list(callee_fprs)}
    free_caller = {RegKind.GPR: list(caller_gprs), RegKind.FPR: list(caller_fprs)}

    for var in ordered:
        if var in pinned:
            result.memory_locals.append(var)
            continue
        kind = RegKind.FPR if _is_float(fn, var) else RegKind.GPR
        if var in across_calls:
            pool = free_callee[kind]
            if pool:
                reg = pool.pop(0)
                result.reg_assignment[var] = reg
                result.clobbered_callee_saved.append(reg)
            else:
                result.memory_locals.append(var)
        else:
            pool = free_caller[kind]
            if pool:
                result.reg_assignment[var] = pool.pop(0)
            else:
                # Fall back to remaining callee-saved, then to memory.
                pool = free_callee[kind]
                if pool:
                    reg = pool.pop(0)
                    result.reg_assignment[var] = reg
                    result.clobbered_callee_saved.append(reg)
                else:
                    result.memory_locals.append(var)

    return result

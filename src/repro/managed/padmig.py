"""The PadMig execution model.

PadMig (Gehweiler & Thies) migrates a running Java application by
serialising its reachable object graph, shipping it over the network,
and deserialising on the destination JVM — during which the application
makes no progress.  :class:`PadMigRuntime` simulates that timeline on a
:class:`~repro.kernel.kernel.PopcornSystem`, driving the machines' load
counters so the power recorder captures Figure 11-style traces.

Managed execution itself runs at ``java_slowdown`` relative to the
native binary (interpreter/JIT + bounds checks + GC), defaulting to the
~2x the paper observed for NPB IS (23 s vs 11 s end-to-end).
"""

from dataclasses import dataclass, field
from typing import List, Optional

from repro.managed.objects import ObjectGraph
from repro.managed.serializer import ReflectionSerializer, SerializationResult

DEFAULT_JAVA_SLOWDOWN = 2.0


@dataclass
class PadMigPhase:
    name: str  # 'compute' | 'serialize' | 'transfer' | 'deserialize'
    machine: str
    start: float
    seconds: float

    @property
    def end(self) -> float:
        return self.start + self.seconds


@dataclass
class PadMigRun:
    phases: List[PadMigPhase] = field(default_factory=list)
    payload_bytes: int = 0
    objects: int = 0

    @property
    def total_seconds(self) -> float:
        return self.phases[-1].end - self.phases[0].start if self.phases else 0.0

    def migration_blackout_seconds(self) -> float:
        """Time the application makes no progress (serialise->deserialise)."""
        return sum(
            p.seconds
            for p in self.phases
            if p.name in ("serialize", "transfer", "deserialize")
        )

    def phase(self, name: str) -> PadMigPhase:
        for p in self.phases:
            if p.name == name:
                return p
        raise KeyError(name)


class PadMigRuntime:
    """Simulates PadMig migrations on the testbed."""

    def __init__(
        self,
        system,
        serializer: Optional[ReflectionSerializer] = None,
        java_slowdown: float = DEFAULT_JAVA_SLOWDOWN,
        tracer=None,
    ):
        self.system = system
        self.serializer = serializer or ReflectionSerializer()
        self.java_slowdown = java_slowdown
        # Inherit the hosting system's tracer (clock already bound), so
        # PadMig timelines land on the same trace as everything else.
        self.tracer = tracer if tracer is not None else getattr(
            system, "tracer", None
        )

    def _busy(self, machine_name: str, seconds: float, sampler=None) -> None:
        """Advance time with one core of ``machine_name`` busy."""
        machine = self.system.machines[machine_name]
        machine.thread_started()
        self._advance(seconds, sampler)
        machine.thread_stopped()

    def _advance(self, seconds: float, sampler=None) -> None:
        clock = self.system.clock
        clock.advance_by(seconds)
        if sampler is not None:
            sampler.sample_until(clock.now)

    def run_with_migration(
        self,
        graph: ObjectGraph,
        src_machine: str,
        dst_machine: str,
        native_compute_before_s: float,
        native_compute_after_s: float,
        dst_native_ratio: float = 1.0,
        sampler=None,
    ) -> PadMigRun:
        """Execute compute -> serialise -> transfer -> deserialise -> compute.

        ``native_compute_*`` are the native-binary durations of each
        half; managed execution multiplies them by ``java_slowdown``,
        and the destination half additionally by ``dst_native_ratio``
        (the destination machine's native slowdown for this code).
        """
        run = PadMigRun()
        clock = self.system.clock
        phases = run.phases

        before = native_compute_before_s * self.java_slowdown
        phases.append(PadMigPhase("compute", src_machine, clock.now, before))
        self._busy(src_machine, before, sampler)

        ser = self.serializer.serialize(graph, self.system.machines[src_machine])
        run.payload_bytes = ser.payload_bytes
        run.objects = ser.objects
        phases.append(PadMigPhase("serialize", src_machine, clock.now, ser.seconds))
        self._busy(src_machine, ser.seconds, sampler)

        transfer = self.system.messaging.interconnect.transfer_time(
            ser.payload_bytes
        )
        self.system.machines[src_machine].note_io_activity(transfer)
        self.system.machines[dst_machine].note_io_activity(transfer)
        phases.append(PadMigPhase("transfer", src_machine, clock.now, transfer))
        self._advance(transfer, sampler)

        deser = self.serializer.deserialize(
            ser, self.system.machines[dst_machine]
        )
        phases.append(
            PadMigPhase("deserialize", dst_machine, clock.now, deser.seconds)
        )
        self._busy(dst_machine, deser.seconds, sampler)

        after = (
            native_compute_after_s * self.java_slowdown * dst_native_ratio
        )
        phases.append(PadMigPhase("compute", dst_machine, clock.now, after))
        self._busy(dst_machine, after, sampler)

        if self.tracer is not None:
            self._emit_spans(run, src_machine, dst_machine)
        return run

    def _emit_spans(self, run: PadMigRun, src_machine: str, dst_machine: str) -> None:
        """One ``managed.run`` span with a child per PadMig phase."""
        tracer = self.tracer
        first = run.phases[0]
        parent = tracer.complete(
            "managed.run", "managed", first.start, run.total_seconds,
            track=src_machine, src=src_machine, dst=dst_machine,
            payload_bytes=run.payload_bytes, objects=run.objects,
            blackout_s=round(run.migration_blackout_seconds(), 9),
        )
        for phase in run.phases:
            tracer.complete(
                f"managed.{phase.name}", "managed", phase.start,
                phase.seconds, track=phase.machine, parent=parent,
            )
        tracer.metrics.counter("managed.migrations").inc()
        tracer.metrics.counter("managed.payload_bytes").inc(run.payload_bytes)
        tracer.metrics.histogram("managed.blackout_s").observe(
            run.migration_blackout_seconds()
        )

"""Reflection-based serialisation (the PadMig/JnJVM mechanism).

Java reflective serialisation is slow for two reasons the model keeps
separate: a *per-object* reflective overhead (field discovery, boxing,
identity-hash bookkeeping) and a *per-byte* encode cost.  The inverse
applies on deserialisation, which is typically slower still (object
allocation + constructor paths).

Throughputs are calibrated so the Figure 11 PadMig run spends ~8 s
serialising + deserialising an NPB IS class-B heap, as measured in the
paper.
"""

from dataclasses import dataclass

from repro.machine.machine import Machine
from repro.managed.objects import ObjectGraph


@dataclass(frozen=True)
class SerializationResult:
    objects: int
    payload_bytes: int
    seconds: float


@dataclass(frozen=True)
class ReflectionSerializer:
    """Cost model for one direction of the serialise/deserialise pair."""

    # Reflective walk: objects per second per GHz of host clock.
    objects_per_s_per_ghz: float = 450_000.0
    # Payload encode/decode bandwidth per GHz (bytes/s) — reflective
    # Java serialisation streams tens of MB/s, not memory bandwidth.
    bytes_per_s_per_ghz: float = 30e6
    # Deserialisation penalty (allocation + constructors).
    deserialize_factor: float = 1.6

    def _ghz(self, machine: Machine) -> float:
        return machine.cpu.freq_hz / 1e9

    def serialize(self, graph: ObjectGraph, machine: Machine) -> SerializationResult:
        objects = graph.object_count()
        payload = graph.total_bytes()
        ghz = self._ghz(machine)
        seconds = objects / (self.objects_per_s_per_ghz * ghz) + payload / (
            self.bytes_per_s_per_ghz * ghz
        )
        # An ARM-class core is slower per clock at pointer chasing.
        if machine.isa.name == "arm64":
            seconds *= 1.9
        return SerializationResult(objects, payload, seconds)

    def deserialize(
        self, result: SerializationResult, machine: Machine
    ) -> SerializationResult:
        ghz = self._ghz(machine)
        seconds = (
            result.objects / (self.objects_per_s_per_ghz * ghz)
            + result.payload_bytes / (self.bytes_per_s_per_ghz * ghz)
        ) * self.deserialize_factor
        if machine.isa.name == "arm64":
            seconds *= 1.9
        return SerializationResult(result.objects, result.payload_bytes, seconds)

"""Managed object graphs.

A minimal Java-like heap: objects with typed fields, primitive arrays,
and references.  Enough structure for the serialiser to do a real graph
walk (cycles included) with realistic byte counts.
"""

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Union

PRIMITIVE_BYTES = {"int": 4, "long": 8, "float": 4, "double": 8, "boolean": 1}
OBJECT_HEADER_BYTES = 16
ARRAY_HEADER_BYTES = 24
REFERENCE_BYTES = 8


class ManagedObject:
    """One heap object: named primitive fields + named references."""

    _ids = itertools.count(1)

    def __init__(self, class_name: str):
        self.object_id = next(self._ids)
        self.class_name = class_name
        self.fields: Dict[str, tuple] = {}  # name -> (prim_type, value)
        self.refs: Dict[str, Optional["ManagedObject"]] = {}

    def set_field(self, name: str, prim_type: str, value) -> None:
        if prim_type not in PRIMITIVE_BYTES:
            raise ValueError(f"unknown primitive {prim_type}")
        self.fields[name] = (prim_type, value)

    def set_ref(self, name: str, target) -> None:
        self.refs[name] = target

    @property
    def shallow_bytes(self) -> int:
        prim = sum(PRIMITIVE_BYTES[t] for t, _ in self.fields.values())
        return OBJECT_HEADER_BYTES + prim + REFERENCE_BYTES * len(self.refs)

    def __repr__(self) -> str:
        return f"ManagedObject({self.class_name}#{self.object_id})"


class ManagedArray(ManagedObject):
    """A primitive array."""

    def __init__(self, element_type: str, values: List):
        super().__init__(f"{element_type}[]")
        self.element_type = element_type
        self.values = list(values)

    @property
    def shallow_bytes(self) -> int:
        return ARRAY_HEADER_BYTES + PRIMITIVE_BYTES[self.element_type] * len(
            self.values
        )

    def __repr__(self) -> str:
        return f"ManagedArray({self.element_type}[{len(self.values)}])"


class ObjectGraph:
    """A rooted object graph (what PadMig serialises on migration)."""

    def __init__(self, roots: List[ManagedObject]):
        self.roots = list(roots)

    def reachable(self) -> Iterator[ManagedObject]:
        """Depth-first walk, each object once (handles cycles)."""
        seen: Set[int] = set()
        stack = list(self.roots)
        while stack:
            obj = stack.pop()
            if obj is None or obj.object_id in seen:
                continue
            seen.add(obj.object_id)
            yield obj
            stack.extend(t for t in obj.refs.values() if t is not None)

    def object_count(self) -> int:
        return sum(1 for _ in self.reachable())

    def total_bytes(self) -> int:
        return sum(obj.shallow_bytes for obj in self.reachable())

"""Managed-language migration baseline (PadMig, Section 6/7).

PadMig migrates Java applications between heterogeneous-ISA machines by
reflectively serialising the object graph, shipping it, and
deserialising on the other side.  This package models that pipeline —
object graphs, a reflection-based serialiser with realistic
throughputs, and a runtime that executes workloads at managed-language
speed — to reproduce the Figure 11 comparison (23 s Java vs 11 s
native for NPB IS B serial).
"""

from repro.managed.objects import ManagedArray, ManagedObject, ObjectGraph
from repro.managed.serializer import ReflectionSerializer, SerializationResult
from repro.managed.padmig import PadMigRuntime, PadMigPhase, PadMigRun

__all__ = [
    "ManagedObject",
    "ManagedArray",
    "ObjectGraph",
    "ReflectionSerializer",
    "SerializationResult",
    "PadMigRuntime",
    "PadMigPhase",
    "PadMigRun",
]

"""Diagnostic model for the migration-safety static analyzer.

Every finding is a :class:`Diagnostic` with a stable ``MIG0xx`` code, a
severity, and enough location detail (ISA, function, site, symbol) to
fingerprint it for baseline suppression.  The codes are the contract
between the lint passes, the reporters, ``docs/lint.md`` and the CI
baseline; never renumber an existing code.
"""

import enum
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional


class Severity(enum.Enum):
    """How bad a diagnostic is.

    ``ERROR`` means a migration attempted through the flagged artifact
    would lose or corrupt state; ``WARNING`` means wasted work or a
    responsiveness hazard; ``INFO`` is a migratability note.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    def __str__(self) -> str:
        return self.value


# Stable code registry: code -> one-line contract it enforces.  The
# long-form reference (one paragraph per code, with the paper contract)
# lives in docs/lint.md; tests assert the two stay in sync.
DIAGNOSTIC_CODES: Dict[str, str] = {
    "MIG001": "IR module is structurally invalid (repro.ir.validate)",
    "MIG002": "function is unmigratable (library / inline asm) and is "
              "skipped by migration-safety passes",
    "MIG010": "live variable missing from an emitted stackmap",
    "MIG011": "dead variable recorded in a stackmap (wasted transform work)",
    "MIG012": "stackmap live sets or value types differ across ISAs at a "
              "shared site",
    "MIG013": "call site without a stackmap, or stackmap for a site that "
              "does not exist",
    "MIG014": "stackmap location contradicts register allocation or frame "
              "layout",
    "MIG015": "pointer-typed stackmap entry not flagged for stack-pointer "
              "fix-up",
    "MIG020": "clobbered callee-saved register has no recorded save slot",
    "MIG021": "save slot recorded for a register the function never "
              "clobbers, or for a caller-saved register",
    "MIG022": "CFA not derivable: frame size, alignment, anchor depths or "
              "slot placement invalid",
    "MIG023": "unwind metadata disagrees with the frame layout it was "
              "derived from",
    "MIG030": "symbol virtual address diverges across ISAs or from the "
              "common layout",
    "MIG031": "TLS layout not identical across ISAs or not variant-2 "
              "canonical",
    "MIG032": "symbols overlap in the common address-space layout",
    "MIG033": "symbol misaligned or section overflows into the next "
              "region of the VM map",
    "MIG034": ".text alias padding smaller than an ISA's code size",
    "MIG040": "point-free path exceeds the migration responsiveness "
              "target gap",
    "MIG041": "loop executes a work burst with no migration point on the "
              "cycle",
    "MIG042": "loop has no migration point (statically unbounded "
              "repetition)",
    "MIG050": "stack address flows into a heap or global store the "
              "pointer fix-up cannot track",
    "MIG051": "stack-derived value of non-pointer type live across a "
              "migration site (fix-up blind spot)",
    "RACE001": "conflicting accesses with no common lock and no "
               "happens-before edge (racy on any memory model)",
    "RACE002": "store-then-flag publication without a barrier: "
               "race-free under x86-TSO, racy under ARM after a "
               "migration",
    "RACE050": "cycle in the static lock-acquisition order "
               "(deadlock risk)",
    "RACE051": "mutex held across a blocking synchronisation "
               "operation (barrier_wait/join/cond_wait)",
    "SHR001": "region is concurrently write-shared: its DSM pages "
              "ping-pong between kernels",
    "SHR002": "region is shared but all conflicting accesses are "
              "happens-before ordered (pages migrate, never "
              "concurrently)",
    "SHR003": "thread partition stride below the DSM page size "
              "(predicted false sharing)",
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one lint pass."""

    code: str
    severity: Severity
    message: str
    pass_name: str = ""
    isa: str = ""        # empty for ISA-independent findings
    function: str = ""
    site: Optional[int] = None
    symbol: str = ""

    def __post_init__(self):
        if self.code not in DIAGNOSTIC_CODES:
            raise ValueError(f"unregistered diagnostic code {self.code}")

    @property
    def fingerprint(self) -> str:
        """Stable identity for baseline suppression (message excluded —
        wording may improve without re-triaging)."""
        site = "" if self.site is None else str(self.site)
        return "|".join(
            (self.code, self.isa, self.function, site, self.symbol)
        )

    def format(self) -> str:
        where = [p for p in (self.isa, self.function) if p]
        if self.site is not None:
            where.append(f"site {self.site}")
        if self.symbol:
            where.append(self.symbol)
        location = ":".join(where) or "<module>"
        return (
            f"{self.code} {self.severity.value:<7} [{location}] {self.message}"
        )

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.format()


class LintReport:
    """Accumulates diagnostics and per-pass check counts for one lint."""

    def __init__(self, subject: str = ""):
        self.subject = subject
        self.diagnostics: List[Diagnostic] = []
        self.pass_checks: Counter = Counter()
        self.suppressed: List[Diagnostic] = []

    # ------------------------------------------------------- recording

    def add(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    def emit(self, code: str, severity: Severity, message: str, **where) -> None:
        self.add(Diagnostic(code=code, severity=severity, message=message, **where))

    def note_checks(self, pass_name: str, count: int = 1) -> None:
        """Record that ``pass_name`` performed ``count`` checks — the
        evidence a clean report means 'verified', not 'skipped'."""
        self.pass_checks[pass_name] += count

    # --------------------------------------------------------- queries

    def by_severity(self, severity: Severity) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is severity]

    @property
    def errors(self) -> List[Diagnostic]:
        return self.by_severity(Severity.ERROR)

    @property
    def error_count(self) -> int:
        return len(self.errors)

    def counts_by_code(self) -> Dict[str, int]:
        return dict(Counter(d.code for d in self.diagnostics))

    def counts_by_severity(self) -> Dict[str, int]:
        counts = Counter(d.severity.value for d in self.diagnostics)
        return {sev.value: counts.get(sev.value, 0) for sev in Severity}

    def total_checks(self) -> int:
        return sum(self.pass_checks.values())

    def apply_baseline(self, baseline) -> None:
        """Move baseline-suppressed diagnostics out of the active list."""
        keep: List[Diagnostic] = []
        for diag in self.diagnostics:
            if baseline.suppresses(diag):
                self.suppressed.append(diag)
            else:
                keep.append(diag)
        self.diagnostics = keep

    def summary(self) -> str:
        from repro.render import counter_digest

        sev = self.counts_by_severity()
        passes = counter_digest(self.pass_checks, empty="")
        head = (
            f"{len(self.diagnostics)} diagnostics "
            f"({sev['error']} errors, {sev['warning']} warnings, "
            f"{sev['info']} info)"
        )
        if self.suppressed:
            head += f", {len(self.suppressed)} baseline-suppressed"
        return f"{head}; {self.total_checks()} checks ({passes or 'none'})"

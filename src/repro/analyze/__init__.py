"""Migration-safety static analyzer (``repro lint``).

The runtime checkers in :mod:`repro.validate` only catch a toolchain
bug when a test happens to execute the broken site.  This package
verifies the paper's correctness contracts *statically*, on the
compiled :class:`~repro.compiler.toolchain.MultiIsaBinary`, for every
workload in the registry:

* **stackmap** — recomputed dataflow liveness must equal the emitted
  stackmaps at every call site, on every ISA, with cross-ISA live-set
  and type equivalence per ``site_id``;
* **unwind** — every clobbered callee-saved register has a save slot
  and the CFA chain is derivable from the unwind metadata alone;
* **layout** — one common address-space layout: identical symbol
  addresses, sufficient ``.text`` alias padding, TLS equality, no
  overlaps;
* **coverage** — a static bound on the longest migration-point-free
  path per function against the ~50M-instruction responsiveness
  target;
* **escape** — stack addresses that flow where the pointer fix-up
  cannot follow;
* **ir** — :mod:`repro.ir.validate` problems surfaced as ``MIG001``
  diagnostics, all at once;
* **races** — conflicting access pairs with no common lock and no
  static happens-before edge (``RACE001``), with the TSO-safe but
  ARM-unsafe store→flag publication idiom split out at warning
  severity (``RACE002``);
* **locks** — cycles in the static lock-acquisition order
  (``RACE050``) and mutexes held across blocking operations
  (``RACE051``);
* **sharing** — DSM page-sharing predictions per region
  (``SHR001``-``SHR003``), cross-validated dynamically by
  :mod:`repro.validate.race_checker`.

Diagnostics carry stable ``MIG0xx``/``RACE0xx``/``SHR0xx`` codes
(reference: ``docs/lint.md``)
with error/warning/info severities, render as text or JSON, and can be
suppressed through a checked-in baseline file.  Opt into fail-on-error
linting at link time with ``Toolchain(lint=True)``, or run
``python -m repro lint --all`` over the whole registry.
"""

from repro.analyze.baseline import DEFAULT_BASELINE_PATH, Baseline
from repro.analyze.diagnostics import (
    DIAGNOSTIC_CODES,
    Diagnostic,
    LintReport,
    Severity,
)
from repro.analyze.driver import (
    LINT_PASSES,
    LintContext,
    LintError,
    LintPass,
    pass_names,
    run_lint,
)
from repro.analyze.concurrency import ConcurrencyModel, get_model
from repro.analyze.report import render_json, render_text, report_to_dict
from repro.analyze.sharing import RegionPrediction, predict_sharing

__all__ = [
    "Baseline",
    "ConcurrencyModel",
    "DEFAULT_BASELINE_PATH",
    "DIAGNOSTIC_CODES",
    "Diagnostic",
    "LintContext",
    "LintError",
    "LintPass",
    "LINT_PASSES",
    "LintReport",
    "RegionPrediction",
    "Severity",
    "get_model",
    "pass_names",
    "predict_sharing",
    "render_json",
    "render_text",
    "report_to_dict",
    "run_lint",
]

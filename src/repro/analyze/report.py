"""Text and JSON reporters for lint reports."""

import json
from typing import Dict, List, Optional

from repro.analyze.diagnostics import Diagnostic, LintReport, Severity

_SEVERITY_ORDER = {Severity.ERROR: 0, Severity.WARNING: 1, Severity.INFO: 2}


def _sorted(diagnostics: List[Diagnostic]) -> List[Diagnostic]:
    return sorted(
        diagnostics,
        key=lambda d: (_SEVERITY_ORDER[d.severity], d.code, d.isa,
                       d.function, d.site if d.site is not None else -1,
                       d.symbol),
    )


def render_text(report: LintReport, verbose: bool = False) -> str:
    """Human-readable listing: errors first, then the summary line.

    ``verbose`` includes info-severity notes (skipped functions,
    unbounded loops without work) that are normally elided.
    """
    lines: List[str] = []
    title = f"lint {report.subject}" if report.subject else "lint"
    lines.append(f"== {title} ==")
    shown = 0
    for diag in _sorted(report.diagnostics):
        if diag.severity is Severity.INFO and not verbose:
            continue
        lines.append("  " + diag.format())
        shown += 1
    hidden = len(report.diagnostics) - shown
    if hidden:
        lines.append(f"  ... {hidden} info note(s) hidden (use --verbose)")
    lines.append("  " + report.summary())
    return "\n".join(lines)


def report_to_dict(report: LintReport) -> Dict:
    """JSON-ready representation, stable enough to diff in CI."""
    return {
        "subject": report.subject,
        "diagnostics": [
            {
                "code": d.code,
                "severity": d.severity.value,
                "pass": d.pass_name,
                "isa": d.isa,
                "function": d.function,
                "site": d.site,
                "symbol": d.symbol,
                "message": d.message,
                "fingerprint": d.fingerprint,
            }
            for d in _sorted(report.diagnostics)
        ],
        "suppressed": [d.fingerprint for d in _sorted(report.suppressed)],
        "summary": {
            "severities": report.counts_by_severity(),
            "by_code": report.counts_by_code(),
            "pass_checks": dict(report.pass_checks),
            "total_checks": report.total_checks(),
        },
    }


def render_json(
    reports, indent: Optional[int] = 2
) -> str:
    """Serialise one report or a list of reports."""
    if isinstance(reports, LintReport):
        payload = report_to_dict(reports)
    else:
        payload = [report_to_dict(r) for r in reports]
    return json.dumps(payload, indent=indent, sort_keys=True)

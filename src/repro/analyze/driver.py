"""The lint pass manager.

A :class:`LintPass` is a named check over a :class:`LintContext`; the
driver runs every applicable pass and collects one
:class:`~repro.analyze.diagnostics.LintReport`.  Passes that need a
linked binary are skipped (not failed) when linting a bare IR module,
so ``repro lint`` can still report ``MIG001`` structural problems for
modules the toolchain would refuse to build.
"""

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.analyze.binary_checks import (
    run_layout_lint,
    run_migration_coverage,
    run_stackmap_soundness,
    run_unwind_consistency,
)
from repro.analyze.diagnostics import LintReport
from repro.analyze.ir_checks import run_ir_validity, run_stack_escape
from repro.analyze.locks import run_locks
from repro.analyze.races import run_races
from repro.analyze.sharing import run_sharing
from repro.compiler.migration_points import DEFAULT_TARGET_GAP


@dataclass
class LintContext:
    """Everything a pass may inspect."""

    module: object                      # repro.ir.function.Module
    binary: Optional[object] = None     # repro.compiler.toolchain.MultiIsaBinary
    target_gap: int = DEFAULT_TARGET_GAP
    point_mode: str = "profiled"


@dataclass(frozen=True)
class LintPass:
    """One registered analysis pass."""

    name: str
    run: Callable[[LintContext, LintReport], None]
    needs_binary: bool = True
    description: str = ""


LINT_PASSES: List[LintPass] = [
    LintPass("ir", run_ir_validity, needs_binary=False,
             description="IR structural validity (MIG001)"),
    LintPass("escape", run_stack_escape, needs_binary=False,
             description="stack-pointer escape (MIG050/MIG051)"),
    LintPass("races", run_races, needs_binary=False,
             description="static data races (RACE001/RACE002)"),
    LintPass("locks", run_locks, needs_binary=False,
             description="lock order / blocking (RACE050/RACE051)"),
    LintPass("sharing", run_sharing, needs_binary=False,
             description="DSM page-sharing prediction (SHR001-SHR003)"),
    LintPass("stackmap", run_stackmap_soundness,
             description="stackmap liveness soundness (MIG010-MIG015)"),
    LintPass("unwind", run_unwind_consistency,
             description="unwind/frame consistency (MIG020-MIG023)"),
    LintPass("layout", run_layout_lint,
             description="common address-space layout (MIG030-MIG034)"),
    LintPass("coverage", run_migration_coverage,
             description="migration-point coverage (MIG002/MIG040-MIG042)"),
]


def pass_names() -> List[str]:
    return [p.name for p in LINT_PASSES]


def run_lint(
    target,
    passes: Optional[List[str]] = None,
    target_gap: Optional[int] = None,
    subject: str = "",
) -> LintReport:
    """Lint ``target`` — a ``Module`` or a ``MultiIsaBinary``.

    ``passes`` restricts the run to the named passes; ``target_gap``
    overrides the responsiveness target recorded on the binary.
    Returns the populated :class:`LintReport`; nothing is raised — the
    caller decides what severities are fatal.
    """
    from repro.compiler.toolchain import MultiIsaBinary

    if isinstance(target, MultiIsaBinary):
        ctx = LintContext(
            module=target.module,
            binary=target,
            target_gap=target_gap or target.target_gap,
            point_mode=target.point_mode,
        )
        subject = subject or target.module.name
    else:
        ctx = LintContext(module=target, target_gap=target_gap or DEFAULT_TARGET_GAP)
        subject = subject or getattr(target, "name", "")

    selected = LINT_PASSES
    if passes is not None:
        known = {p.name: p for p in LINT_PASSES}
        unknown = sorted(set(passes) - set(known))
        if unknown:
            raise ValueError(f"unknown lint passes {unknown}; have {pass_names()}")
        selected = [known[name] for name in passes]

    report = LintReport(subject=subject)
    structurally_valid = True
    for lint_pass in selected:
        if lint_pass.needs_binary and ctx.binary is None:
            continue
        if lint_pass.name != "ir" and not structurally_valid:
            # Downstream passes assume a well-formed CFG; all MIG001
            # problems were already reported at once by the ir pass.
            continue
        lint_pass.run(ctx, report)
        if lint_pass.name == "ir" and any(
            d.code == "MIG001" for d in report.diagnostics
        ):
            structurally_valid = False
    return report


class LintError(Exception):
    """Raised by fail-on-error lint integration (``Toolchain(lint=True)``)."""

    def __init__(self, report: LintReport):
        self.report = report
        errors = report.errors
        preview = "; ".join(d.format() for d in errors[:3])
        more = f" (+{len(errors) - 3} more)" if len(errors) > 3 else ""
        super().__init__(
            f"migration-safety lint failed with {len(errors)} error(s): "
            f"{preview}{more}"
        )

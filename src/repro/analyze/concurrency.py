"""Shared interprocedural concurrency model for the RACE/SHR passes.

The three concurrency passes (:mod:`repro.analyze.races`,
:mod:`repro.analyze.locks`, :mod:`repro.analyze.sharing`) all need the
same facts about a module: which functions run in which *thread role*,
which loads/stores/bursts they perform against which memory *regions*,
which of those accesses are ordered by the static happens-before
skeleton (spawn/join program points, barrier phases), which are
partitioned by thread identity, and which locks are held where.  This
module computes those facts once per :class:`~repro.ir.function.Module`
and caches the result, so ``repro lint`` pays for the interprocedural
fixpoints once even though three passes consume them.

The model is deliberately conservative in the *error* direction: every
suppression (ordering edge, partitioning claim, uniqueness claim) is
justified by a specific static proof obligation documented on the rule
that applies it.  Anything the model cannot prove stays "concurrent and
conflicting" and surfaces as a finding — soundness on the corpus is
checked dynamically by :mod:`repro.validate.race_checker` against the
MSI shadow model.

Vocabulary
----------
role
    One static thread kind: the process entry (``main``) plus one role
    per distinct ``spawn`` target function.  A role may have *many*
    runtime instances (spawned in a loop, or from several sites).
region
    An abstract memory object: a global, a heap allocation (named by
    the global that publishes its base pointer when there is one), a
    stack buffer, or a thread-local.  DSM pages are attributed to
    regions by the linker layout / allocator at validation time.
access
    One ``Load``/``Store``/``Work`` instruction as executed by one
    role, annotated with the facts the passes need: regions, uniqueness,
    thread-identity dependence, barrier phase interval, held lockset,
    and (for spawner roles) position relative to spawn/join.
"""

from __future__ import annotations

import math
import weakref
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.ir.function import Function, Module
from repro.ir.instructions import (
    AddrOf,
    BinOp,
    Call,
    Const,
    Load,
    Ret,
    StackAlloc,
    Store,
    Syscall,
    UnOp,
    Work,
)

PAGE_SIZE = 4096
INF = math.inf

# Taint tokens: the string "tid" marks a value derived from the
# thread-identity argument (the spawn argument, distinct per instance);
# ("ub", c) marks a boolean that is true in at most the one instance
# whose identity equals the constant c.
TID = "tid"

# Arithmetic ops through which thread-identity flows to addresses.
_ARITH = {
    "add", "sub", "mul", "div", "mod", "and", "or", "xor",
    "shl", "shr", "min", "max",
}
# Comparisons that preserve a unique-boolean when tested against 0/1.
_UB_KEEP = {"gt", "ne", "eq"}

_BLOCKING = {"barrier_wait", "join", "cond_wait"}


# ------------------------------------------------------------- regions


@dataclass(frozen=True, order=True)
class Region:
    """An abstract memory object; ``str(region)`` is the stable symbol
    used in diagnostics and matched by the soundness harness."""

    kind: str  # "global" | "heap" | "stack" | "tls" | "unknown"
    name: str

    def __str__(self) -> str:
        return f"{self.kind}:{self.name}"


UNKNOWN_REGION = Region("unknown", "?")


# ------------------------------------------------------------ accesses


@dataclass(frozen=True)
class Access:
    """One memory operation as executed by one role."""

    role: str
    fn: str
    block: str
    index: int  # instruction index within the block
    ordinal: int  # instruction ordinal within the function (lint site)
    kind: str  # "load" | "store" | "work"
    write: bool
    regions: FrozenSet[Region]
    unique: Optional[int]  # instance constant if provably one instance
    single: bool  # role has exactly one runtime instance
    tid_dep: bool  # address derived from the thread-identity argument
    position: str  # "pre" | "conc" | "post" relative to spawn/join
    phase: Tuple[float, float]  # [min, max] matched barrier_waits before
    lockset: FrozenSet[int]
    in_cycle: bool  # block sits on a CFG cycle of its function
    stride: Optional[int]  # per-instance byte stride when addr = tid*c
    span: int  # bytes touched (element size, or Work span)

    @property
    def site(self) -> str:
        return f"{self.fn}:{self.block}:{self.index}"


@dataclass
class Role:
    """One static thread kind."""

    name: str
    entry: str
    spawner: Optional[str] = None  # role that spawns this one
    many: bool = False  # may have >1 concurrent instance
    count: Optional[int] = None  # instance count when statically known
    distinct_arg: bool = False  # each instance gets a distinct identity
    funcs: Set[str] = field(default_factory=set)

    @property
    def instances(self) -> int:
        """Instance count for cost weighting (2 when many-but-unknown)."""
        if not self.many:
            return 1
        return self.count if self.count else 2


@dataclass(frozen=True)
class LockEdge:
    """Lock ``first`` was held while acquiring ``second``."""

    first: int
    second: int
    role: str
    fn: str
    block: str
    index: int
    ordinal: int


@dataclass(frozen=True)
class BlockingSite:
    """A blocking syscall reached with mutexes still held."""

    role: str
    fn: str
    block: str
    index: int
    ordinal: int
    syscall: str
    held: FrozenSet[int]


# ------------------------------------------------------------ conflicts


@dataclass(frozen=True)
class Conflict:
    """A pair of accesses to one region, at least one a write.

    ``status`` records what the model could prove about the pair:

    - ``ordered``      — a happens-before edge or single-instance
      program order separates the two accesses; not a race, and the
      region is at most read-shared at any instant (SHR002).
    - ``locked``       — a common mutex protects both; race-free but
      the pages still ping-pong (SHR001).
    - ``partitioned``  — both addresses derive from the thread
      identity in the same many-instance role; treated as
      partitioned-by-intent (SHR001, plus SHR003 when the stride is
      sub-page), never as a race.
    - ``burst``        — at least one side is a page-granular ``Work``
      burst; sharing signal only (SHR001).
    - ``racy``         — none of the above: a RACE finding.
    """

    region: Region
    a: Access
    b: Access
    status: str
    reason: str


class ConcurrencyModel:
    """All concurrency facts for one module; built by :func:`get_model`."""

    def __init__(self, module: Module):
        self.module = module
        self.roles: Dict[str, Role] = {}
        self.accesses: List[Access] = []
        self.lock_edges: List[LockEdge] = []
        self.blocking_sites: List[BlockingSite] = []
        self.barrier_parties: Dict[int, Optional[int]] = {}
        self.region_sizes: Dict[Region, Optional[int]] = {}
        self.notes: List[str] = []  # non-diagnostic analysis caveats
        self._intra_reach: Dict[str, Dict[str, Set[str]]] = {}
        self._conflicts: Optional[List[Conflict]] = None
        _build(self)

    def site_reaches(self, fn_name: str, a: Tuple[str, int], b: Tuple[str, int]) -> bool:
        """Can execution flow from position a to position b in fn?"""
        fn = self.module.functions.get(fn_name)
        reach = self._intra_reach.get(fn_name)
        if fn is None or reach is None:
            return False
        return _site_reaches(fn, reach, a, b)

    # ------------------------------------------------------ conflicts

    def conflicts(self) -> List[Conflict]:
        """Enumerate conflicting access pairs, classified (cached)."""
        if self._conflicts is None:
            self._conflicts = _classify_conflicts(self)
        return self._conflicts

    def region_pages(self, region: Region) -> Optional[int]:
        size = self.region_sizes.get(region)
        if size is None:
            return None
        return max(1, (size + PAGE_SIZE - 1) // PAGE_SIZE)


_MODEL_CACHE: "weakref.WeakKeyDictionary[Module, ConcurrencyModel]" = (
    weakref.WeakKeyDictionary()
)


def get_model(module: Module) -> ConcurrencyModel:
    """The (cached) concurrency model for ``module``."""
    model = _MODEL_CACHE.get(module)
    if model is None:
        model = ConcurrencyModel(module)
        _MODEL_CACHE[module] = model
    return model


# ===================================================================
# CFG utilities
# ===================================================================


def _preds(fn: Function) -> Dict[str, List[str]]:
    preds: Dict[str, List[str]] = {label: [] for label in fn.block_order}
    for label in fn.block_order:
        for succ in fn.blocks[label].successors():
            preds[succ].append(label)
    return preds


def _rpo(fn: Function) -> List[str]:
    seen: Set[str] = set()
    order: List[str] = []

    def visit(label: str) -> None:
        stack = [(label, iter(fn.blocks[label].successors()))]
        seen.add(label)
        while stack:
            cur, succs = stack[-1]
            advanced = False
            for nxt in succs:
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append((nxt, iter(fn.blocks[nxt].successors())))
                    advanced = True
                    break
            if not advanced:
                order.append(cur)
                stack.pop()

    visit(fn.entry)
    order.reverse()
    return order


def _dominators(fn: Function) -> Dict[str, Set[str]]:
    """Iterative dominator sets over reachable blocks."""
    rpo = _rpo(fn)
    reachable = set(rpo)
    preds = _preds(fn)
    universe = set(rpo)
    dom: Dict[str, Set[str]] = {fn.entry: {fn.entry}}
    for label in rpo:
        if label != fn.entry:
            dom[label] = set(universe)
    changed = True
    while changed:
        changed = False
        for label in rpo:
            if label == fn.entry:
                continue
            ins = [dom[p] for p in preds[label] if p in reachable]
            new = set.intersection(*ins) if ins else set()
            new.add(label)
            if new != dom[label]:
                dom[label] = new
                changed = True
    return dom


def _block_reach(fn: Function) -> Dict[str, Set[str]]:
    """``reach[b]`` = blocks reachable from b through ≥1 edge."""
    succs = {label: fn.blocks[label].successors() for label in fn.block_order}
    reach: Dict[str, Set[str]] = {}
    for label in fn.block_order:
        seen: Set[str] = set()
        frontier = list(succs[label])
        while frontier:
            cur = frontier.pop()
            if cur in seen:
                continue
            seen.add(cur)
            frontier.extend(succs.get(cur, []))
        reach[label] = seen
    return reach


def _cycle_blocks(fn: Function) -> Set[str]:
    """Blocks on some CFG cycle (reachable from themselves)."""
    reach = _block_reach(fn)
    return {label for label in fn.block_order if label in reach[label]}


def _site_reaches(
    fn: Function,
    reach: Dict[str, Set[str]],
    a: Tuple[str, int],
    b: Tuple[str, int],
) -> bool:
    """Can execution flow from instruction position a to position b?"""
    (ab, ai), (bb, bi) = a, b
    if ab == bb and ai < bi:
        return True
    if bb in reach[ab]:
        return True
    # Same block, later-to-earlier: only through a cycle back to itself.
    return ab == bb and ab in reach[ab]


# ===================================================================
# model construction
# ===================================================================


def _const_int(instr_defs: Dict[str, List], var) -> Optional[int]:
    """Resolve an operand to an integer constant when obvious."""
    if isinstance(var, int):
        return var
    if isinstance(var, str):
        defs = instr_defs.get(var, [])
        if len(defs) == 1 and isinstance(defs[0], Const):
            value = defs[0].value
            if isinstance(value, int):
                return value
    return None


def _def_map(fn: Function) -> Dict[str, List]:
    defs: Dict[str, List] = {}
    for _, _, instr in fn.instructions():
        for d in instr.defs():
            defs.setdefault(d, []).append(instr)
    return defs


def _build(model: ConcurrencyModel) -> None:
    module = model.module
    builder = _Builder(model)
    builder.run()


class _Builder:
    def __init__(self, model: ConcurrencyModel):
        self.model = model
        self.module = model.module
        self.fns = model.module.functions
        # Per-function structural caches.
        self.defs = {name: _def_map(fn) for name, fn in self.fns.items()}
        self.dom = {name: _dominators(fn) for name, fn in self.fns.items()}
        self.reach = {name: _block_reach(fn) for name, fn in self.fns.items()}
        self.cycles = {name: _cycle_blocks(fn) for name, fn in self.fns.items()}
        # Points-to state.
        self.tags: Dict[str, Dict[str, Set[tuple]]] = {
            name: {} for name in self.fns
        }
        self.ret_tags: Dict[str, Set[tuple]] = {name: set() for name in self.fns}
        self.publishers: Dict[tuple, Set[str]] = {}  # heap site -> globals
        self.alloc_sizes: Dict[tuple, Optional[int]] = {}
        self.call_sites: Dict[str, List[Tuple[str, str, int, Call]]] = {}

    # ------------------------------------------------------------ run

    def run(self) -> None:
        self.model._intra_reach = self.reach
        self._index_calls()
        self._points_to()
        self._discover_roles()
        self._barriers()
        self._taint()
        self._uniqueness()
        self._positions()
        self._phases()
        self._locksets()
        self._collect_accesses()
        self._region_sizes()

    # --------------------------------------------------- call indexing

    def _index_calls(self) -> None:
        for name, fn in self.fns.items():
            for label, i, instr in fn.instructions():
                if isinstance(instr, Call) and instr.callee in self.fns:
                    self.call_sites.setdefault(instr.callee, []).append(
                        (name, label, i, instr)
                    )

    # ------------------------------------------------------ points-to

    def _var_tags(self, fn_name: str, operand) -> Set[tuple]:
        if isinstance(operand, str):
            return self.tags[fn_name].get(operand, set())
        return set()

    def _add_tags(self, fn_name: str, var: str, new: Set[tuple]) -> bool:
        if not var or not new:
            return False
        cur = self.tags[fn_name].setdefault(var, set())
        before = len(cur)
        cur |= new
        return len(cur) != before

    def _points_to(self) -> None:
        """Flow-insensitive module-wide pointer-tag fixpoint.

        Tags: ``("g", name)`` address of a global, ``("fn", name)``
        function reference, ``("hp", site)`` pointer into the heap
        allocation made at ``site``, ``("st", fn, buf)`` pointer into a
        stack buffer.  Arithmetic preserves tags (pointer arithmetic
        stays within its base object for well-formed modules); this
        over-approximates the regions an address can reach, which is
        the sound direction for conflict detection.
        """
        changed = True
        while changed:
            changed = False
            for name, fn in self.fns.items():
                for label, i, instr in fn.instructions():
                    if isinstance(instr, AddrOf):
                        sym = instr.symbol
                        if sym in self.fns:
                            tag = ("fn", sym)
                        elif sym in self.module.globals:
                            tag = ("g", sym)
                        else:
                            tag = ("st", name, sym)
                        changed |= self._add_tags(name, instr.dst, {tag})
                    elif isinstance(instr, StackAlloc):
                        changed |= self._add_tags(
                            name, instr.dst, {("st", name, instr.name)}
                        )
                    elif isinstance(instr, Syscall) and instr.name == "sbrk":
                        site = (name, label, i)
                        if site not in self.alloc_sizes:
                            self.alloc_sizes[site] = _const_int(
                                self.defs[name], instr.args[0]
                            ) if instr.args else None
                        changed |= self._add_tags(
                            name, instr.dst, {("hp", site)}
                        )
                    elif isinstance(instr, BinOp):
                        new = self._var_tags(name, instr.a) | self._var_tags(
                            name, instr.b
                        )
                        changed |= self._add_tags(name, instr.dst, new)
                    elif isinstance(instr, UnOp):
                        changed |= self._add_tags(
                            name, instr.dst, self._var_tags(name, instr.a)
                        )
                    elif isinstance(instr, Load):
                        # Loading through a global pointer slot yields
                        # whatever heap pointers were published there.
                        for tag in self._var_tags(name, instr.addr):
                            if tag[0] == "g":
                                pointed = {
                                    ("hp", site)
                                    for site, pubs in self.publishers.items()
                                    if tag[1] in pubs
                                }
                                changed |= self._add_tags(
                                    name, instr.dst, pointed
                                )
                    elif isinstance(instr, Store):
                        src_tags = self._var_tags(name, instr.src)
                        for tag in self._var_tags(name, instr.addr):
                            if tag[0] == "g":
                                for st in src_tags:
                                    if st[0] == "hp":
                                        pubs = self.publishers.setdefault(
                                            st[1], set()
                                        )
                                        if tag[1] not in pubs:
                                            pubs.add(tag[1])
                                            changed = True
                    elif isinstance(instr, Call) and instr.callee in self.fns:
                        callee = self.fns[instr.callee]
                        for p, arg in zip(callee.params, instr.args):
                            changed |= self._add_tags(
                                instr.callee, p[0], self._var_tags(name, arg)
                            )
                        if instr.dst:
                            changed |= self._add_tags(
                                name, instr.dst, self.ret_tags[instr.callee]
                            )
                    elif isinstance(instr, Ret):
                        changed_ret = self._var_tags(name, instr.value)
                        before = len(self.ret_tags[name])
                        self.ret_tags[name] |= changed_ret
                        changed |= len(self.ret_tags[name]) != before

    def _regions_of(self, fn_name: str, operand) -> FrozenSet[Region]:
        tags = self._var_tags(fn_name, operand)
        regions: Set[Region] = set()
        for tag in tags:
            if tag[0] == "g":
                gv = self.module.globals[tag[1]]
                kind = "tls" if gv.thread_local else "global"
                regions.add(Region(kind, tag[1]))
            elif tag[0] == "hp":
                pubs = self.publishers.get(tag[1])
                if pubs:
                    for g in sorted(pubs):
                        regions.add(Region("heap", g))
                else:
                    site = tag[1]
                    regions.add(
                        Region("heap", f"{site[0]}:{site[1]}:{site[2]}")
                    )
            elif tag[0] == "st":
                regions.add(Region("stack", f"{tag[1]}:{tag[2]}"))
        if not regions:
            regions.add(UNKNOWN_REGION)
        return frozenset(regions)

    # ----------------------------------------------------------- roles

    def _reachable_fns(self, entry: str) -> Set[str]:
        seen: Set[str] = set()
        frontier = [entry]
        while frontier:
            cur = frontier.pop()
            if cur in seen or cur not in self.fns:
                continue
            seen.add(cur)
            for _, _, instr in self.fns[cur].instructions():
                if isinstance(instr, Call) and instr.callee in self.fns:
                    frontier.append(instr.callee)
        return seen

    def _spawn_sites_in(self, fn_name: str) -> List[Tuple[str, int, Syscall]]:
        return [
            (label, i, instr)
            for label, i, instr in self.fns[fn_name].instructions()
            if isinstance(instr, Syscall) and instr.name == "spawn"
        ]

    def _spawn_targets(self, fn_name: str, instr: Syscall) -> Set[str]:
        return {
            tag[1]
            for tag in self._var_tags(fn_name, instr.args[0] if instr.args else None)
            if tag[0] == "fn"
        }

    def _discover_roles(self) -> None:
        model = self.model
        entry = self.module.entry
        if entry not in self.fns:
            return
        model.roles["main"] = Role(name="main", entry=entry)
        model.roles["main"].funcs = self._reachable_fns(entry)
        # Iterate: roles whose reachable functions spawn further roles.
        worklist = ["main"]
        while worklist:
            role = model.roles[worklist.pop()]
            for fn_name in sorted(role.funcs):
                for label, i, instr in self._spawn_sites_in(fn_name):
                    for target in sorted(self._spawn_targets(fn_name, instr)):
                        if target not in model.roles:
                            model.roles[target] = Role(
                                name=target,
                                entry=target,
                                spawner=role.name,
                                funcs=self._reachable_fns(target),
                            )
                            worklist.append(target)
                        self._note_spawn(
                            model.roles[target], role, fn_name, label, i, instr
                        )

    def _note_spawn(
        self,
        target: Role,
        spawner: Role,
        fn_name: str,
        label: str,
        i: int,
        instr: Syscall,
    ) -> None:
        """Fold one spawn site into the target role's multiplicity."""
        in_cycle = label in self.cycles[fn_name]
        sites = getattr(target, "_sites", [])
        sites.append((fn_name, label, i, instr, in_cycle))
        target._sites = sites  # type: ignore[attr-defined]
        if spawner.many:
            target.many = True
            target.count = None
            target.distinct_arg = False
            return
        if in_cycle:
            target.many = True
            target.count = self._trip_count(fn_name, label)
            # The identity argument is distinct per instance when it is
            # the loop induction variable (redefined inside the cycle).
            arg = instr.args[1] if len(instr.args) > 1 else None
            target.distinct_arg = self._defined_in_cycle(fn_name, label, arg)
            if target.count is not None and target.count <= 1:
                # A constant trip count of 0/1 spawns at most one
                # instance; treat as single (program order applies).
                target.many = False
        elif len(sites) > 1:
            target.many = True
            target.count = len(sites)
            consts = [
                _const_int(self.defs[s[0]], s[3].args[1])
                if len(s[3].args) > 1 else None
                for s in sites
            ]
            target.distinct_arg = (
                all(c is not None for c in consts)
                and len(set(consts)) == len(consts)
            )
        else:
            target.many = False
            target.count = 1
            target.distinct_arg = True

    def _trip_count(self, fn_name: str, label: str) -> Optional[int]:
        """Constant trip count of the cycle containing ``label``: look
        for the ``for_range`` shape — a CBr on ``lt(var, C)`` in a block
        of the same cycle."""
        fn = self.fns[fn_name]
        reach = self.reach[fn_name]
        cycle = {
            b for b in fn.block_order
            if label in reach.get(b, set()) and b in reach.get(label, set())
        } | {label}
        for b in cycle:
            instrs = fn.blocks[b].instrs
            if not instrs:
                continue
            term = instrs[-1]
            cond = getattr(term, "cond", None)
            if cond is None:
                continue
            for d in self.defs[fn_name].get(cond, []):
                if isinstance(d, BinOp) and d.op == "lt":
                    bound = _const_int(self.defs[fn_name], d.b)
                    if bound is not None:
                        return bound
        return None

    def _defined_in_cycle(self, fn_name: str, label: str, arg) -> bool:
        if not isinstance(arg, str):
            return False
        fn = self.fns[fn_name]
        reach = self.reach[fn_name]
        cycle = {
            b for b in fn.block_order
            if label in reach.get(b, set()) and b in reach.get(label, set())
        } | {label}
        for b in cycle:
            for instr in fn.blocks[b].instrs:
                if arg in instr.defs():
                    return True
        return False

    # -------------------------------------------------------- barriers

    def _barriers(self) -> None:
        for name, fn in self.fns.items():
            for _, _, instr in fn.instructions():
                if isinstance(instr, Syscall) and instr.name == "barrier_init":
                    bid = _const_int(self.defs[name], instr.args[0]) \
                        if instr.args else None
                    parties = _const_int(self.defs[name], instr.args[1]) \
                        if len(instr.args) > 1 else None
                    if bid is not None:
                        self.model.barrier_parties[bid] = parties

    def _barrier_matches_role(self, role: Role) -> Set[int]:
        """Barrier ids whose party count equals the role's instance
        count — only those align phases across the role's instances."""
        if not role.many or role.count is None:
            return set()
        return {
            bid
            for bid, parties in self.model.barrier_parties.items()
            if parties == role.count
        }

    # ----------------------------------------------------------- taint

    def _taint(self) -> None:
        """Per-role thread-identity taint.

        ``taint[role][fn][var]`` ⊆ {TID, ("ub", c)}.  The identity
        argument (spawn arg) seeds the role entry's first parameter;
        arithmetic propagates TID, ``eq(tid, c)`` produces the
        unique-boolean ("ub", c), and parameters meet (intersect) over
        all call sites within the role so a claim holds for every
        instance.  Only roles whose instances provably receive distinct
        identities are seeded at all.
        """
        self.taint: Dict[str, Dict[str, Dict[str, Set]]] = {}
        for role in self.model.roles.values():
            self.taint[role.name] = {f: {} for f in role.funcs}
            if role.name == "main" or not role.distinct_arg:
                continue
            entry = self.fns.get(role.entry)
            if entry is None or not entry.params:
                continue
            if any(
                s[0] in role.funcs
                for s in self.call_sites.get(role.entry, [])
            ):
                # The role entry is also called as a plain function
                # within the role — its parameter is not a reliable
                # instance identity.  Skip seeding (no suppression).
                continue
            self._taint_fixpoint(role)

    def _taint_value(self, env: Dict[str, Set], operand) -> Set:
        if isinstance(operand, str):
            return env.get(operand, set())
        return set()

    @staticmethod
    def _ub_preserving(op: str, const: Optional[int]) -> bool:
        # Tests under which a 0/1-valued unique-boolean stays a
        # unique-boolean: gt(ub, 0), ne(ub, 0), eq(ub, 1), ge(ub, 1).
        # (eq(ub, 0) / ne(ub, 1) are negations — NOT preserved.)
        return (op in ("gt", "ne") and const == 0) or (
            op in ("eq", "ge") and const == 1
        )

    def _taint_fixpoint(self, role: Role) -> None:
        """Least fixpoint over rounds: each round re-propagates from an
        empty environment under the current parameter assumptions, then
        recomputes every parameter as the meet (intersection) of its
        call sites' argument taints.  Restarting from bottom each round
        guarantees no derived value retains taint its inputs lost when
        a meet shrank — the unsoundness a monotone in-place union would
        allow.  Assumptions grow monotonically across rounds, so this
        terminates; on the (never observed) pathological case we clear
        the role's taint, which disables suppression — the safe side.
        """
        entry_fn = self.fns[role.entry]
        tid_param = entry_fn.params[0][0]
        assumptions: Dict[str, Dict[str, Set]] = {f: {} for f in role.funcs}
        for _ in range(12):
            env: Dict[str, Dict[str, Set]] = {
                f: {k: set(v) for k, v in assumptions[f].items()}
                for f in role.funcs
            }
            env[role.entry][tid_param] = {TID}
            self._taint_round(role, env)
            new_assumptions = self._param_meets(role, env)
            new_assumptions[role.entry] = {}
            if new_assumptions == assumptions:
                self.taint[role.name] = env
                return
            assumptions = new_assumptions
        self.taint[role.name] = {f: {} for f in role.funcs}

    def _taint_round(self, role: Role, env: Dict[str, Dict[str, Set]]) -> None:
        changed = True
        while changed:
            changed = False
            for fn_name in role.funcs:
                fn = self.fns.get(fn_name)
                if fn is None:
                    continue
                fenv = env[fn_name]
                for _, _, instr in fn.instructions():
                    new: Set = set()
                    dst = None
                    if isinstance(instr, BinOp):
                        dst = instr.dst
                        ta = self._taint_value(fenv, instr.a)
                        tb = self._taint_value(fenv, instr.b)
                        for tx, other in ((ta, instr.b), (tb, instr.a)):
                            if instr.op == "eq" and TID in tx:
                                c = _const_int(self.defs[fn_name], other)
                                if c is not None:
                                    new.add(("ub", c))
                        if instr.op in _ARITH and (TID in ta or TID in tb):
                            new.add(TID)
                        if instr.op in _UB_KEEP:
                            cb = _const_int(self.defs[fn_name], instr.b)
                            if self._ub_preserving(instr.op, cb):
                                new |= {t for t in ta if t != TID}
                            if instr.op == "eq":
                                ca = _const_int(self.defs[fn_name], instr.a)
                                if self._ub_preserving("eq", ca):
                                    new |= {t for t in tb if t != TID}
                    elif isinstance(instr, UnOp):
                        dst = instr.dst
                        new = set(self._taint_value(fenv, instr.a))
                    if dst:
                        cur = fenv.get(dst, set())
                        if not new <= cur:
                            fenv[dst] = cur | new
                            changed = True

    def _param_meets(
        self, role: Role, env: Dict[str, Dict[str, Set]]
    ) -> Dict[str, Dict[str, Set]]:
        meets: Dict[str, Dict[str, Set]] = {f: {} for f in role.funcs}
        for fn_name in role.funcs:
            fn = self.fns.get(fn_name)
            if fn is None or not fn.params:
                continue
            sites = [
                s for s in self.call_sites.get(fn_name, [])
                if s[0] in role.funcs
            ]
            if not sites:
                continue
            for k, (pname, _) in enumerate(fn.params):
                meet: Optional[Set] = None
                for caller, _, _, call in sites:
                    t = (
                        self._taint_value(env[caller], call.args[k])
                        if k < len(call.args) else set()
                    )
                    meet = set(t) if meet is None else (meet & t)
                if meet:
                    meets[fn_name][pname] = meet
        return meets

    # ------------------------------------------------------ uniqueness

    def _uniqueness(self) -> None:
        """Blocks / functions that execute in at most one instance.

        A CBr on a unique-boolean ("ub", c) makes its true-successor —
        when that successor has the branch as its only predecessor —
        and everything that successor dominates execute only in the
        instance with identity c.  Function-level uniqueness is the
        greatest fixpoint over role-internal call edges: a function is
        unique-to-c if *every* call site lies in a unique-to-c context.
        """
        self.unique_blocks: Dict[Tuple[str, str], Dict[str, int]] = {}
        self.unique_fn: Dict[Tuple[str, str], Optional[int]] = {}
        for role in self.model.roles.values():
            if not role.many:
                continue
            env = self.taint[role.name]
            for fn_name in role.funcs:
                fn = self.fns.get(fn_name)
                if fn is None:
                    continue
                blocks: Dict[str, int] = {}
                preds = _preds(fn)
                dom = self.dom[fn_name]
                for label in fn.block_order:
                    instrs = fn.blocks[label].instrs
                    if not instrs:
                        continue
                    term = instrs[-1]
                    cond = getattr(term, "cond", None)
                    if_true = getattr(term, "if_true", None)
                    if cond is None or if_true is None:
                        continue
                    ubs = {
                        t for t in self._taint_value(env[fn_name], cond)
                        if t != TID
                    }
                    if len(ubs) != 1 or len(preds[if_true]) != 1:
                        continue
                    (_, c) = next(iter(ubs))
                    for b in fn.block_order:
                        if if_true in dom.get(b, set()):
                            blocks[b] = c
                self.unique_blocks[(role.name, fn_name)] = blocks
            self._unique_fn_fixpoint(role)

    def _unique_fn_fixpoint(self, role: Role) -> None:
        # Start optimistic (unique with undetermined constant = "any"),
        # deflate until stable.  Entry is never unique.
        state: Dict[str, Optional[int]] = {}
        ANY = object()
        for fn_name in role.funcs:
            state[fn_name] = ANY if fn_name != role.entry else None
        changed = True
        while changed:
            changed = False
            for fn_name in role.funcs:
                if fn_name == role.entry:
                    continue
                sites = [
                    s for s in self.call_sites.get(fn_name, [])
                    if s[0] in role.funcs
                ]
                if not sites:
                    new: Optional[int] = None  # unreachable in role
                else:
                    consts: Set = set()
                    ok = True
                    for caller, label, _, _ in sites:
                        caller_u = state.get(caller)
                        block_u = self.unique_blocks.get(
                            (role.name, caller), {}
                        ).get(label)
                        site_u = block_u if block_u is not None else (
                            caller_u if caller_u is not None else None
                        )
                        if site_u is None:
                            ok = False
                            break
                        consts.add(site_u)
                    if ok and (len(consts - {ANY}) <= 1):
                        real = consts - {ANY}
                        new = next(iter(real)) if real else ANY
                    else:
                        new = None
                if state[fn_name] is not new and state[fn_name] != new:
                    state[fn_name] = new
                    changed = True
        for fn_name, value in state.items():
            self.unique_fn[(role.name, fn_name)] = (
                None if value is None else (-1 if value is ANY else value)
            )

    def _access_unique(self, role: Role, fn_name: str, label: str) -> Optional[int]:
        """Instance constant if this block runs in ≤1 instance."""
        if not role.many:
            return -1  # single-instance role: trivially unique
        block_u = self.unique_blocks.get((role.name, fn_name), {}).get(label)
        if block_u is not None:
            return block_u
        return self.unique_fn.get((role.name, fn_name))

    # ------------------------------------------------------- positions

    def _positions(self) -> None:
        """pre/conc/post relative to spawn/join, for spawner roles.

        Within a function containing spawn sites: a position is *pre*
        if no spawn site can reach it, and *post* if it cannot reach
        any spawn site AND the joins are provably complete — either
        every spawn site is followed by at least as many dominating
        join sites (straight-line idiom), or the position is dominated
        by the unique exit of a CFG cycle containing a join (the
        join-loop idiom, which is assumed to join every previously
        spawned thread).  Callees inherit the meet of their call
        sites' positions.
        """
        self.position: Dict[Tuple[str, str], Dict[Tuple[str, int], str]] = {}
        self.fn_position: Dict[Tuple[str, str], str] = {}
        for role in self.model.roles.values():
            spawn_fns = {
                fn_name for fn_name in role.funcs
                if self._spawn_sites_in(fn_name)
            }
            if not spawn_fns:
                for fn_name in role.funcs:
                    self.fn_position[(role.name, fn_name)] = "conc"
                continue
            for fn_name in spawn_fns:
                self.position[(role.name, fn_name)] = self._classify_positions(
                    fn_name
                )
            self._propagate_positions(role, spawn_fns)

    def _classify_positions(
        self, fn_name: str
    ) -> Dict[Tuple[str, int], str]:
        fn = self.fns[fn_name]
        reach = self.reach[fn_name]
        dom = self.dom[fn_name]
        spawns = [(label, i) for label, i, _ in self._spawn_sites_in(fn_name)]
        joins = [
            (label, i)
            for label, i, instr in fn.instructions()
            if isinstance(instr, Syscall) and instr.name == "join"
        ]
        cycles = self.cycles[fn_name]

        def site_before(a: Tuple[str, int], b: Tuple[str, int]) -> bool:
            if a[0] == b[0]:
                return a[1] < b[1] and a[0] not in cycles
            return a[0] in dom.get(b[0], set())

        # Join-loop exits: unique out-edge of a cycle containing a join.
        join_exits: List[str] = []
        for jlabel, _ in joins:
            if jlabel not in cycles:
                continue
            cycle = {
                b for b in fn.block_order
                if jlabel in reach.get(b, set()) and b in reach.get(jlabel, set())
            } | {jlabel}
            exits = {
                s
                for b in cycle
                for s in fn.blocks[b].successors()
                if s not in cycle
            }
            if len(exits) == 1:
                join_exits.append(next(iter(exits)))

        out: Dict[Tuple[str, int], str] = {}
        for label, i, _ in fn.instructions():
            pos = (label, i)
            if not any(_site_reaches(fn, reach, s, pos) for s in spawns):
                out[pos] = "pre"
                continue
            if any(_site_reaches(fn, reach, pos, s) for s in spawns):
                out[pos] = "conc"
                continue
            joined = False
            if all(site_before(s, pos) for s in spawns):
                before = sum(1 for j in joins if site_before(j, pos))
                if before >= len(spawns):
                    joined = True
            if not joined:
                for exit_label in join_exits:
                    if exit_label in dom.get(label, set()):
                        joined = True
                        break
            out[pos] = "post" if joined else "conc"
        return out

    def _propagate_positions(self, role: Role, spawn_fns: Set[str]) -> None:
        # Meet over call sites: pre∧pre=pre, post∧post=post, else conc.
        state: Dict[str, Optional[str]] = {}
        for fn_name in role.funcs:
            state[fn_name] = None if fn_name not in spawn_fns else "mixed"
        state[role.entry] = state[role.entry] or (
            "mixed" if role.entry in spawn_fns else "conc"
        )
        changed = True
        while changed:
            changed = False
            for fn_name in role.funcs:
                if fn_name in spawn_fns or fn_name == role.entry:
                    continue
                sites = [
                    s for s in self.call_sites.get(fn_name, [])
                    if s[0] in role.funcs
                ]
                positions: Set[str] = set()
                for caller, label, i, _ in sites:
                    if caller in spawn_fns:
                        positions.add(
                            self.position[(role.name, caller)].get(
                                (label, i), "conc"
                            )
                        )
                    else:
                        positions.add(state.get(caller) or "conc")
                new = (
                    positions.pop() if len(positions) == 1 else "conc"
                ) if positions else None
                if new != state[fn_name]:
                    state[fn_name] = new
                    changed = True
        for fn_name in role.funcs:
            if fn_name in spawn_fns:
                continue
            self.fn_position[(role.name, fn_name)] = state[fn_name] or "conc"

    def _position_at(
        self, role: Role, fn_name: str, label: str, i: int
    ) -> str:
        per_site = self.position.get((role.name, fn_name))
        if per_site is not None:
            return per_site.get((label, i), "conc")
        return self.fn_position.get((role.name, fn_name), "conc")

    # ---------------------------------------------------------- phases

    def _phases(self) -> None:
        """Barrier-phase intervals [min, max] per instruction, per role.

        Only barriers whose party count equals the role's instance
        count advance the phase (they align all instances); any other
        ``barrier_wait`` poisons the max.  Function deltas compose over
        the call graph.
        """
        self.phase_at: Dict[Tuple[str, str], Dict[Tuple[str, int], Tuple[float, float]]] = {}
        for role in self.model.roles.values():
            matched = self._barrier_matches_role(role)
            deltas = self._phase_deltas(role, matched)
            entry_state: Dict[str, Tuple[float, float]] = {
                role.entry: (0.0, 0.0)
            }
            bumps: Dict[str, int] = {}
            bump_limit = len(role.funcs) + 2
            changed = True
            while changed:
                changed = False
                for fn_name in role.funcs:
                    if fn_name not in entry_state:
                        continue
                    per_site, _ = self._phase_flow(
                        role, fn_name, entry_state[fn_name], matched, deltas
                    )
                    self.phase_at[(role.name, fn_name)] = per_site
                    fn = self.fns.get(fn_name)
                    if fn is None:
                        continue
                    for label, i, instr in fn.instructions():
                        if isinstance(instr, Call) and instr.callee in role.funcs:
                            st = per_site.get((label, i), (0.0, INF))
                            cur = entry_state.get(instr.callee)
                            new = (
                                min(cur[0], st[0]) if cur else st[0],
                                max(cur[1], st[1]) if cur else st[1],
                            )
                            if cur != new:
                                bumps[instr.callee] = bumps.get(
                                    instr.callee, 0
                                ) + 1
                                if bumps[instr.callee] > bump_limit \
                                        and cur is not None \
                                        and new[1] > cur[1]:
                                    new = (new[0], INF)
                                entry_state[instr.callee] = new
                                changed = True
            # Functions never reached keep a safely-unknown phase.
            for fn_name in role.funcs:
                self.phase_at.setdefault((role.name, fn_name), {})

    def _phase_deltas(
        self, role: Role, matched: Set[int]
    ) -> Dict[str, Tuple[float, float]]:
        deltas: Dict[str, Tuple[float, float]] = {
            fn: (0.0, 0.0) for fn in role.funcs
        }
        bumps: Dict[str, int] = {}
        bump_limit = len(role.funcs) + 2
        changed = True
        while changed:
            changed = False
            for fn_name in role.funcs:
                if self.fns.get(fn_name) is None:
                    continue
                _, exit_delta = self._phase_flow(
                    role, fn_name, (0.0, 0.0), matched, deltas
                )
                if exit_delta != deltas[fn_name]:
                    bumps[fn_name] = bumps.get(fn_name, 0) + 1
                    if bumps[fn_name] > bump_limit \
                            and exit_delta[1] > deltas[fn_name][1]:
                        exit_delta = (exit_delta[0], INF)
                    deltas[fn_name] = exit_delta
                    changed = True
        return deltas

    def _phase_flow(
        self,
        role: Role,
        fn_name: str,
        entry: Tuple[float, float],
        matched: Set[int],
        deltas: Dict[str, Tuple[float, float]],
    ) -> Tuple[Dict[Tuple[str, int], Tuple[float, float]], Tuple[float, float]]:
        fn = self.fns[fn_name]
        state_in: Dict[str, Tuple[float, float]] = {fn.entry: entry}
        per_site: Dict[Tuple[str, int], Tuple[float, float]] = {}
        exit_state: Optional[Tuple[float, float]] = None
        # Widening: a barrier on a CFG cycle bumps the max every sweep;
        # after more bumps than the CFG has blocks it can only be a
        # cycle, so jump the max straight to "unbounded".
        bumps: Dict[str, int] = {}
        bump_limit = len(fn.block_order) + 2
        changed = True
        while changed:
            changed = False
            for label in fn.block_order:
                if label not in state_in:
                    continue
                st = state_in[label]
                for i, instr in enumerate(fn.blocks[label].instrs):
                    per_site[(label, i)] = st
                    if isinstance(instr, Syscall) and instr.name == "barrier_wait":
                        bid = _const_int(self.defs[fn_name], instr.args[0]) \
                            if instr.args else None
                        if bid is not None and bid in matched:
                            st = (st[0] + 1, st[1] + 1)
                        else:
                            st = (st[0], INF)
                    elif isinstance(instr, Call):
                        d = deltas.get(instr.callee, (0.0, INF)) \
                            if instr.callee in self.fns else (0.0, 0.0)
                        st = (st[0] + d[0], st[1] + d[1])
                    elif isinstance(instr, Ret):
                        exit_state = st if exit_state is None else (
                            min(exit_state[0], st[0]), max(exit_state[1], st[1])
                        )
                # Successor in-state: meet of predecessor out-states
                # (entry keeps its seed via its initial value).
                for succ in fn.blocks[label].successors():
                    cur = state_in.get(succ)
                    new = st if cur is None else (
                        min(cur[0], st[0]), max(cur[1], st[1])
                    )
                    if new != cur:
                        bumps[succ] = bumps.get(succ, 0) + 1
                        if bumps[succ] > bump_limit and cur is not None \
                                and new[1] > cur[1]:
                            new = (new[0], INF)
                        state_in[succ] = new
                        changed = True
        return per_site, exit_state or (0.0, 0.0)

    # -------------------------------------------------------- locksets

    def _locksets(self) -> None:
        """Flow-sensitive held-mutex sets per instruction, per role.

        Locks are identified by constant ids (``mutex_lock(c)``); a
        non-constant id is untrackable and treated as holding nothing,
        which is the sound direction for race *suppression*.  Calls are
        assumed lock-balanced (the callee's own body is analyzed with
        the meet of its callers' held sets).  Lock-order edges and
        blocking-while-holding sites are recorded for the locks pass.
        """
        self.lockset_at: Dict[Tuple[str, str], Dict[Tuple[str, int], FrozenSet[int]]] = {}
        seen_edges: Set[tuple] = set()
        for role in self.model.roles.values():
            entry_held: Dict[str, FrozenSet[int]] = {role.entry: frozenset()}
            changed = True
            while changed:
                changed = False
                for fn_name in sorted(role.funcs):
                    if fn_name not in entry_held or self.fns.get(fn_name) is None:
                        continue
                    per_site = self._lock_flow(
                        role, fn_name, entry_held[fn_name], None
                    )
                    self.lockset_at[(role.name, fn_name)] = per_site
                    for label, i, instr in self.fns[fn_name].instructions():
                        if isinstance(instr, Call) and instr.callee in role.funcs:
                            held = per_site.get((label, i), frozenset())
                            cur = entry_held.get(instr.callee)
                            new = held if cur is None else (cur & held)
                            if cur != new:
                                entry_held[instr.callee] = new
                                changed = True
            # Record lock-order edges and blocking sites only from the
            # converged states, so no stale pre-fixpoint held set leaks
            # into a finding.
            for fn_name in sorted(role.funcs):
                if fn_name in entry_held and self.fns.get(fn_name) is not None:
                    self._lock_flow(
                        role, fn_name, entry_held[fn_name], seen_edges
                    )
            for fn_name in role.funcs:
                self.lockset_at.setdefault((role.name, fn_name), {})

    def _lock_flow(
        self,
        role: Role,
        fn_name: str,
        entry: FrozenSet[int],
        seen_edges: Optional[Set[tuple]],
    ) -> Dict[Tuple[str, int], FrozenSet[int]]:
        fn = self.fns[fn_name]
        state_in: Dict[str, FrozenSet[int]] = {fn.entry: entry}
        per_site: Dict[Tuple[str, int], FrozenSet[int]] = {}
        ordinal_of = {
            (label, i): n
            for n, (label, i, _) in enumerate(fn.instructions())
        }
        changed = True
        while changed:
            changed = False
            for label in fn.block_order:
                if label not in state_in:
                    continue
                st = state_in[label]
                for i, instr in enumerate(fn.blocks[label].instrs):
                    per_site[(label, i)] = st
                    if not isinstance(instr, Syscall):
                        continue
                    arg0 = _const_int(self.defs[fn_name], instr.args[0]) \
                        if instr.args else None
                    if instr.name == "mutex_lock":
                        if arg0 is not None:
                            if seen_edges is not None:
                                for held in sorted(st):
                                    edge = (held, arg0, fn_name, label, i)
                                    if edge not in seen_edges:
                                        seen_edges.add(edge)
                                        self.model.lock_edges.append(
                                            LockEdge(
                                                held, arg0, role.name, fn_name,
                                                label, i, ordinal_of[(label, i)],
                                            )
                                        )
                            st = st | {arg0}
                    elif instr.name == "mutex_unlock":
                        if arg0 is not None:
                            st = st - {arg0}
                    elif instr.name in _BLOCKING and seen_edges is not None:
                        held = st
                        if instr.name == "cond_wait" and len(instr.args) > 1:
                            own = _const_int(self.defs[fn_name], instr.args[1])
                            if own is not None:
                                held = held - {own}
                        if held:
                            site = ("blocking", fn_name, label, i)
                            if site not in seen_edges:
                                seen_edges.add(site)
                                self.model.blocking_sites.append(
                                    BlockingSite(
                                        role.name, fn_name, label, i,
                                        ordinal_of[(label, i)],
                                        instr.name, frozenset(held),
                                    )
                                )
                for succ in fn.blocks[label].successors():
                    cur = state_in.get(succ)
                    new = st if cur is None else (cur & st)
                    if new != cur:
                        state_in[succ] = new
                        changed = True
        return per_site

    # -------------------------------------------------------- accesses

    def _stride_of(self, role: Role, fn_name: str, addr) -> Optional[int]:
        """Per-instance byte stride when the address offset is directly
        ``tid * c`` (the thread-identity parameter itself scaled by a
        constant) — a deliberate, shallow pattern so SHR003 names only
        layouts whose partition stride is certain."""
        entry = self.fns.get(role.entry)
        if entry is None or not entry.params or not role.distinct_arg:
            return None
        tid_names = {entry.params[0][0]} if fn_name == role.entry else set()
        # A parameter fed the raw identity at every site also counts.
        env = self.taint.get(role.name, {}).get(fn_name, {})
        fn = self.fns.get(fn_name)
        if fn is not None:
            for pname, _ in fn.params:
                if TID in env.get(pname, set()):
                    sites = [
                        s for s in self.call_sites.get(fn_name, [])
                        if s[0] in role.funcs
                    ]
                    idx = [p[0] for p in fn.params].index(pname)
                    if sites and all(
                        idx < len(s[3].args)
                        and isinstance(s[3].args[idx], str)
                        and self._is_raw_tid(role, s[0], s[3].args[idx])
                        for s in sites
                    ):
                        tid_names.add(pname)

        def resolve(var, depth: int) -> Optional[int]:
            if not isinstance(var, str) or depth > 6:
                return None
            defs = self.defs[fn_name].get(var, [])
            if len(defs) != 1:
                return None
            d = defs[0]
            if isinstance(d, BinOp) and d.op == "mul":
                for v, c in ((d.a, d.b), (d.b, d.a)):
                    cv = _const_int(self.defs[fn_name], c)
                    if cv is not None and isinstance(v, str) and (
                        v in tid_names or self._is_mov_of(fn_name, v, tid_names)
                    ):
                        return cv
            if isinstance(d, BinOp) and d.op == "add":
                return resolve(d.a, depth + 1) or resolve(d.b, depth + 1)
            if isinstance(d, UnOp) and d.op == "mov":
                return resolve(d.a, depth + 1)
            return None

        return resolve(addr, 0)

    def _is_raw_tid(self, role: Role, fn_name: str, var: str) -> bool:
        entry = self.fns.get(role.entry)
        if entry is None or not entry.params:
            return False
        if fn_name == role.entry and var == entry.params[0][0]:
            return True
        return self._is_mov_of(
            fn_name, var,
            {entry.params[0][0]} if fn_name == role.entry else set(),
        )

    def _is_mov_of(self, fn_name: str, var: str, names: Set[str]) -> bool:
        defs = self.defs[fn_name].get(var, [])
        return (
            len(defs) == 1
            and isinstance(defs[0], UnOp)
            and defs[0].op == "mov"
            and defs[0].a in names
        )

    def _collect_accesses(self) -> None:
        from repro.isa.types import type_size

        model = self.model
        for role in model.roles.values():
            env = self.taint[role.name]
            for fn_name in sorted(role.funcs):
                fn = self.fns.get(fn_name)
                if fn is None:
                    continue
                cycles = self.cycles[fn_name]
                phases = self.phase_at.get((role.name, fn_name), {})
                locks = self.lockset_at.get((role.name, fn_name), {})
                for ordinal, (label, i, instr) in enumerate(fn.instructions()):
                    if isinstance(instr, Load):
                        kind, write, addr = "load", False, instr.addr
                        span = type_size(instr.vt)
                    elif isinstance(instr, Store):
                        kind, write, addr = "store", True, instr.addr
                        span = type_size(instr.vt)
                    elif isinstance(instr, Work):
                        if instr.pages is None:
                            continue
                        kind, write, addr = "work", True, instr.pages
                        span = instr.span or PAGE_SIZE
                    else:
                        continue
                    taints = self._taint_value(env.get(fn_name, {}), addr)
                    model.accesses.append(
                        Access(
                            role=role.name,
                            fn=fn_name,
                            block=label,
                            index=i,
                            ordinal=ordinal,
                            kind=kind,
                            write=write,
                            regions=self._regions_of(fn_name, addr),
                            unique=self._access_unique(role, fn_name, label),
                            single=not role.many,
                            tid_dep=TID in taints,
                            position=self._position_at(role, fn_name, label, i),
                            phase=phases.get((label, i), (0.0, INF)),
                            lockset=locks.get((label, i), frozenset()),
                            in_cycle=label in cycles,
                            stride=self._stride_of(role, fn_name, addr)
                            if kind != "work" else None,
                            span=span,
                        )
                    )

    def _region_sizes(self) -> None:
        model = self.model
        for access in model.accesses:
            for region in access.regions:
                if region in model.region_sizes:
                    continue
                if region.kind in ("global", "tls"):
                    gv = self.module.globals.get(region.name)
                    model.region_sizes[region] = gv.size if gv else None
                elif region.kind == "heap":
                    total = 0
                    known = False
                    for site, pubs in self.publishers.items():
                        if region.name in pubs:
                            size = self.alloc_sizes.get(site)
                            if size is not None:
                                total += size
                                known = True
                    if not known:
                        for site, size in self.alloc_sizes.items():
                            if f"{site[0]}:{site[1]}:{site[2]}" == region.name:
                                total = size or 0
                                known = size is not None
                    model.region_sizes[region] = total if known else None
                elif region.kind == "stack":
                    fn_name, _, buf = region.name.partition(":")
                    fn = self.fns.get(fn_name)
                    model.region_sizes[region] = (
                        fn.stack_buffers.get(buf) if fn else None
                    )
                else:
                    model.region_sizes[region] = None


# ===================================================================
# conflict classification
# ===================================================================


def _pair_ordered(model: ConcurrencyModel, a: Access, b: Access) -> Optional[str]:
    """A happens-before reason separating a and b, or None."""
    ra = model.roles.get(a.role)
    rb = model.roles.get(b.role)
    if ra is None or rb is None:
        return None
    if a.role == b.role:
        if not ra.many:
            return "single-instance role: program order"
        if (
            a.unique is not None
            and b.unique is not None
            and a.unique == b.unique
            and a.unique != -1
        ):
            return f"both run only in instance {a.unique}: program order"
        # Barrier phases: a's interval entirely before b's (or vice
        # versa) under a barrier that aligns all role instances.
        if model.barrier_parties and ra.count is not None:
            if a.phase[1] < b.phase[0] or b.phase[1] < a.phase[0]:
                return "separated by barrier phases"
        return None
    # Spawn/join edges between a spawner and its spawned role.
    for x, y in ((a, b), (b, a)):
        if model.roles.get(y.role) and model.roles[y.role].spawner == x.role:
            if x.position == "pre":
                return f"{x.role} access precedes every spawn of {y.role}"
            if x.position == "post":
                return f"{x.role} access follows the join of {y.role}"
    return None


def _classify_conflicts(model: ConcurrencyModel) -> List[Conflict]:
    by_region: Dict[Region, List[Access]] = {}
    for access in model.accesses:
        for region in access.regions:
            if region.kind == "tls":
                continue  # thread-local: instance-private by definition
            by_region.setdefault(region, []).append(access)

    conflicts: List[Conflict] = []
    for region in sorted(by_region):
        accesses = by_region[region]
        for i, a in enumerate(accesses):
            for b in accesses[i:]:
                if not (a.write or b.write):
                    continue
                if a is b:
                    # A single site conflicts with itself only when the
                    # role has several instances and the access is not
                    # provably confined to one of them.
                    ra = model.roles.get(a.role)
                    if ra is None or not ra.many or a.unique is not None:
                        continue
                    if not a.write:
                        continue
                if region.kind == "stack" and a.role == b.role:
                    # Each instance owns its private stack frame; a
                    # stack region is shared only if its pointer
                    # escapes to a different role.
                    continue
                status, reason = _classify_pair(model, region, a, b)
                conflicts.append(Conflict(region, a, b, status, reason))
    return conflicts


def _classify_pair(
    model: ConcurrencyModel, region: Region, a: Access, b: Access
) -> Tuple[str, str]:
    ordered = _pair_ordered(model, a, b)
    if ordered:
        return "ordered", ordered
    common = a.lockset & b.lockset
    if common:
        return "locked", f"both hold mutex {sorted(common)[0]}"
    if a.role == b.role and a.tid_dep and b.tid_dep:
        return (
            "partitioned",
            "both addresses derive from the thread identity "
            "(partitioned-by-intent)",
        )
    if a.kind == "work" or b.kind == "work":
        return "burst", "page-granular work burst (sharing signal only)"
    return "racy", "no common lock and no happens-before edge"

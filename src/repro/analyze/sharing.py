"""Static page-sharing lint (SHR001-SHR003) and sharing predictions.

The sharing pass is the static analogue of the DSM traffic that
dominates golden-scale runs: it maps every conflicting region (global,
heap allocation, escaped stack buffer) to its page extent in the
common layout and predicts how its pages will be shared:

- **SHR001** (info) — write-shared: at least one conflicting pair is
  concurrent (identity-partitioned, lock-protected, page-granular
  burst, or racy), so the region's pages ping-pong between kernels
  under hDSM.
- **SHR002** (info) — ordered sharing: the region is accessed by more
  than one thread but every conflicting pair is separated by a
  happens-before edge (pre-spawn initialisation, post-join
  verification, barrier phases); its pages still migrate between
  kernels, but never concurrently.
- **SHR003** (info) — predicted false sharing: the per-thread
  partition stride is smaller than a DSM page, so distinct threads'
  writes land on the same page even though the addresses are disjoint.

These are *predictions*, not defects — they are emitted at INFO
severity and are the static half of the soundness contract checked by
:mod:`repro.validate.race_checker`: every page the MSI shadow model
observes as dynamically write-shared must belong to a region named by
a RACE or SHR finding.
"""

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analyze.concurrency import (
    PAGE_SIZE,
    Conflict,
    Region,
    get_model,
)
from repro.analyze.diagnostics import Severity

PASS_NAME = "sharing"

# Conflict statuses that mean "pages are concurrently write-shared".
_CONCURRENT = {"partitioned", "locked", "burst", "racy"}


@dataclass(frozen=True)
class RegionPrediction:
    """One region's predicted sharing, for the soundness harness."""

    region: str
    code: str  # the SHR/RACE code family predicted for it
    pages: Optional[int]  # static page extent when the size is known
    score: float  # relative hot-page pressure (coarse, rank-only)


def _hot_score(model, region: Region, conflicts: List[Conflict]) -> float:
    """Coarse page-pressure score for rank correlation.

    Counts each participating access once: a ``Work`` burst contributes
    its span in pages times the role's instance count; a load/store on
    a CFG cycle contributes the region extent times instances; a
    straight-line access contributes its instance count.  This is a
    rank signal, not a traffic model — the harness only asks that
    hotter predictions correspond to more observed DSM traffic.
    """
    region_pages = model.region_pages(region) or 1
    seen = set()
    score = 0.0
    for conflict in conflicts:
        for access in (conflict.a, conflict.b):
            key = (access.role, access.fn, access.ordinal)
            if key in seen:
                continue
            seen.add(key)
            role = model.roles.get(access.role)
            instances = role.instances if role else 1
            if access.kind == "work":
                span_pages = max(1, (access.span + PAGE_SIZE - 1) // PAGE_SIZE)
                score += span_pages * instances
            elif access.in_cycle:
                score += region_pages * instances
            else:
                score += instances
    return score


def predict_sharing(module) -> Dict[str, RegionPrediction]:
    """Region -> prediction, for every region with any sharing finding."""
    model = get_model(module)
    by_region: Dict[Region, List[Conflict]] = {}
    for conflict in model.conflicts():
        by_region.setdefault(conflict.region, []).append(conflict)
    out: Dict[str, RegionPrediction] = {}
    for region, conflicts in sorted(by_region.items()):
        statuses = {c.status for c in conflicts}
        if statuses & _CONCURRENT:
            code = "RACE001" if statuses == {"racy"} else "SHR001"
        else:
            code = "SHR002"
        out[str(region)] = RegionPrediction(
            region=str(region),
            code=code,
            pages=model.region_pages(region),
            score=_hot_score(model, region, conflicts),
        )
    return out


def _representative(conflicts: List[Conflict]):
    """The writer access used for the diagnostic's function/site."""
    accesses = sorted(
        {a for c in conflicts for a in (c.a, c.b)},
        key=lambda a: (not a.write, a.fn, a.ordinal),
    )
    return accesses[0]


def run_sharing(ctx, report) -> None:
    """Emit SHR001/SHR002/SHR003 sharing predictions per region."""
    model = get_model(ctx.module)
    by_region: Dict[Region, List[Conflict]] = {}
    for conflict in model.conflicts():
        by_region.setdefault(conflict.region, []).append(conflict)
    report.note_checks(PASS_NAME, max(len(by_region), 1))

    for region, conflicts in sorted(by_region.items()):
        statuses = {c.status for c in conflicts}
        rep = _representative(conflicts)
        pages = model.region_pages(region)
        extent = f"~{pages} page(s)" if pages else "unknown extent"
        roles = sorted({a.role for c in conflicts for a in (c.a, c.b)})
        if statuses & _CONCURRENT:
            how = sorted(statuses & _CONCURRENT)
            report.emit(
                "SHR001",
                Severity.INFO,
                f"{region} is concurrently write-shared ({extent}, "
                f"roles {', '.join(roles)}; via {', '.join(how)}): "
                "expect DSM page ping-pong on these pages",
                pass_name=PASS_NAME,
                function=rep.fn,
                site=rep.ordinal,
                symbol=str(region),
            )
        else:
            report.emit(
                "SHR002",
                Severity.INFO,
                f"{region} is shared but every conflicting pair is "
                f"happens-before ordered ({extent}, roles "
                f"{', '.join(roles)}): pages migrate between kernels "
                "but never concurrently",
                pass_name=PASS_NAME,
                function=rep.fn,
                site=rep.ordinal,
                symbol=str(region),
            )
        strides = sorted({
            a.stride
            for c in conflicts if c.status == "partitioned"
            for a in (c.a, c.b)
            if a.write and a.stride is not None and 0 < a.stride < PAGE_SIZE
        })
        if strides:
            report.emit(
                "SHR003",
                Severity.INFO,
                f"{region} is partitioned by thread identity with a "
                f"{strides[0]}-byte stride — below the {PAGE_SIZE}-byte "
                "DSM page, so adjacent threads false-share pages",
                pass_name=PASS_NAME,
                function=rep.fn,
                site=rep.ordinal,
                symbol=str(region),
            )

"""Baseline files: accepted diagnostics that do not fail the lint.

A baseline is a checked-in JSON file listing diagnostic fingerprints
(``code|isa|function|site|symbol``) that are known and triaged; CI
fails only on *new* error-severity diagnostics.  An empty baseline is
the healthy steady state — every registered workload lints clean.
"""

import json
from pathlib import Path
from typing import Iterable, List, Set

from repro.analyze.diagnostics import Diagnostic

BASELINE_VERSION = 1
DEFAULT_BASELINE_PATH = ".lint-baseline.json"


class Baseline:
    """A set of suppressed diagnostic fingerprints."""

    def __init__(self, fingerprints: Iterable[str] = ()):
        self.fingerprints: Set[str] = set(fingerprints)

    def suppresses(self, diagnostic: Diagnostic) -> bool:
        return diagnostic.fingerprint in self.fingerprints

    def __len__(self) -> int:
        return len(self.fingerprints)

    # ----------------------------------------------------------- file IO

    @classmethod
    def load(cls, path) -> "Baseline":
        """Load a baseline; a missing file is an empty baseline."""
        path = Path(path)
        if not path.exists():
            return cls()
        data = json.loads(path.read_text())
        if not isinstance(data, dict) or "suppress" not in data:
            raise ValueError(f"{path}: not a lint baseline file")
        version = data.get("version", BASELINE_VERSION)
        if version != BASELINE_VERSION:
            raise ValueError(
                f"{path}: baseline version {version} unsupported "
                f"(expected {BASELINE_VERSION})"
            )
        return cls(data["suppress"])

    def save(self, path) -> None:
        Path(path).write_text(self.render() + "\n")

    def render(self) -> str:
        return json.dumps(
            {"version": BASELINE_VERSION,
             "suppress": sorted(self.fingerprints)},
            indent=2,
        )

    @classmethod
    def from_reports(cls, reports, errors_only: bool = True) -> "Baseline":
        """Build a baseline accepting every (error) diagnostic seen."""
        fingerprints: List[str] = []
        for report in reports:
            for diag in report.diagnostics + report.suppressed:
                if errors_only and diag.severity.value != "error":
                    continue
                fingerprints.append(diag.fingerprint)
        return cls(fingerprints)

"""Whole-binary lint passes over a linked :class:`MultiIsaBinary`.

Each pass re-derives, from first principles, a contract the paper's
migration machinery depends on, and diffs it against what the toolchain
actually emitted:

* ``stackmap``  — IR dataflow liveness vs. emitted stackmaps, per site,
  per ISA, plus cross-ISA live-set/type equivalence;
* ``unwind``    — every clobbered callee-saved register has a save
  slot, the CFA is derivable from :class:`UnwindInfo` alone, and no
  two frame objects collide;
* ``layout``    — one common address-space layout: identical symbol
  addresses across ISAs, sufficient ``.text`` alias padding, TLS
  equality, no overlaps, no section overflow;
* ``coverage``  — static instruction-cost bound on the longest
  migration-point-free path per function, loop-aware.
"""

import math
from typing import Dict, List, Optional, Set, Tuple

from repro.analyze.diagnostics import LintReport, Severity
from repro.analyze.ir_checks import unmigratable_reason
from repro.compiler.codegen import MachineFunction
from repro.ir.analysis import liveness
from repro.ir.instructions import Call, MigPoint, Syscall, Work
from repro.isa.abi import FrameLayoutStyle
from repro.isa.isa import InstrClass
from repro.isa.types import ValueType
from repro.linker.alignment import align_symbols
from repro.linker.tls import build_tls_layout

WORD = 8


# ------------------------------------------------------------- stackmaps

def run_stackmap_soundness(ctx, report: LintReport) -> None:
    """``MIG010``-``MIG015``: stackmaps must equal recomputed liveness.

    A live variable missing from the map silently loses state on
    migration (error); a dead entry only wastes transform work
    (warning).  Locations must agree with register allocation and the
    frame layout, and the live set at every shared ``site_id`` must be
    identical — names and types — on every ISA.
    """
    binary = ctx.binary
    for fn_name, fn in binary.module.functions.items():
        live = liveness(fn)
        expected: Dict[int, Tuple[str, int, Set[str]]] = {}
        for label, i, instr in fn.instructions():
            site = getattr(instr, "site_id", -1)
            if site >= 0 and isinstance(instr, (Call, Syscall, MigPoint)):
                vars_ = set(live.live_after[(label, i)])
                vars_.discard(getattr(instr, "dst", ""))
                expected[site] = (label, i, vars_)
        for isa_name in binary.isa_names:
            mf = binary.machine_function(isa_name, fn_name)
            _check_isa_stackmaps(isa_name, mf, expected, report)
            report.note_checks("stackmap", max(len(expected), 1))
        _check_cross_isa_equivalence(binary, fn_name, expected, report)


def _check_isa_stackmaps(
    isa_name: str,
    mf: MachineFunction,
    expected: Dict[int, Tuple[str, int, Set[str]]],
    report: LintReport,
) -> None:
    fn_name = mf.name
    for site in sorted(set(expected) - set(mf.stackmaps)):
        report.emit(
            "MIG013", Severity.ERROR,
            f"site has no emitted stackmap (at "
            f"{expected[site][0]}:{expected[site][1]})",
            pass_name="stackmap", isa=isa_name, function=fn_name, site=site,
        )
    for site in sorted(set(mf.stackmaps) - set(expected)):
        report.emit(
            "MIG013", Severity.ERROR,
            "stackmap emitted for a site that does not exist in the IR",
            pass_name="stackmap", isa=isa_name, function=fn_name, site=site,
        )
    for site, (_label, _i, want) in sorted(expected.items()):
        smap = mf.stackmaps.get(site)
        if smap is None:
            continue
        have = {e.var for e in smap.entries}
        for var in sorted(want - have):
            report.emit(
                "MIG010", Severity.ERROR,
                f"live variable {var!r} missing from the stackmap; "
                f"migration here would silently lose its value",
                pass_name="stackmap", isa=isa_name, function=fn_name,
                site=site, symbol=var,
            )
        for var in sorted(have - want):
            report.emit(
                "MIG011", Severity.WARNING,
                f"dead variable {var!r} recorded in the stackmap "
                f"(wasted transform work)",
                pass_name="stackmap", isa=isa_name, function=fn_name,
                site=site, symbol=var,
            )
        for entry in smap.entries:
            _check_entry_location(isa_name, mf, site, entry, report)


def _check_entry_location(isa_name, mf, site, entry, report) -> None:
    fn_name = mf.name
    loc = entry.location
    if loc.kind == "reg":
        assigned = mf.alloc.reg_assignment.get(entry.var)
        if loc.reg not in mf.isa.regfile:
            report.emit(
                "MIG014", Severity.ERROR,
                f"{entry.var!r} mapped to unknown register {loc.reg!r}",
                pass_name="stackmap", isa=isa_name, function=fn_name,
                site=site, symbol=entry.var,
            )
        elif assigned != loc.reg:
            report.emit(
                "MIG014", Severity.ERROR,
                f"{entry.var!r} mapped to {loc.reg}, but the allocator "
                f"placed it in {assigned or 'a frame slot'}",
                pass_name="stackmap", isa=isa_name, function=fn_name,
                site=site, symbol=entry.var,
            )
    else:
        frame = mf.frame
        expected_depth = frame.slot_depths.get(entry.var)
        if expected_depth is None or loc.depth != expected_depth:
            report.emit(
                "MIG014", Severity.ERROR,
                f"{entry.var!r} mapped to slot CFA-{loc.depth}, but the "
                f"frame layout says "
                f"{'no slot' if expected_depth is None else f'CFA-{expected_depth}'}",
                pass_name="stackmap", isa=isa_name, function=fn_name,
                site=site, symbol=entry.var,
            )
        elif not frame.contains_depth(loc.depth):
            report.emit(
                "MIG014", Severity.ERROR,
                f"{entry.var!r} slot depth {loc.depth} outside the "
                f"{frame.frame_size}-byte frame",
                pass_name="stackmap", isa=isa_name, function=fn_name,
                site=site, symbol=entry.var,
            )
    if entry.vt is ValueType.PTR and not entry.maybe_stack_pointer:
        report.emit(
            "MIG015", Severity.ERROR,
            f"pointer-typed entry {entry.var!r} not flagged "
            f"maybe_stack_pointer; a stack pointer here would never be "
            f"fixed up",
            pass_name="stackmap", isa=isa_name, function=fn_name,
            site=site, symbol=entry.var,
        )


def _check_cross_isa_equivalence(binary, fn_name, expected, report) -> None:
    isas = binary.isa_names
    if len(isas) < 2:
        return
    ref_isa = isas[0]
    ref = binary.machine_function(ref_isa, fn_name).stackmaps
    for other_isa in isas[1:]:
        other = binary.machine_function(other_isa, fn_name).stackmaps
        for site in sorted(set(ref) & set(other)):
            report.note_checks("stackmap", 1)
            ref_vars = {e.var: e.vt for e in ref[site].entries}
            other_vars = {e.var: e.vt for e in other[site].entries}
            if set(ref_vars) != set(other_vars):
                only_ref = sorted(set(ref_vars) - set(other_vars))
                only_other = sorted(set(other_vars) - set(ref_vars))
                report.emit(
                    "MIG012", Severity.ERROR,
                    f"live sets differ across ISAs: only-{ref_isa}="
                    f"{only_ref}, only-{other_isa}={only_other}",
                    pass_name="stackmap", function=fn_name, site=site,
                )
                continue
            for var, vt in sorted(ref_vars.items()):
                if other_vars[var] is not vt:
                    report.emit(
                        "MIG012", Severity.ERROR,
                        f"{var!r} typed {vt.value} on {ref_isa} but "
                        f"{other_vars[var].value} on {other_isa}",
                        pass_name="stackmap", function=fn_name, site=site,
                        symbol=var,
                    )


# ---------------------------------------------------------------- unwind

def run_unwind_consistency(ctx, report: LintReport) -> None:
    """``MIG020``-``MIG023``: the stack walker's view must be complete.

    The transformation runtime finds callee-saved values by walking
    save slots recorded in the unwind metadata; a clobbered register
    with no slot makes that walk read garbage.  The CFA chain is only
    derivable when frame sizes are positive, ABI-aligned, and every
    anchor (return address, saved FP/LR) lies inside the frame without
    colliding with another slot.
    """
    binary = ctx.binary
    for isa_name in binary.isa_names:
        cbin = binary.binary_for(isa_name)
        for fn_name, mf in cbin.machine_functions.items():
            report.note_checks("unwind", 1)
            _check_save_slots(isa_name, mf, report)
            _check_cfa_derivable(isa_name, mf, report)
            _check_unwind_matches_frame(isa_name, mf, report)


def _check_save_slots(isa_name: str, mf: MachineFunction, report) -> None:
    frame = mf.frame
    unwind = mf.unwind
    clobbered = list(mf.alloc.clobbered_callee_saved)
    for reg in clobbered:
        if reg not in unwind.saved_reg_depths:
            report.emit(
                "MIG020", Severity.ERROR,
                f"callee-saved {reg} is clobbered (holds "
                f"{_var_in_reg(mf, reg)!r}) but has no save slot; the "
                f"caller's value is unrecoverable during unwinding",
                pass_name="unwind", isa=isa_name, function=mf.name,
                symbol=reg,
            )
    clobbered_set = set(clobbered)
    for reg in sorted(unwind.saved_reg_depths):
        regfile = mf.isa.regfile
        if reg not in clobbered_set:
            report.emit(
                "MIG021", Severity.WARNING,
                f"save slot recorded for {reg}, which this function "
                f"never clobbers",
                pass_name="unwind", isa=isa_name, function=mf.name,
                symbol=reg,
            )
        elif reg in regfile and not regfile[reg].callee_saved:
            report.emit(
                "MIG021", Severity.WARNING,
                f"save slot recorded for caller-saved {reg}; it is dead "
                f"across the call anyway",
                pass_name="unwind", isa=isa_name, function=mf.name,
                symbol=reg,
            )
    del frame  # frame agreement is checked by _check_unwind_matches_frame


def _var_in_reg(mf: MachineFunction, reg: str) -> str:
    for var, assigned in mf.alloc.reg_assignment.items():
        if assigned == reg:
            return var
    return "?"


def _frame_objects(mf: MachineFunction) -> List[Tuple[str, int, int]]:
    """Every object in the frame as (label, start_offset, size) with
    offsets relative to the CFA (negative, growing down)."""
    frame = mf.frame
    objects = []
    if frame.return_addr_depth:
        objects.append(("return address", -frame.return_addr_depth, WORD))
    if frame.saved_fp_depth:
        objects.append(("saved FP", -frame.saved_fp_depth, WORD))
    if frame.saved_lr_depth:
        objects.append(("saved LR", -frame.saved_lr_depth, WORD))
    for reg, depth in frame.saved_reg_depths.items():
        objects.append((f"save slot {reg}", -depth, WORD))
    for var, depth in frame.slot_depths.items():
        objects.append((f"local {var}", -depth, WORD))
    for name, (depth, size) in frame.buffer_depths.items():
        objects.append((f"buffer {name}", -depth, size))
    return objects


def _check_cfa_derivable(isa_name: str, mf: MachineFunction, report) -> None:
    frame = mf.frame
    unwind = mf.unwind
    emit = lambda msg, sym="": report.emit(  # noqa: E731
        "MIG022", Severity.ERROR, msg,
        pass_name="unwind", isa=isa_name, function=mf.name, symbol=sym,
    )
    align = mf.isa.cc.stack_alignment
    if frame.frame_size <= 0:
        emit(f"non-positive frame size {frame.frame_size}")
        return
    if frame.frame_size % align:
        emit(
            f"frame size {frame.frame_size} not {align}-byte aligned; "
            f"the callee CFA (caller CFA - frame size) would be misaligned"
        )
    style = mf.isa.cc.frame_style
    if style is FrameLayoutStyle.SYSV_X86_64:
        if unwind.return_addr_depth <= 0:
            emit("x86-64 frame without a pushed return-address depth")
        if unwind.saved_lr_depth:
            emit("x86-64 frame claims an LR save slot")
    elif style is FrameLayoutStyle.AAPCS64:
        if unwind.saved_lr_depth <= 0:
            emit("AArch64 frame without a saved-LR depth")
        if unwind.return_addr_depth:
            emit("AArch64 frame claims a pushed return address")
    if unwind.saved_fp_depth <= 0:
        emit("frame without a saved-FP depth; the FP chain breaks here")
    objects = _frame_objects(mf)
    for label, start, size in objects:
        if start < -frame.frame_size or start + size > 0:
            emit(
                f"{label} at CFA{start:+d} (+{size}) lies outside the "
                f"{frame.frame_size}-byte frame",
                sym=label,
            )
    placed = sorted(objects, key=lambda o: o[1])
    for (label_a, start_a, size_a), (label_b, start_b, _sb) in zip(
        placed, placed[1:]
    ):
        if start_a + size_a > start_b:
            emit(
                f"{label_a} at CFA{start_a:+d} (+{size_a}) overlaps "
                f"{label_b} at CFA{start_b:+d}",
                sym=label_a,
            )


def _check_unwind_matches_frame(isa_name, mf: MachineFunction, report) -> None:
    frame, unwind = mf.frame, mf.unwind
    mismatches = []
    if unwind.frame_size != frame.frame_size:
        mismatches.append(
            f"frame_size {unwind.frame_size} != {frame.frame_size}"
        )
    for attr in ("return_addr_depth", "saved_fp_depth", "saved_lr_depth"):
        if getattr(unwind, attr) != getattr(frame, attr):
            mismatches.append(
                f"{attr} {getattr(unwind, attr)} != {getattr(frame, attr)}"
            )
    if dict(unwind.saved_reg_depths) != dict(frame.saved_reg_depths):
        mismatches.append(
            f"saved_reg_depths {dict(unwind.saved_reg_depths)} != "
            f"{dict(frame.saved_reg_depths)}"
        )
    for mismatch in mismatches:
        report.emit(
            "MIG023", Severity.ERROR,
            f"unwind metadata diverged from the frame layout: {mismatch}",
            pass_name="unwind", isa=isa_name, function=mf.name,
        )


# ---------------------------------------------------------------- layout

def run_layout_lint(ctx, report: LintReport) -> None:
    """``MIG030``-``MIG034``: one common address space for all ISAs.

    Identical virtual addresses for every shared symbol are what make
    pointers (and the TLS block) migrate as plain bits.  The pass
    re-runs symbol alignment from the per-ISA objects and diffs it
    against the linked layout, then checks padding, overlap, section
    extents and TLS canonical form.
    """
    binary = ctx.binary
    layout = binary.layout
    _check_symbol_addresses(binary, report)
    _check_placed_symbols(binary, report)
    _check_section_extents(binary, report)
    _check_tls(binary, report)
    del layout


def _check_symbol_addresses(binary, report) -> None:
    layout = binary.layout
    # Code addresses: every ISA's .text must be aliased at the common VA.
    for isa_name in binary.isa_names:
        cbin = binary.binary_for(isa_name)
        for fn_name, mf in cbin.machine_functions.items():
            report.note_checks("layout", 1)
            common = layout.address_of(fn_name)
            if mf.text_addr != common:
                report.emit(
                    "MIG030", Severity.ERROR,
                    f"code placed at {mf.text_addr:#x} but the common "
                    f"layout puts {fn_name} at {common:#x}; return "
                    f"addresses would diverge across ISAs",
                    pass_name="layout", isa=isa_name, function=fn_name,
                    symbol=fn_name,
                )
    # Recompute the alignment from the retained per-ISA objects.
    if layout.aligned and len(binary.isa_names) >= 2:
        objects = [
            binary.binary_for(isa).object for isa in binary.isa_names
        ]
        try:
            fresh = align_symbols(objects, binary.vm_map, align_functions=True)
        except ValueError as exc:
            report.emit(
                "MIG030", Severity.ERROR,
                f"symbol alignment is not reproducible: {exc}",
                pass_name="layout",
            )
            return
        for name, placed in sorted(fresh.symbols.items()):
            report.note_checks("layout", 1)
            linked = layout.symbols.get(name)
            if linked is None:
                report.emit(
                    "MIG030", Severity.ERROR,
                    f"symbol present in the objects but absent from the "
                    f"linked layout",
                    pass_name="layout", symbol=name,
                )
            elif linked.address != placed.address:
                report.emit(
                    "MIG030", Severity.ERROR,
                    f"linked at {linked.address:#x} but alignment "
                    f"recomputation places it at {placed.address:#x}",
                    pass_name="layout", symbol=name,
                )
    # Cached global addresses must agree with the layout.
    for name, addr in sorted(binary.global_addresses.items()):
        if name in binary.layout.symbols and addr != binary.layout.address_of(name):
            report.emit(
                "MIG030", Severity.ERROR,
                f"cached global address {addr:#x} != layout "
                f"{binary.layout.address_of(name):#x}",
                pass_name="layout", symbol=name,
            )


def _check_placed_symbols(binary, report) -> None:
    layout = binary.layout
    for name, placed in sorted(layout.symbols.items()):
        report.note_checks("layout", 1)
        for isa_name, size in sorted(placed.sizes.items()):
            if layout.aligned and placed.padded_size < size:
                report.emit(
                    "MIG034", Severity.ERROR,
                    f"padded to {placed.padded_size} bytes but the "
                    f"{isa_name} code/data is {size} bytes; the alias "
                    f"would truncate it",
                    pass_name="layout", isa=isa_name, symbol=name,
                )
    # Overlap within and across sections (addresses are global).
    placed_all = sorted(layout.symbols.values(), key=lambda s: s.address)
    for a, b in zip(placed_all, placed_all[1:]):
        if a.end > b.address:
            report.emit(
                "MIG032", Severity.ERROR,
                f"{a.name} [{a.address:#x},{a.end:#x}) overlaps "
                f"{b.name} at {b.address:#x}",
                pass_name="layout", symbol=a.name,
            )


def _check_section_extents(binary, report) -> None:
    layout = binary.layout
    vm = binary.vm_map
    region_bases = sorted(
        (vm.text_base, vm.rodata_base, vm.data_base, vm.bss_base,
         vm.tls_template_base, vm.vdso_base, vm.heap_base)
    )

    def next_base(base: int) -> Optional[int]:
        for candidate in region_bases:
            if candidate > base:
                return candidate
        return None

    for section, extent in sorted(layout.section_extent.items()):
        report.note_checks("layout", 1)
        base = vm.section_base(section)
        limit = next_base(base)
        if limit is not None and extent > limit:
            report.emit(
                "MIG033", Severity.ERROR,
                f"section {section} extends to {extent:#x}, past the "
                f"next region base {limit:#x}",
                pass_name="layout", symbol=section,
            )
        for placed in layout.in_section(section):
            if placed.address < base:
                report.emit(
                    "MIG033", Severity.ERROR,
                    f"{placed.name} at {placed.address:#x} lies below "
                    f"its section base {base:#x}",
                    pass_name="layout", symbol=placed.name,
                )
    # Per-symbol natural alignment from the objects.
    for isa_name in binary.isa_names:
        obj = binary.binary_for(isa_name).object
        for section in obj.sections.values():
            for sym in section.symbols:
                placed = binary.layout.symbols.get(sym.name)
                if placed is not None and placed.address % sym.align:
                    report.emit(
                        "MIG033", Severity.ERROR,
                        f"{sym.name} at {placed.address:#x} violates its "
                        f"{sym.align}-byte alignment",
                        pass_name="layout", isa=isa_name, symbol=sym.name,
                    )


def _check_tls(binary, report) -> None:
    tls = binary.tls
    fresh = build_tls_layout(binary.module.globals.values())
    report.note_checks("layout", max(len(fresh.offsets), 1))
    if tls.offsets != fresh.offsets or tls.block_size != fresh.block_size:
        drift = sorted(
            set(tls.offsets.items()) ^ set(fresh.offsets.items())
        )
        report.emit(
            "MIG031", Severity.ERROR,
            f"TLS layout diverged from the canonical x86-64 mapping "
            f"(block {tls.block_size} vs {fresh.block_size}, drift "
            f"{drift[:4]})",
            pass_name="layout", symbol=".tls",
        )
    if tls.block_size % 16:
        report.emit(
            "MIG031", Severity.ERROR,
            f"TLS block size {tls.block_size} not 16-byte aligned",
            pass_name="layout", symbol=".tls",
        )
    spans = []
    for name, offset in sorted(tls.offsets.items()):
        size = tls.element_size.get(name, WORD) * tls.element_count.get(name, 1)
        if not (-tls.block_size <= offset and offset + size <= 0):
            report.emit(
                "MIG031", Severity.ERROR,
                f"TLS symbol {name} at offset {offset} (+{size}) lies "
                f"outside the variant-2 block [-{tls.block_size}, 0)",
                pass_name="layout", symbol=name,
            )
        spans.append((offset, size, name))
    spans.sort()
    for (off_a, size_a, name_a), (off_b, _sb, name_b) in zip(spans, spans[1:]):
        if off_a + size_a > off_b:
            report.emit(
                "MIG031", Severity.ERROR,
                f"TLS symbols {name_a} and {name_b} overlap",
                pass_name="layout", symbol=name_a,
            )


# -------------------------------------------------------------- coverage

def run_migration_coverage(ctx, report: LintReport) -> None:
    """``MIG002``/``MIG040``-``MIG042``: responsiveness is bounded.

    The paper targets one migration point per ~50M instructions; a
    thread between points cannot react to a scheduling decision.  The
    pass bounds the static instruction cost of the longest
    point-free CFG path per function (loop-aware: a cycle without a
    point is unbounded repetition) using the codegen cost annotations.
    Work bursts use their constant amount; a dynamic burst is bounded
    by the strip-mine chunk constant when the defining ``min`` is
    visible, and is unbounded otherwise.
    """
    binary = ctx.binary
    if ctx.point_mode == "none":
        return  # bare baseline binary: coverage intentionally absent
    target = ctx.target_gap
    # The one-chunk-per-point design makes a point-free segment of one
    # full chunk (plus scaffolding) inherent; only flag real excess.
    slack = 1.5
    for fn_name, fn in binary.module.functions.items():
        reason = unmigratable_reason(fn)
        if reason:
            report.note_checks("coverage", 1)
            report.emit(
                "MIG002", Severity.INFO,
                f"skipped by migration-safety passes: {reason}",
                pass_name="coverage", function=fn_name,
            )
            continue
        for isa_name in binary.isa_names:
            mf = binary.machine_function(isa_name, fn_name)
            report.note_checks("coverage", 1)
            _check_function_coverage(isa_name, mf, target, slack, report)


def _instr_cost(mf: MachineFunction, mi) -> float:
    """Static machine-instruction bound for one lowered instruction."""
    if isinstance(mi.ir, Work):
        amount = mi.ir.amount
        if isinstance(amount, (int, float)):
            expansion = mf.isa.expansion(_work_class(mi.ir.kind))
            return float(amount) * expansion + mi.total
        return math.inf  # bounded later by the chunk pattern, if visible
    return mi.total


def _work_class(kind: str) -> InstrClass:
    try:
        return InstrClass(kind)
    except ValueError:
        return InstrClass.INT_ALU


def _bound_dynamic_work(mf: MachineFunction, label: str, costs: List[float]) -> None:
    """Replace inf costs of strip-mined bursts with the chunk constant.

    ``_strip_mine`` emits ``chunk = min(rem, C); work(chunk)``; when the
    defining ``min`` with a constant operand is visible earlier in the
    same block, ``C`` bounds the burst.
    """
    instrs = mf.blocks[label]
    for i, mi in enumerate(instrs):
        if not math.isinf(costs[i]) or not isinstance(mi.ir, Work):
            continue
        amount = mi.ir.amount
        for j in range(i - 1, -1, -1):
            ir = instrs[j].ir
            if getattr(ir, "dst", None) != amount:
                continue
            if getattr(ir, "op", "") == "min":
                consts = [
                    op for op in (ir.a, ir.b) if isinstance(op, (int, float))
                ]
                if consts:
                    expansion = mf.isa.expansion(_work_class(mi.ir.kind))
                    costs[i] = float(min(consts)) * expansion + mi.total
            break


def _check_function_coverage(
    isa_name: str, mf: MachineFunction, target: int, slack: float, report
) -> None:
    fn = mf.fn
    order = fn.block_order
    # Per-block segment costs around migration points.
    prefix: Dict[str, float] = {}   # cost before the first point
    suffix: Dict[str, float] = {}   # cost after the last point
    total: Dict[str, float] = {}    # whole-block cost
    has_point: Dict[str, bool] = {}
    has_work: Dict[str, bool] = {}
    unbounded_work: Dict[str, bool] = {}
    for label in order:
        instrs = mf.blocks[label]
        costs = [_instr_cost(mf, mi) for mi in instrs]
        _bound_dynamic_work(mf, label, costs)
        points = [
            i for i, mi in enumerate(instrs) if isinstance(mi.ir, MigPoint)
        ]
        total[label] = sum(costs)
        has_point[label] = bool(points)
        has_work[label] = any(isinstance(mi.ir, Work) for mi in instrs)
        unbounded_work[label] = any(math.isinf(c) for c in costs)
        if points:
            prefix[label] = sum(costs[: points[0]])
            suffix[label] = sum(costs[points[-1] + 1:])
        else:
            prefix[label] = suffix[label] = total[label]

    succs = {label: fn.blocks[label].successors() for label in order}
    _check_cycles(
        isa_name, mf, succs, has_point, has_work, unbounded_work, total,
        target, report,
    )
    _check_longest_path(
        isa_name, mf, order, succs, prefix, suffix, total, has_point,
        target, slack, report,
    )


def _sccs(order: List[str], succs: Dict[str, List[str]]) -> List[List[str]]:
    """Tarjan strongly-connected components over the block graph."""
    index: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    out: List[List[str]] = []
    counter = [0]

    def strongconnect(v: str) -> None:
        # Iterative Tarjan (workload CFGs can be deep).
        work = [(v, iter(succs.get(v, ())))]
        index[v] = low[v] = counter[0]
        counter[0] += 1
        stack.append(v)
        on_stack.add(v)
        while work:
            node, it = work[-1]
            advanced = False
            for w in it:
                if w not in index:
                    index[w] = low[w] = counter[0]
                    counter[0] += 1
                    stack.append(w)
                    on_stack.add(w)
                    work.append((w, iter(succs.get(w, ()))))
                    advanced = True
                    break
                if w in on_stack:
                    low[node] = min(low[node], index[w])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                component = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    component.append(w)
                    if w == node:
                        break
                out.append(component)

    for v in order:
        if v not in index:
            strongconnect(v)
    return out


def _check_cycles(
    isa_name, mf, succs, has_point, has_work, unbounded_work, total,
    target, report,
) -> None:
    for component in _sccs(list(mf.fn.block_order), succs):
        members = set(component)
        if len(component) == 1:
            label = component[0]
            if label not in succs.get(label, ()):  # no self-loop
                continue
        if any(has_point[label] for label in members):
            continue
        iteration_cost = sum(total[label] for label in members)
        looped_work = any(has_work[label] for label in members)
        where = ",".join(sorted(members))
        if any(unbounded_work[label] for label in members):
            report.emit(
                "MIG041", Severity.ERROR,
                f"loop {{{where}}} executes an unbounded work burst with "
                f"no migration point on the cycle",
                pass_name="coverage", isa=isa_name, function=mf.name,
                symbol=sorted(members)[0],
            )
        elif looped_work and iteration_cost > target:
            report.emit(
                "MIG041", Severity.ERROR,
                f"loop {{{where}}} costs ~{iteration_cost:.0f} machine "
                f"instructions per iteration (> target gap {target}) "
                f"with no migration point on the cycle",
                pass_name="coverage", isa=isa_name, function=mf.name,
                symbol=sorted(members)[0],
            )
        elif looped_work:
            report.emit(
                "MIG041", Severity.WARNING,
                f"loop {{{where}}} repeats a work burst "
                f"(~{iteration_cost:.0f} instructions/iteration) with no "
                f"migration point; total gap grows with the trip count",
                pass_name="coverage", isa=isa_name, function=mf.name,
                symbol=sorted(members)[0],
            )
        else:
            report.emit(
                "MIG042", Severity.INFO,
                f"loop {{{where}}} has no migration point; repetition "
                f"is not statically bounded",
                pass_name="coverage", isa=isa_name, function=mf.name,
                symbol=sorted(members)[0],
            )


def _check_longest_path(
    isa_name, mf, order, succs, prefix, suffix, total, has_point,
    target, slack, report,
) -> None:
    """Longest point-free path over the acyclic condensation.

    ``in_cost[b]`` is the maximum point-free cost flowing into block
    ``b``; a path candidate ends at b's first migration point (or at
    function exit).  Back edges are handled by the cycle check; here
    they are dropped, so the bound is over acyclic executions.
    """
    position = {label: i for i, label in enumerate(order)}
    in_cost: Dict[str, float] = {label: 0.0 for label in order}
    best = 0.0
    best_at = order[0] if order else ""
    for label in order:
        candidate = in_cost[label] + prefix[label]
        if candidate > best:
            best, best_at = candidate, label
        out = suffix[label] if has_point[label] else in_cost[label] + total[label]
        for succ in succs.get(label, ()):
            # Forward edges only: position order approximates topological
            # order for builder-generated CFGs.
            if position.get(succ, -1) > position[label]:
                in_cost[succ] = max(in_cost[succ], out)
    threshold = target * slack
    if math.isinf(best):
        report.emit(
            "MIG040", Severity.ERROR,
            f"a migration-point-free path through {best_at} executes an "
            f"unbounded work burst; responsiveness is unbounded",
            pass_name="coverage", isa=isa_name, function=mf.name,
            symbol=best_at,
        )
    elif best > threshold:
        report.emit(
            "MIG040", Severity.WARNING,
            f"longest migration-point-free path costs ~{best:.0f} machine "
            f"instructions (> {slack:g}x target gap {target}), ending in "
            f"block {best_at}",
            pass_name="coverage", isa=isa_name, function=mf.name,
            symbol=best_at,
        )

"""Static data-race lint (RACE001/RACE002).

Consumes the shared :mod:`repro.analyze.concurrency` model: every
conflicting access pair the model could not prove ordered, lock
protected, identity-partitioned or page-granular is a race finding.
The severity split is the paper's cross-ISA hazard: an unordered
store→flag publication is race-free under x86-TSO (stores retire in
order) but racy under ARM's weaker model, so it only *becomes* a bug
after a migration — RACE002 (warning), versus the
racy-on-any-memory-model RACE001 (error).
"""

from typing import List, Tuple

from repro.analyze.concurrency import Access, Conflict, get_model
from repro.analyze.diagnostics import Severity

PASS_NAME = "races"


def _publication_idiom(model, conflict: Conflict) -> Tuple[bool, str]:
    """Does this racy pair belong to a store-then-flag publication?

    Two shapes are matched, both confined to the writer's and reader's
    own functions (the idiom is local in every real codebase we mined):

    - *data side*: the writer later stores to a distinct flag region,
      and the reader spins (loads in a CFG cycle) on that flag before
      reading the data;
    - *flag side*: the writer's store is itself the flag — an earlier
      store to a distinct data region precedes it, and the reader's
      spin load is followed by a load of that data region.

    Under x86-TSO the flag store cannot pass the data store and the
    idiom is race-free; under ARM both sides need barriers.
    """
    for w, r in ((conflict.a, conflict.b), (conflict.b, conflict.a)):
        if not w.write or r.kind != "load":
            continue
        # Data side: a later flag store in w.fn, a spinning flag load
        # in r.fn that can flow into r.
        for s in model.accesses:
            if (
                s.kind != "store"
                or s.role != w.role
                or s.fn != w.fn
                or conflict.region in s.regions
                or not model.site_reaches(
                    w.fn, (w.block, w.index), (s.block, s.index)
                )
            ):
                continue
            for l in model.accesses:
                if (
                    l.kind == "load"
                    and l.role == r.role
                    and l.fn == r.fn
                    and l.in_cycle
                    and (s.regions & l.regions)
                    and model.site_reaches(
                        r.fn, (l.block, l.index), (r.block, r.index)
                    )
                ):
                    flag = sorted(s.regions & l.regions)[0]
                    return True, str(flag)
        # Flag side: w is the flag store (an earlier data store exists),
        # r is the spin load (a later data load exists).
        if r.in_cycle:
            for s in model.accesses:
                if (
                    s.kind != "store"
                    or s.role != w.role
                    or s.fn != w.fn
                    or conflict.region in s.regions
                    or not model.site_reaches(
                        w.fn, (s.block, s.index), (w.block, w.index)
                    )
                ):
                    continue
                for l in model.accesses:
                    if (
                        l.kind == "load"
                        and l.role == r.role
                        and l.fn == r.fn
                        and (s.regions & l.regions)
                        and model.site_reaches(
                            r.fn, (r.block, r.index), (l.block, l.index)
                        )
                    ):
                        data = sorted(s.regions & l.regions)[0]
                        return True, str(data)
    return False, ""


def _orient(a: Access, b: Access) -> Tuple[Access, Access]:
    """Writer first; deterministic tie-break for stable fingerprints."""
    pair = sorted((a, b), key=lambda x: (not x.write, x.fn, x.ordinal, x.role))
    return pair[0], pair[1]


def run_races(ctx, report) -> None:
    """Emit RACE001/RACE002 for unprotected conflicting access pairs."""
    model = get_model(ctx.module)
    conflicts = model.conflicts()
    report.note_checks(PASS_NAME, max(len(conflicts), 1))

    seen = set()
    racy: List[Conflict] = [
        c for c in conflicts
        if c.status == "racy" and c.a.kind != "work" and c.b.kind != "work"
    ]
    for conflict in racy:
        w, other = _orient(conflict.a, conflict.b)
        key = (conflict.region, w.fn, w.ordinal, other.fn, other.ordinal)
        if key in seen:
            continue
        seen.add(key)
        is_pub, via = _publication_idiom(model, conflict)
        where = (
            f"{w.kind} at {w.site} [{w.role}] vs "
            f"{other.kind} at {other.site} [{other.role}]"
        )
        if is_pub:
            report.emit(
                "RACE002",
                Severity.WARNING,
                f"TSO-only publication of {conflict.region}: {where} is "
                f"ordered only by the store→flag idiom (via {via}); "
                "race-free under x86-TSO but racy under ARM's weaker "
                "memory model once a thread migrates — needs a barrier "
                "or mutex",
                pass_name=PASS_NAME,
                function=w.fn,
                site=w.ordinal,
                symbol=str(conflict.region),
            )
        else:
            report.emit(
                "RACE001",
                Severity.ERROR,
                f"data race on {conflict.region}: {where} — "
                f"{conflict.reason}, racy on any memory model",
                pass_name=PASS_NAME,
                function=w.fn,
                site=w.ordinal,
                symbol=str(conflict.region),
            )

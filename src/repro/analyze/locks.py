"""Static lock-order lint (RACE050/RACE051).

Complements the runtime deadlock reporter in
:mod:`repro.runtime.execution`: instead of detecting a deadlock that
already happened, this pass finds the *potential* — a cycle in the
static lock-acquisition-order graph (RACE050), or a mutex held across
a blocking synchronisation operation (RACE051), which turns an
unrelated slow thread into every lock waiter's problem and is the
classic shape of barrier/join deadlocks.

Lock identities are constant mutex ids resolved through the shared
concurrency model; a dynamically computed id cannot be tracked and
simply contributes no edges (the sound direction — this pass only ever
*adds* findings, never suppresses the races pass).
"""

from typing import Dict, List, Set

from repro.analyze.concurrency import get_model
from repro.analyze.diagnostics import Severity
from repro.ir.instructions import Syscall

PASS_NAME = "locks"

_LOCK_SYSCALLS = {
    "mutex_init", "mutex_lock", "mutex_unlock",
    "cond_init", "cond_wait", "cond_signal", "cond_broadcast",
}


def _sccs(graph: Dict[int, Set[int]]) -> List[List[int]]:
    """Tarjan strongly-connected components, iterative."""
    index: Dict[int, int] = {}
    low: Dict[int, int] = {}
    on_stack: Set[int] = set()
    stack: List[int] = []
    out: List[List[int]] = []
    counter = [0]

    for root in sorted(graph):
        if root in index:
            continue
        work = [(root, iter(sorted(graph.get(root, ()))))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, succs = work[-1]
            advanced = False
            for nxt in succs:
                if nxt not in index:
                    index[nxt] = low[nxt] = counter[0]
                    counter[0] += 1
                    stack.append(nxt)
                    on_stack.add(nxt)
                    work.append((nxt, iter(sorted(graph.get(nxt, ())))))
                    advanced = True
                    break
                if nxt in on_stack:
                    low[node] = min(low[node], index[nxt])
            if not advanced:
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index[node]:
                    scc = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        scc.append(member)
                        if member == node:
                            break
                    out.append(sorted(scc))
    return out


def run_locks(ctx, report) -> None:
    """Emit RACE050 (lock-order cycles) and RACE051 (blocking while
    holding a mutex)."""
    model = get_model(ctx.module)

    lock_sites = sum(
        1
        for fn in ctx.module.functions.values()
        for _, _, instr in fn.instructions()
        if isinstance(instr, Syscall) and instr.name in _LOCK_SYSCALLS
    )
    checks = lock_sites + len(model.lock_edges) + len(model.blocking_sites)
    report.note_checks(PASS_NAME, max(checks, 1))

    graph: Dict[int, Set[int]] = {}
    for edge in model.lock_edges:
        graph.setdefault(edge.first, set()).add(edge.second)
        graph.setdefault(edge.second, set())

    cyclic: Set[int] = set()
    for scc in _sccs(graph):
        if len(scc) > 1 or (len(scc) == 1 and scc[0] in graph.get(scc[0], ())):
            cyclic.update(scc)
            # Anchor the finding at the first edge inside the cycle.
            members = set(scc)
            inside = [
                e for e in model.lock_edges
                if e.first in members and e.second in members
            ]
            rep = min(inside, key=lambda e: (e.fn, e.ordinal))
            order = "->".join(str(lock) for lock in scc + [scc[0]])
            sites = ", ".join(
                f"{e.first}->{e.second} at {e.fn}:{e.block}:{e.index} "
                f"[{e.role}]"
                for e in sorted(inside, key=lambda e: (e.fn, e.ordinal))
            )
            report.emit(
                "RACE050",
                Severity.ERROR,
                f"lock-acquisition cycle {order}: threads taking these "
                f"mutexes in different orders can deadlock ({sites})",
                pass_name=PASS_NAME,
                function=rep.fn,
                site=rep.ordinal,
                symbol=f"locks:{order}",
            )

    for site in sorted(
        model.blocking_sites, key=lambda s: (s.fn, s.ordinal, s.role)
    ):
        held = ", ".join(str(lock) for lock in sorted(site.held))
        report.emit(
            "RACE051",
            Severity.WARNING,
            f"mutex {held} held across blocking {site.syscall} at "
            f"{site.fn}:{site.block}:{site.index} [{site.role}]: every "
            "other waiter on the mutex now also waits for the "
            f"{site.syscall} to complete (deadlock-prone)",
            pass_name=PASS_NAME,
            function=site.fn,
            site=site.ordinal,
            symbol=f"lock:{held}",
        )

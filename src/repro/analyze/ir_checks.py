"""IR-level lint passes: structural validity and stack-pointer escape.

These passes need only a :class:`~repro.ir.function.Module`, so they run
both standalone (``repro lint`` before the toolchain) and as the first
stage of a whole-binary lint.
"""

from typing import Dict, Set

from repro.analyze.diagnostics import LintReport, Severity
from repro.ir.function import Function, Module
from repro.ir.instructions import (
    AddrOf,
    BinOp,
    Call,
    InlineAsm,
    MigPoint,
    StackAlloc,
    Store,
    Syscall,
    UnOp,
)
from repro.ir.validate import ValidationError, validate_module
from repro.isa.types import ValueType


def run_ir_validity(ctx, report: LintReport) -> None:
    """Aggregate :mod:`repro.ir.validate` into ``MIG001`` diagnostics.

    The structural validator raises a single :class:`ValidationError`
    mid-pipeline; here every recorded problem becomes its own
    diagnostic so a broken module surfaces all at once.
    """
    module: Module = ctx.module
    report.note_checks("ir", len(module.functions) or 1)
    try:
        validate_module(module)
    except ValidationError as exc:
        for problem in exc.problems:
            report.emit(
                "MIG001", Severity.ERROR, problem, pass_name="ir",
                function=_function_of(problem),
            )


def _function_of(problem: str) -> str:
    # validate_module prefixes most problems with "function <name>".
    if problem.startswith("function "):
        return problem[len("function "):].split(":")[0].split(" ")[0]
    return ""


# ---------------------------------------------------------------- escape

def _stack_tainted(fn: Function) -> Set[str]:
    """Locals that may hold an address into this function's own frame.

    Flow-insensitive forward taint: seeds are ``stack_alloc`` results
    and ``addr_of`` over locals/buffers; taint propagates through moves
    and arithmetic (pointer adjustment), never through loads.
    """
    tainted: Set[str] = set()
    changed = True
    while changed:
        changed = False
        for _, _, instr in fn.instructions():
            dst = getattr(instr, "dst", "")
            if not dst or dst in tainted:
                continue
            if isinstance(instr, StackAlloc):
                hit = True
            elif isinstance(instr, AddrOf):
                hit = (
                    instr.symbol in fn.var_types
                    or instr.symbol in fn.stack_buffers
                )
            elif isinstance(instr, (BinOp, UnOp)):
                hit = any(u in tainted for u in instr.uses())
            else:
                hit = False
            if hit:
                tainted.add(dst)
                changed = True
    return tainted


def run_stack_escape(ctx, report: LintReport) -> None:
    """``MIG050``/``MIG051``: stack addresses the fix-up cannot track.

    The transformation runtime only rewrites stack pointers it can see:
    live, pointer-typed stackmap entries.  A stack address written
    through a pointer ends up in raw memory — fatal when the target is
    the heap or a global (the old stack half dies with the migration),
    and a silent hazard even stack-to-stack (buffers are copied
    verbatim, without fix-up).  ``MIG051`` flags the related blind spot:
    a stack-derived value typed as a plain integer that is live across a
    migration site is copied bit-for-bit, never fixed up.
    """
    module: Module = ctx.module
    for name, fn in module.functions.items():
        tainted = _stack_tainted(fn)
        report.note_checks("escape", 1)
        if not tainted:
            continue
        for label, i, instr in fn.instructions():
            if not isinstance(instr, Store):
                continue
            src = instr.src
            if not isinstance(src, str) or src not in tainted:
                continue
            addr_is_stack = isinstance(instr.addr, str) and instr.addr in tainted
            if addr_is_stack:
                report.emit(
                    "MIG050", Severity.WARNING,
                    f"stack address {src!r} stored into stack memory at "
                    f"{label}:{i}; buffer contents are copied without "
                    f"pointer fix-up",
                    pass_name="escape", function=name, symbol=src,
                )
            else:
                report.emit(
                    "MIG050", Severity.ERROR,
                    f"stack address {src!r} escapes to a heap/global store "
                    f"at {label}:{i}; it will dangle after migration",
                    pass_name="escape", function=name, symbol=src,
                )
        _flag_untyped_stack_values(fn, tainted, report)


def _flag_untyped_stack_values(
    fn: Function, tainted: Set[str], report: LintReport
) -> None:
    live_at_sites = _live_across_sites(fn)
    for var in sorted(tainted & live_at_sites):
        if fn.var_types.get(var) is not ValueType.PTR:
            report.emit(
                "MIG051", Severity.WARNING,
                f"stack-derived value {var!r} has type "
                f"{fn.var_types[var].value}, not ptr; it is live across a "
                f"migration site but invisible to the pointer fix-up",
                pass_name="escape", function=fn.name, symbol=var,
            )


def _live_across_sites(fn: Function) -> Set[str]:
    from repro.ir.analysis import liveness

    live = liveness(fn)
    across: Set[str] = set()
    for label, i, instr in fn.instructions():
        if isinstance(instr, (Call, Syscall, MigPoint)):
            after = set(live.live_after[(label, i)])
            after.discard(getattr(instr, "dst", ""))
            across |= after
    return across


def unmigratable_reason(fn: Function) -> str:
    """Why migration-safety passes skip ``fn`` ('' when they don't)."""
    if fn.library:
        return "library code (Section 5.4: no migration during library calls)"
    for _, _, instr in fn.instructions():
        if isinstance(instr, InlineAsm):
            return "inline assembly defeats the live-variable analysis"
    return ""

"""The virtual memory map shared by every ISA's binary.

One fixed map (section base addresses, heap and stack placement) is
used for all ISAs — a precondition for the identity mapping of
per-process state (P^IA = P^IB in the paper's model).
"""

from dataclasses import dataclass

PAGE_SIZE = 4096
WORD = 8


def page_of(addr: int) -> int:
    return addr // PAGE_SIZE


def page_base(addr: int) -> int:
    return addr - (addr % PAGE_SIZE)


def align_up(value: int, alignment: int) -> int:
    return (value + alignment - 1) // alignment * alignment


@dataclass(frozen=True)
class VirtualMemoryMap:
    """Base addresses of every region of the common address space."""

    text_base: int = 0x0000_0000_0040_0000
    rodata_base: int = 0x0000_0000_0060_0000
    data_base: int = 0x0000_0000_0080_0000
    bss_base: int = 0x0000_0000_00A0_0000
    tls_template_base: int = 0x0000_0000_00C0_0000
    vdso_base: int = 0x0000_0000_00E0_0000
    heap_base: int = 0x0000_0000_1000_0000
    heap_limit: int = 0x0000_0000_8000_0000
    stack_top: int = 0x0000_7FFF_F000_0000
    stack_size: int = 0x0000_0000_0010_0000  # 1 MiB per thread
    max_threads: int = 512

    def section_base(self, section: str) -> int:
        bases = {
            ".text": self.text_base,
            ".rodata": self.rodata_base,
            ".data": self.data_base,
            ".bss": self.bss_base,
            ".tdata": self.tls_template_base,
            ".tbss": self.tls_template_base,
        }
        try:
            return bases[section]
        except KeyError:
            raise KeyError(f"unknown section {section!r}") from None

    def stack_region(self, thread_index: int) -> tuple:
        """(low, high) bounds of thread ``thread_index``'s stack."""
        if not 0 <= thread_index < self.max_threads:
            raise ValueError(f"thread index {thread_index} out of range")
        high = self.stack_top - thread_index * self.stack_size
        return (high - self.stack_size, high)

    def is_stack_address(self, addr: int) -> bool:
        low = self.stack_top - self.max_threads * self.stack_size
        return low <= addr < self.stack_top


DEFAULT_VM_MAP = VirtualMemoryMap()

"""The symbol alignment engine (the paper's Java alignment tool).

Given one object per ISA, produce a *common* layout: every symbol at
the same virtual address in every binary.  The tool "aligns symbols in
loadable ELF sections by progressively calculating their addresses in
virtual memory"; function symbols are padded so their sizes are
"equivalent across binaries for all target architectures".
"""

from dataclasses import dataclass, field
from typing import Dict, List

from repro.linker.elf import IsaObject, LOADABLE_SECTIONS
from repro.linker.layout import VirtualMemoryMap, align_up


@dataclass(frozen=True)
class PlacedSymbol:
    """One symbol in the common layout."""

    name: str
    section: str
    address: int
    padded_size: int
    # Real (unpadded) size per ISA; data symbols have equal sizes.
    sizes: Dict[str, int] = field(default_factory=dict, hash=False)

    @property
    def padding(self) -> Dict[str, int]:
        return {isa: self.padded_size - size for isa, size in self.sizes.items()}

    @property
    def end(self) -> int:
        return self.address + self.padded_size


@dataclass
class AlignedLayout:
    """The common layout produced by symbol alignment."""

    symbols: Dict[str, PlacedSymbol] = field(default_factory=dict)
    section_extent: Dict[str, int] = field(default_factory=dict)
    aligned: bool = True

    def address_of(self, name: str) -> int:
        return self.symbols[name].address

    def in_section(self, section: str) -> List[PlacedSymbol]:
        placed = [s for s in self.symbols.values() if s.section == section]
        return sorted(placed, key=lambda s: s.address)

    def total_padding(self, isa_name: str, section: str = ".text") -> int:
        return sum(
            s.padded_size - s.sizes.get(isa_name, s.padded_size)
            for s in self.in_section(section)
        )

    def footprint(self, isa_name: str, section: str = ".text", padded: bool = True) -> int:
        """Bytes of ``section`` occupied on ``isa_name``.

        Padded footprint is what the instruction cache sees after
        alignment; unpadded is the natural per-ISA footprint.
        """
        if padded:
            return sum(s.padded_size for s in self.in_section(section))
        return sum(
            s.sizes.get(isa_name, s.padded_size) for s in self.in_section(section)
        )


def _check_same_symbols(objects: List[IsaObject], section: str) -> List[str]:
    """All ISAs must define the same symbols in the same order."""
    reference = objects[0].symbol_names(section)
    for obj in objects[1:]:
        names = obj.symbol_names(section)
        if names != reference:
            raise ValueError(
                f"section {section}: symbol lists differ between "
                f"{objects[0].isa_name} and {obj.isa_name}"
            )
    return reference


def align_symbols(
    objects: List[IsaObject],
    vm_map: VirtualMemoryMap,
    align_functions: bool = True,
) -> AlignedLayout:
    """Compute the common layout across all ISAs' objects.

    With ``align_functions=False`` the layout is computed per the first
    object only (no cross-ISA padding) — the "unaligned" baseline of
    Table 1.
    """
    if not objects:
        raise ValueError("no objects to align")
    layout = AlignedLayout(aligned=align_functions)

    for section in LOADABLE_SECTIONS:
        if not any(section in obj.sections for obj in objects):
            continue
        with_section = [obj for obj in objects if section in obj.sections]
        names = _check_same_symbols(with_section, section)
        cursor = vm_map.section_base(section)
        if section == ".tbss" and ".tdata" in layout.section_extent:
            cursor = layout.section_extent[".tdata"]
        for name in names:
            per_isa = {
                obj.isa_name: obj.find(name).size for obj in with_section
            }
            sym0 = with_section[0].find(name)
            if align_functions:
                padded = max(per_isa.values())
            else:
                padded = per_isa[with_section[0].isa_name]
            padded = max(align_up(padded, sym0.align), sym0.align)
            cursor = align_up(cursor, sym0.align)
            layout.symbols[name] = PlacedSymbol(
                name=name,
                section=section,
                address=cursor,
                padded_size=padded,
                sizes=per_isa,
            )
            cursor += padded
        layout.section_extent[section] = cursor

    _check_no_overlap(layout)
    return layout


def _check_no_overlap(layout: AlignedLayout) -> None:
    placed = sorted(layout.symbols.values(), key=lambda s: s.address)
    for a, b in zip(placed, placed[1:]):
        if a.end > b.address:
            raise ValueError(
                f"symbol overlap: {a.name} [{a.address:#x},{a.end:#x}) and "
                f"{b.name} at {b.address:#x}"
            )

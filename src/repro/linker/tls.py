"""Common thread-local storage layout.

ARM64 uses TLS "variant 1" (TCB first, positive offsets) and x86-64
"variant 2" (TLS block below the thread pointer).  The paper modified
the gold linker and musl so that "the TLS layout for all binaries was
changed to map symbols identically to the x86-64 TLS symbol mapping".
We reproduce that: one :class:`TlsLayout` computed once, used verbatim
by every ISA — making the per-thread local data L_i identical across
ISAs (L_i^IA = L_i^IB in the model).
"""

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from repro.ir.function import GlobalVar
from repro.isa.types import type_align, type_size
from repro.linker.layout import align_up

TCB_SIZE = 16  # two pointers, as in variant-2 TCBs


@dataclass
class TlsLayout:
    """Offsets of thread-local symbols relative to the thread pointer.

    Offsets are negative (x86-64 variant-2 mapping: the TLS block sits
    below the thread pointer), and identical on every ISA.
    """

    offsets: Dict[str, int] = field(default_factory=dict)
    block_size: int = 0
    # Initial values: symbol -> list of element init values (.tdata).
    initial: Dict[str, List] = field(default_factory=dict)
    element_size: Dict[str, int] = field(default_factory=dict)
    element_count: Dict[str, int] = field(default_factory=dict)

    def offset_of(self, name: str) -> int:
        return self.offsets[name]

    def address_of(self, thread_pointer: int, name: str) -> int:
        return thread_pointer + self.offsets[name]

    def symbols(self) -> List[str]:
        return sorted(self.offsets, key=lambda n: self.offsets[n])


def build_tls_layout(globals_: Iterable[GlobalVar]) -> TlsLayout:
    """Lay out all ``thread_local`` globals per the x86-64 mapping.

    .tdata symbols (initialised) come first, then .tbss, mirroring how
    gold merges TLS sections; the whole block is 16-byte aligned and
    addressed at negative offsets from the thread pointer.
    """
    tls_vars = [g for g in globals_ if g.thread_local]
    tdata = [g for g in tls_vars if g.init]
    tbss = [g for g in tls_vars if not g.init]

    layout = TlsLayout()
    cursor = 0
    for gv in tdata + tbss:
        cursor = align_up(cursor, type_align(gv.vt))
        layout.offsets[gv.name] = cursor  # provisional, from block start
        layout.element_size[gv.name] = type_size(gv.vt)
        layout.element_count[gv.name] = gv.count
        if gv.init:
            layout.initial[gv.name] = list(gv.init)
        cursor += gv.size
    block = align_up(cursor, 16)
    layout.block_size = block
    # Rebase: variant-2 offsets are negative from the thread pointer.
    layout.offsets = {
        name: offset - block for name, offset in layout.offsets.items()
    }
    return layout

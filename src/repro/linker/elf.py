"""A minimal ELF-like object model.

Each ISA back-end produces one :class:`IsaObject` per module: the set
of symbols (functions and globals) with that ISA's sizes.  Data symbols
have identical sizes on every ISA (common primitive layout); function
symbols differ, which is what the alignment tool must reconcile.
"""

from dataclasses import dataclass, field
from typing import Dict, List

LOADABLE_SECTIONS = (".text", ".rodata", ".data", ".bss", ".tdata", ".tbss")


@dataclass(frozen=True)
class Symbol:
    """One linker symbol."""

    name: str
    section: str
    size: int
    align: int = 8
    is_function: bool = False

    def __post_init__(self):
        if self.section not in LOADABLE_SECTIONS:
            raise ValueError(f"symbol {self.name} in unknown section {self.section}")
        if self.size < 0:
            raise ValueError(f"symbol {self.name} has negative size")


@dataclass
class Section:
    """A section with its symbols in layout order."""

    name: str
    symbols: List[Symbol] = field(default_factory=list)

    def add(self, symbol: Symbol) -> None:
        if symbol.section != self.name:
            raise ValueError(
                f"symbol {symbol.name} belongs to {symbol.section}, not {self.name}"
            )
        self.symbols.append(symbol)

    @property
    def total_size(self) -> int:
        return sum(s.size for s in self.symbols)


@dataclass
class IsaObject:
    """All symbols of one module compiled for one ISA."""

    isa_name: str
    sections: Dict[str, Section] = field(default_factory=dict)

    def add_symbol(self, symbol: Symbol) -> None:
        section = self.sections.setdefault(symbol.section, Section(symbol.section))
        section.add(symbol)

    def symbol_names(self, section: str) -> List[str]:
        if section not in self.sections:
            return []
        return [s.name for s in self.sections[section].symbols]

    def find(self, name: str) -> Symbol:
        for section in self.sections.values():
            for symbol in section.symbols:
                if symbol.name == name:
                    return symbol
        raise KeyError(f"symbol {name} not in {self.isa_name} object")

"""Multi-ISA linking: common address-space layout (Section 5.2.2).

The paper's gold-based pipeline plus the "alignment tool" (a Java
program reading symbol sizes from trial links and emitting per-ISA
linker scripts that pin every symbol to the same virtual address) are
reproduced here:

* :mod:`repro.linker.elf` — object-file model: sections and symbols
  with per-ISA sizes;
* :mod:`repro.linker.alignment` — the alignment engine: progressive
  address assignment, padding function symbols to the maximum size
  across ISAs;
* :mod:`repro.linker.linker_script` — renders the per-ISA scripts;
* :mod:`repro.linker.tls` — common thread-local-storage layout (all
  ISAs adopt the x86-64 TLS symbol mapping, as the modified musl does);
* :mod:`repro.linker.layout` — the virtual memory map shared by loader,
  heap and stacks.
"""

from repro.linker.elf import IsaObject, Section, Symbol
from repro.linker.layout import VirtualMemoryMap, DEFAULT_VM_MAP, PAGE_SIZE
from repro.linker.alignment import AlignedLayout, align_symbols
from repro.linker.linker_script import render_linker_script
from repro.linker.tls import TlsLayout, build_tls_layout

__all__ = [
    "Section",
    "Symbol",
    "IsaObject",
    "VirtualMemoryMap",
    "DEFAULT_VM_MAP",
    "PAGE_SIZE",
    "AlignedLayout",
    "align_symbols",
    "render_linker_script",
    "TlsLayout",
    "build_tls_layout",
]

"""Deterministic open-loop arrival traces for the serving subsystem.

A trace is a fixed, sorted tuple of request arrival times drawn from a
named *shape* — the time-varying intensity profiles real KV fleets see:

* ``steady`` — homogeneous Poisson traffic (constant intensity);
* ``diurnal`` — a sinusoid-modulated day/night cycle (troughs are when
  a latency-aware policy drains the service to the efficient ARM box);
* ``flash-crowd`` — steady base traffic with a step surge window (the
  regime that punishes a mis-timed hand-off hardest).

Every shape draws exactly ``requests`` arrivals by inverse-CDF sampling
of its cumulative intensity: one sorted batch of uniforms from a named
:class:`~repro.sim.rng.DeterministicRng` stream is mapped through
``Λ⁻¹``, so the total request count is conserved by construction (the
shape only redistributes *when* the requests land) and the same seed
reproduces the trace bit-for-bit.

Traces compose with the batch layer: :func:`to_job_arrivals` subsamples
a trace into ``(time, JobSpec)`` pairs drawn from the existing
``datacenter.arrivals`` job mixes, so any traffic shape can also drive
``ClusterSimulator.run_periodic`` as background batch load.
"""

import hashlib
import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from repro.datacenter.arrivals import DEFAULT_MIX
from repro.datacenter.job import JobSpec
from repro.sim.rng import DeterministicRng


@dataclass(frozen=True)
class ArrivalTrace:
    """One open-loop request trace: sorted arrival times over a horizon."""

    shape: str
    horizon_s: float
    times: Tuple[float, ...]

    @property
    def requests(self) -> int:
        """Total number of requests in the trace."""
        return len(self.times)

    def mean_rate(self) -> float:
        """Average arrival rate over the horizon (requests/second)."""
        return self.requests / self.horizon_s if self.horizon_s > 0 else 0.0

    def checksum(self) -> str:
        """A content digest of the trace (determinism tests, baselines)."""
        payload = ",".join(f"{t:.9f}" for t in self.times)
        digest = hashlib.sha256(f"{self.shape}:{payload}".encode())
        return digest.hexdigest()[:16]

    def arrivals_between(self, t0: float, t1: float) -> int:
        """How many requests arrived in ``[t0, t1)`` (rate estimation)."""
        import bisect

        return bisect.bisect_left(self.times, t1) - bisect.bisect_left(
            self.times, t0
        )


def _sorted_uniforms(rng: DeterministicRng, count: int, stream: str) -> List[float]:
    draw = rng.stream(stream)
    return sorted(draw.random() for _ in range(count))


def _invert_monotone(
    cumulative: Callable[[float], float],
    target: float,
    horizon_s: float,
    iterations: int = 60,
) -> float:
    """Bisection inverse of a monotone cumulative intensity on [0, H]."""
    lo, hi = 0.0, horizon_s
    for _ in range(iterations):
        mid = 0.5 * (lo + hi)
        if cumulative(mid) < target:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def steady(
    rng: DeterministicRng,
    requests: int = 4000,
    horizon_s: float = 20.0,
    stream: str = "traffic",
) -> ArrivalTrace:
    """Homogeneous Poisson traffic: constant intensity over the horizon.

    Conditioned on the total count, Poisson arrivals are the order
    statistics of uniforms — which is exactly what we draw.
    """
    times = tuple(u * horizon_s for u in _sorted_uniforms(rng, requests, stream))
    return ArrivalTrace("steady", horizon_s, times)


def diurnal(
    rng: DeterministicRng,
    requests: int = 4000,
    horizon_s: float = 20.0,
    peak_to_trough: float = 4.0,
    periods: float = 1.0,
    stream: str = "traffic",
) -> ArrivalTrace:
    """Sinusoid-modulated traffic: ``periods`` day/night cycles.

    Intensity ``λ(t) = 1 + a·sin(ωt − π/2)`` (relative units) starts at
    the trough, peaks mid-cycle; ``a`` is set so the peak:trough ratio
    equals ``peak_to_trough``.
    """
    if peak_to_trough < 1.0:
        raise ValueError("peak_to_trough must be >= 1")
    amp = (peak_to_trough - 1.0) / (peak_to_trough + 1.0)
    omega = 2.0 * math.pi * periods / horizon_s
    phase = -math.pi / 2.0

    def cumulative(t: float) -> float:
        return t + (amp / omega) * (math.cos(phase) - math.cos(omega * t + phase))

    total = cumulative(horizon_s)
    times = tuple(
        _invert_monotone(cumulative, u * total, horizon_s)
        for u in _sorted_uniforms(rng, requests, stream)
    )
    return ArrivalTrace("diurnal", horizon_s, times)


def flash_crowd(
    rng: DeterministicRng,
    requests: int = 4000,
    horizon_s: float = 20.0,
    surge_start_frac: float = 0.4,
    surge_duration_frac: float = 0.15,
    surge_multiplier: float = 8.0,
    stream: str = "traffic",
) -> ArrivalTrace:
    """Steady base traffic with a step surge window.

    Intensity is 1 outside ``[start, start+duration)`` and
    ``surge_multiplier`` inside; the total request count is conserved,
    so the surge *concentrates* the trace's requests rather than adding
    load — the closed-form piecewise inverse keeps sampling exact.
    """
    if surge_multiplier < 1.0:
        raise ValueError("surge_multiplier must be >= 1")
    start = surge_start_frac * horizon_s
    duration = surge_duration_frac * horizon_s
    if start + duration > horizon_s:
        raise ValueError("surge window extends past the horizon")
    total = horizon_s + (surge_multiplier - 1.0) * duration
    at_start = start
    at_end = start + surge_multiplier * duration

    def invert(target: float) -> float:
        if target <= at_start:
            return target
        if target <= at_end:
            return start + (target - at_start) / surge_multiplier
        return start + duration + (target - at_end)

    times = tuple(
        invert(u * total) for u in _sorted_uniforms(rng, requests, stream)
    )
    return ArrivalTrace("flash-crowd", horizon_s, times)


#: Named shape registry; the ``repro serve --traffic`` choices.
TRAFFIC_SHAPES: Dict[str, Callable[..., ArrivalTrace]] = {
    "steady": steady,
    "diurnal": diurnal,
    "flash-crowd": flash_crowd,
}


def make_trace(shape: str, rng: DeterministicRng, **kwargs) -> ArrivalTrace:
    """Build the named traffic shape (see :data:`TRAFFIC_SHAPES`)."""
    try:
        generator = TRAFFIC_SHAPES[shape]
    except KeyError:
        raise KeyError(
            f"unknown traffic shape {shape!r}; have {sorted(TRAFFIC_SHAPES)}"
        ) from None
    return generator(rng, **kwargs)


def to_job_arrivals(
    trace: ArrivalTrace,
    rng: DeterministicRng,
    mix: Sequence[JobSpec] = DEFAULT_MIX,
    every: int = 200,
) -> List[Tuple[float, JobSpec]]:
    """Subsample a traffic shape into batch-job arrivals.

    Every ``every``-th request time becomes one job drawn from the
    ``datacenter.arrivals`` mix, so the same diurnal/flash-crowd shape
    that drives the serving engine can drive
    ``ClusterSimulator.run_periodic`` as background load.
    """
    if every < 1:
        raise ValueError("every must be >= 1")
    return [
        (t, rng.choice("jobmix", list(mix)))
        for t in trace.times[::every]
    ]

"""Serving policies: where the KV service lives, and when it moves.

Extends the batch-scheduling policy hierarchy
(:class:`~repro.datacenter.policies.SchedulingPolicy`) with a serving
decision method: at every decision epoch the engine hands the policy a
:class:`~repro.serving.engine.ServingView` (queue depth, arrival-rate
estimates, per-machine service times, SLO target, hand-off blackout
estimate) and the policy answers with a :class:`Decision` — migrate
the service, explicitly defer, or do nothing.

The catalog:

* ``static-x86`` / ``static-arm`` — the service is pinned; the
  baselines every dynamic policy is judged against.
* ``queue-reactive`` — naive hysteresis on instantaneous queue depth:
  burst to x86 when the queue passes a threshold, snap back to ARM the
  moment it drains.  No prediction, no cooldown — it flaps, and its
  hand-off stalls land mid-load.
* ``latency-aware`` — gates every move on *predicted tail latency*:
  upgrades to the fast machine when the predicted tail breaches the
  SLO, drains to the efficient machine only in a stable trough with
  tail headroom, and defers drains while a flash crowd is building
  (rising arrival rate), so the blackout never lands on the surge.
"""

from dataclasses import dataclass
from typing import Dict, Optional, TYPE_CHECKING

from repro.datacenter.policies import SchedulingPolicy

if TYPE_CHECKING:  # pragma: no cover
    from repro.serving.engine import ServingView


@dataclass(frozen=True)
class Decision:
    """One serving-policy verdict at a decision epoch.

    ``target`` names the machine to migrate the service to; ``None``
    records an *explicit deferral* (the policy wanted to move but the
    traffic gated it) — the engine emits it as a telemetry span either
    way, so traces show why a hand-off did or did not happen.
    """

    target: Optional[str]
    reason: str


def node_available(view: "ServingView", machine: str) -> bool:
    """Is ``machine`` a sane migration target right now?

    A node is unavailable when the fault layer reports it down/fenced
    (``view.nodes_up``) or its circuit breaker is open
    (``view.breaker_open``).  Fault-free views carry ``None`` for both,
    so every machine is available and pre-resilience decisions are
    unchanged.
    """
    if view.nodes_up is not None and not view.nodes_up.get(machine, True):
        return False
    if view.breaker_open is not None and view.breaker_open.get(
        machine, False
    ):
        return False
    return True


def predicted_tail_s(view: "ServingView", machine: str) -> float:
    """Predicted tail latency if the service ran on ``machine`` now.

    A deterministic M/D/1-flavoured estimate documented in
    ``docs/serving.md``: drain the current backlog at that machine's
    service rate, then add service time plus three mean queueing waits
    (``ρs / 2(1-ρ)``) for the tail.  Saturated (``ρ >= 0.97``) predicts
    infinity.
    """
    service_s = view.service_s[machine]
    rho = view.rate * service_s
    if rho >= 0.97:
        return float("inf")
    backlog = view.queue_depth * service_s
    mean_wait = rho * service_s / (2.0 * (1.0 - rho))
    return backlog + service_s + 3.0 * mean_wait


class ServingPolicy(SchedulingPolicy):
    """Base serving policy: place once on the preferred machine, never move."""

    name = "serving-base"
    dynamic = False
    #: ISA the service boots on (engine resolves it to a machine name).
    preferred_isa = "x86_64"

    def start_machine(self, machines: Dict[str, str]) -> str:
        """Pick the boot machine from ``{machine_name: isa_name}``."""
        for name, isa in sorted(machines.items()):
            if isa == self.preferred_isa:
                return name
        return sorted(machines)[0]

    def decide(self, view: "ServingView") -> Optional[Decision]:
        """Called every decision epoch; static policies never move."""
        return None


class StaticX86Serving(ServingPolicy):
    """Service pinned to the big x86 core: best latency, worst energy."""

    name = "static-x86"
    preferred_isa = "x86_64"


class StaticArmServing(ServingPolicy):
    """Service pinned to the efficient ARM core: best energy, worst tail."""

    name = "static-arm"
    preferred_isa = "arm64"


class QueueReactiveServing(ServingPolicy):
    """Naive dynamic baseline: hysteresis on instantaneous queue depth."""

    name = "queue-reactive"
    dynamic = True
    preferred_isa = "arm64"
    surge_queue = 12  # burst to the fast machine past this depth
    calm_queue = 0  # snap back the moment the queue fully drains

    def decide(self, view: "ServingView") -> Optional[Decision]:
        if view.migrating:
            return None
        fast = min(view.service_s, key=lambda m: (view.service_s[m], m))
        slow = max(view.service_s, key=lambda m: (view.service_s[m], m))
        if (
            view.machine != fast
            and view.queue_depth > self.surge_queue
            and node_available(view, fast)
        ):
            return Decision(fast, "queue-over-threshold")
        if (
            view.machine != slow
            and view.queue_depth <= self.calm_queue
            and node_available(view, slow)
        ):
            return Decision(slow, "queue-drained")
        return None


class LatencyAwareServing(ServingPolicy):
    """Tail-predictive policy: every move gated on predicted p-tail impact."""

    name = "latency-aware"
    dynamic = True
    preferred_isa = "arm64"
    #: Predicted tail must clear the SLO by this margin before a drain.
    drain_headroom = 0.5
    #: Utilisation cap on the efficient machine after a drain.
    drain_max_rho = 0.5
    #: Rising-rate gate: defer drains while rate > factor * previous rate.
    flash_rise_factor = 1.25
    #: Seconds between hand-offs (blackouts are not free).
    cooldown_s = 1.0

    def decide(self, view: "ServingView") -> Optional[Decision]:
        if view.migrating:
            return None
        fast = min(view.service_s, key=lambda m: (view.service_s[m], m))
        slow = max(view.service_s, key=lambda m: (view.service_s[m], m))
        if fast == slow:
            return None
        # Shed pressure: admission control dropping requests means the
        # current machine is overloaded beyond what the queue gates can
        # absorb — move to the fast machine immediately (if it is up
        # and its breaker is closed) rather than waiting for the tail
        # prediction to catch up.
        if (
            view.shed_recent > 0
            and view.machine != fast
            and node_available(view, fast)
        ):
            return Decision(fast, "shed-overload")
        # Upgrade: the predicted tail on the current machine breaches
        # the SLO and the fast machine would actually fix it (its
        # predicted tail, plus the hand-off blackout spread over the
        # queue, comes out lower).
        if view.machine != fast and node_available(view, fast):
            here = predicted_tail_s(view, view.machine)
            there = predicted_tail_s(view, fast) + view.blackout_s
            if here > view.slo_s and there < here:
                return Decision(fast, "predicted-tail-breach")
        # Drain: move to the efficient machine for energy, but only in
        # a stable trough — queue empty, utilisation low, predicted
        # tail clears the SLO with headroom — and never while a flash
        # crowd is building (rising arrival rate defers the blackout).
        if (
            view.machine != slow
            and view.since_commit_s >= self.cooldown_s
            and node_available(view, slow)
        ):
            rho_slow = view.rate * view.service_s[slow]
            tail_ok = (
                predicted_tail_s(view, slow)
                <= view.slo_s * self.drain_headroom
            )
            trough = view.queue_depth == 0 and rho_slow <= self.drain_max_rho
            rising = view.rate > self.flash_rise_factor * view.prev_rate
            if trough and tail_ok:
                if rising:
                    return Decision(None, "defer-flash-crowd")
                return Decision(slow, "trough-drain")
        return None


#: Name -> policy class; the ``repro serve --policy`` choices.
SERVING_POLICIES = {
    policy.name: policy
    for policy in (
        StaticX86Serving,
        StaticArmServing,
        QueueReactiveServing,
        LatencyAwareServing,
    )
}


def make_serving_policy(name: str) -> ServingPolicy:
    """Instantiate the named serving policy."""
    try:
        return SERVING_POLICIES[name]()
    except KeyError:
        raise KeyError(
            f"unknown serving policy {name!r}; have {sorted(SERVING_POLICIES)}"
        ) from None
